"""Tests for repro.hardware.crossbar.CrossbarConfig."""

import pytest

from repro.hardware.crossbar import CrossbarConfig


class TestCapacityModel:
    def test_default_geometry(self):
        xbar = CrossbarConfig()
        assert xbar.rows == 256
        assert xbar.cols == 256
        assert xbar.weight_bits == 4

    def test_cells_per_weight(self):
        assert CrossbarConfig().cells_per_weight == 4
        assert CrossbarConfig(weight_bits=8).cells_per_weight == 8
        assert CrossbarConfig(cell_bits=2, weight_bits=4).cells_per_weight == 2

    def test_weight_columns(self):
        assert CrossbarConfig().weight_cols == 64
        assert CrossbarConfig(weight_bits=8).weight_cols == 32

    def test_capacity_is_8kib_at_4bit(self):
        """The capacity model that makes Table I come out exactly."""
        assert CrossbarConfig().capacity_bytes == 8 * 1024

    def test_weights_per_crossbar(self):
        assert CrossbarConfig().weights_per_crossbar == 256 * 64

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CrossbarConfig(rows=0)
        with pytest.raises(ValueError):
            CrossbarConfig(cols=-1)

    def test_weight_bits_multiple_of_cell_bits(self):
        with pytest.raises(ValueError):
            CrossbarConfig(cell_bits=3, weight_bits=4)


class TestTimingEnergy:
    def test_full_write_latency(self):
        xbar = CrossbarConfig()
        assert xbar.write_latency_full_ns == 256 * xbar.write_row_latency_ns

    def test_partial_write_latency(self):
        xbar = CrossbarConfig()
        assert xbar.write_latency_for(10) == 10 * xbar.write_row_latency_ns
        assert xbar.write_latency_for(1000) == xbar.write_latency_full_ns

    def test_full_write_energy(self):
        xbar = CrossbarConfig()
        assert xbar.write_energy_full_pj == 256 * 256 * xbar.write_energy_per_cell_pj

    def test_partial_write_energy(self):
        xbar = CrossbarConfig()
        energy = xbar.write_energy_for(rows=128, weight_cols=32)
        assert energy == 128 * 32 * 4 * xbar.write_energy_per_cell_pj

    def test_mvm_energy_scales_with_rows(self):
        xbar = CrossbarConfig()
        full = xbar.mvm_energy_for_rows(256)
        half = xbar.mvm_energy_for_rows(128)
        assert full == pytest.approx(xbar.mvm_energy_pj)
        assert half < full
        # ADC floor: even tiny activations cost a sizable fraction
        assert xbar.mvm_energy_for_rows(1) > 0.3 * full

    def test_mvm_energy_zero_rows(self):
        assert CrossbarConfig().mvm_energy_for_rows(0) == 0.0

    def test_mvm_energy_clamps_rows(self):
        xbar = CrossbarConfig()
        assert xbar.mvm_energy_for_rows(10_000) == xbar.mvm_energy_for_rows(256)

    def test_write_costs_more_than_mvm_per_crossbar(self):
        """The PIM trade-off the paper leans on: writes are expensive."""
        xbar = CrossbarConfig()
        assert xbar.write_energy_full_pj > 10 * xbar.mvm_energy_pj
        assert xbar.write_latency_full_ns > 10 * xbar.mvm_latency_ns
