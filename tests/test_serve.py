"""Tests for the traffic-driven serving subsystem (:mod:`repro.serve`)."""

import math

import pytest

from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.evaluation.registry import shared_decomposition
from repro.search import DPOptimalSearch
from repro.serve import (
    BurstyTraffic,
    DiurnalTraffic,
    DynamicBatcher,
    Fleet,
    LatencyAwarePolicy,
    LeastLoadedPolicy,
    PlanCache,
    PoissonTraffic,
    Request,
    ServingSimulator,
    TraceTraffic,
    fleet_capacity_rps,
    load_trace,
    make_policy,
    save_trace,
    validate_policy,
    validate_traffic,
)

BATCHES = (1, 2, 4, 8, 16)


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(optimizer="dp")
        first = cache.get("squeezenet", "S", 4)
        second = cache.get("squeezenet", "S", 4)
        assert first is second
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.evictions == 0
        assert stats.size == 1

    def test_plan_matches_exact_search(self):
        cache = PlanCache(optimizer="dp")
        plan = cache.get("squeezenet", "S", 8)
        decomposition, validity = shared_decomposition("squeezenet", "S")
        evaluator = FitnessEvaluator(decomposition, batch_size=8)
        result = DPOptimalSearch(decomposition, evaluator, validity).run()
        assert plan.boundaries == tuple(result.best_group.boundaries)
        # the plan's latency is the bit-exact sequential span sum, i.e. the
        # search engine's fitness in latency mode
        assert plan.latency_ns == result.best_fitness
        assert plan.exact
        assert plan.energy_pj > 0

    def test_latency_curve_matches_compiled_batch(self):
        cache = PlanCache(optimizer="dp")
        plan = cache.get("squeezenet", "S", 8)
        assert plan.latency_at(8) == pytest.approx(plan.latency_ns, rel=1e-12)
        # the affine curve grows by the bottleneck per extra sample
        assert plan.latency_at(9) - plan.latency_at(8) == pytest.approx(
            plan.bottleneck_ns, rel=1e-12
        )

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2, optimizer="dp")
        cache.get("squeezenet", "S", 1)
        cache.get("squeezenet", "S", 2)
        cache.get("squeezenet", "S", 1)  # refresh batch-1: batch-2 becomes LRU
        cache.get("squeezenet", "S", 4)  # evicts batch-2
        assert cache.stats.evictions == 1
        assert cache.contains("squeezenet", "S", 1)
        assert not cache.contains("squeezenet", "S", 2)
        assert cache.contains("squeezenet", "S", 4)
        # the evicted plan recompiles to the identical deterministic plan
        before = cache.get("squeezenet", "S", 1)
        evicted = cache.get("squeezenet", "S", 2)  # miss again, evicts batch-4
        assert cache.stats.misses == 4
        assert evicted.boundaries == before.boundaries or evicted.key != before.key

    def test_warmup_stats(self):
        cache = PlanCache(optimizer="dp")
        compiled = cache.warmup(["squeezenet"], ["S"], [1, 4])
        assert compiled == 2
        stats = cache.stats
        assert stats.warmup_compiles == 2
        assert stats.misses == 2
        assert stats.hits == 0
        # a second warmup is all hits: nothing new compiled
        assert cache.warmup(["squeezenet"], ["S"], [1, 4]) == 0
        assert cache.stats.warmup_compiles == 2
        assert cache.stats.hits == 2
        # misses after warmup are not counted as warmup compiles
        cache.get("squeezenet", "S", 2)
        assert cache.stats.warmup_compiles == 2
        assert cache.stats.misses == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
        with pytest.raises(ValueError, match="unknown optimizer"):
            PlanCache(optimizer="magic")


# ----------------------------------------------------------------------
# Traffic generators
# ----------------------------------------------------------------------
class TestTraffic:
    def test_poisson_deterministic(self):
        first = PoissonTraffic("squeezenet", num_requests=50, seed=7, rate_rps=500).generate()
        second = PoissonTraffic("squeezenet", num_requests=50, seed=7, rate_rps=500).generate()
        assert first == second
        third = PoissonTraffic("squeezenet", num_requests=50, seed=8, rate_rps=500).generate()
        assert first != third

    def test_arrivals_sorted_and_positive(self):
        for traffic in (
            PoissonTraffic("squeezenet", num_requests=40, seed=0, rate_rps=300),
            BurstyTraffic("squeezenet", num_requests=40, seed=0, rate_rps=300),
            DiurnalTraffic("squeezenet", num_requests=40, seed=0, base_rate_rps=300),
        ):
            requests = traffic.generate()
            assert len(requests) == 40
            arrivals = [r.arrival_ns for r in requests]
            assert arrivals == sorted(arrivals)
            assert arrivals[0] > 0

    def test_model_mix(self):
        traffic = PoissonTraffic(("squeezenet", "lenet5"), num_requests=200,
                                 seed=0, rate_rps=300)
        models = {r.model for r in traffic.generate()}
        assert models == {"squeezenet", "lenet5"}

    def test_trace_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        original = BurstyTraffic("squeezenet", num_requests=30, seed=5,
                                 rate_rps=400).generate()
        save_trace(original, path)
        assert load_trace(path) == original
        replay = TraceTraffic(path)
        assert replay.generate() == original
        assert replay.num_requests == 30

    def test_malformed_trace_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"requests": [{"id": 0, "model": "squeezenet"}]}')
        with pytest.raises(ValueError, match="malformed trace"):
            load_trace(str(path))
        path.write_text('{"no_requests_key": []}')
        with pytest.raises(ValueError, match="malformed trace"):
            load_trace(str(path))

    def test_validate_traffic(self):
        validate_traffic("poisson")
        with pytest.raises(ValueError, match="unknown traffic"):
            validate_traffic("magic")


# ----------------------------------------------------------------------
# Dynamic batcher and policies
# ----------------------------------------------------------------------
class TestDynamicBatcher:
    @staticmethod
    def _latency(batch):
        # big weight-replacement intercept: batching amortises heavily
        return 1000.0 + 10.0 * batch

    def test_greedy_without_wait_budget(self):
        batcher = DynamicBatcher(batch_sizes=BATCHES, max_wait_us=0.0)
        batch, deadline = batcher.choose(
            queue_len=5, now_ns=0.0, oldest_arrival_ns=0.0,
            ema_interarrival_ns=10.0, latency_of=self._latency, more_arrivals=True,
        )
        assert (batch, deadline) == (4, None)

    def test_padded_when_queue_below_smallest(self):
        batcher = DynamicBatcher(batch_sizes=(4, 8), max_wait_us=0.0)
        assert batcher.dispatch_size(3) == 4
        assert batcher.dispatch_size(9) == 8

    def test_holds_when_amortisation_wins(self):
        batcher = DynamicBatcher(batch_sizes=BATCHES, max_wait_us=100.0)
        # cheap wait (tight arrivals) + huge amortisation: hold for 8
        batch, deadline = batcher.choose(
            queue_len=5, now_ns=1000.0, oldest_arrival_ns=900.0,
            ema_interarrival_ns=1.0, latency_of=self._latency, more_arrivals=True,
        )
        assert batch == 0
        assert deadline == pytest.approx(900.0 + 100e3)

    def test_dispatches_when_wait_exceeds_budget(self):
        batcher = DynamicBatcher(batch_sizes=BATCHES, max_wait_us=0.001)  # 1 ns
        batch, deadline = batcher.choose(
            queue_len=5, now_ns=1000.0, oldest_arrival_ns=999.5,
            ema_interarrival_ns=1.0, latency_of=self._latency, more_arrivals=True,
        )
        assert (batch, deadline) == (4, None)

    def test_dispatches_without_future_arrivals(self):
        batcher = DynamicBatcher(batch_sizes=BATCHES, max_wait_us=100.0)
        batch, deadline = batcher.choose(
            queue_len=5, now_ns=0.0, oldest_arrival_ns=0.0,
            ema_interarrival_ns=1.0, latency_of=self._latency, more_arrivals=False,
        )
        assert (batch, deadline) == (4, None)

    def test_no_rate_estimate_is_work_conserving(self):
        batcher = DynamicBatcher(batch_sizes=BATCHES, max_wait_us=100.0)
        batch, deadline = batcher.choose(
            queue_len=5, now_ns=0.0, oldest_arrival_ns=0.0,
            ema_interarrival_ns=math.inf, latency_of=self._latency, more_arrivals=True,
        )
        assert (batch, deadline) == (4, None)


class TestPolicies:
    def test_registry(self):
        validate_policy("fifo")
        validate_policy("least_loaded")
        validate_policy("latency")
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("magic")

    def test_least_loaded_prefers_idle_history(self):
        fleet = Fleet.homogeneous("S", 2)
        fleet.workers[0].busy_ns = 100.0
        policy = LeastLoadedPolicy()
        chosen = policy.choose_worker(fleet.workers, "squeezenet", 1, None, 0.0)
        assert chosen.index == 1

    def test_latency_aware_prefers_faster_chip(self):
        cache = PlanCache(optimizer="dp")
        fleet = Fleet.from_spec("S:1,M:1")
        policy = LatencyAwarePolicy()
        chosen = policy.choose_worker(fleet.workers, "squeezenet", 4, cache, 0.0)
        latencies = {
            w.index: cache.get("squeezenet", w.chip_name, 4).latency_ns
            for w in fleet.workers
        }
        assert latencies[chosen.index] == min(latencies.values())


# ----------------------------------------------------------------------
# Fleet
# ----------------------------------------------------------------------
class TestFleet:
    def test_spec_parsing(self):
        fleet = Fleet.from_spec("S:2,M:1")
        assert [w.chip_name for w in fleet.workers] == ["S", "S", "M"]
        assert fleet.spec == "S:2,M:1"
        assert fleet.chip_names == ("S", "M")
        assert Fleet.from_spec("M").spec == "M:1"

    def test_spec_round_trips_interleaved_order(self):
        # worker order drives FIFO dispatch and tie-breaks, so the reported
        # spec must rebuild the same order, not collapse S,M,S into S:2,M:1
        fleet = Fleet.from_spec("S:1,M:1,S:1")
        assert fleet.spec == "S:1,M:1,S:1"
        rebuilt = Fleet.from_spec(fleet.spec)
        assert [w.chip_name for w in rebuilt.workers] == \
            [w.chip_name for w in fleet.workers]
        assert Fleet.from_spec("S:2,M:1").spec == "S:2,M:1"

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            Fleet.from_spec("")
        with pytest.raises(ValueError):
            Fleet.from_spec("Z:2")
        with pytest.raises(ValueError):
            Fleet.from_spec("M:0")
        with pytest.raises(ValueError):
            Fleet.from_spec("M:x")

    def test_idle_workers(self):
        fleet = Fleet.homogeneous("S", 2)
        fleet.workers[0].busy_until_ns = 50.0
        assert [w.index for w in fleet.idle_workers(10.0)] == [1]
        assert [w.index for w in fleet.idle_workers(50.0)] == [0, 1]


# ----------------------------------------------------------------------
# Serving simulator: fixed-seed determinism and accounting
# ----------------------------------------------------------------------
def _run_once(cache=None, policy="latency", max_wait_us=200.0, seed=0,
              fleet_spec="S:2", model="squeezenet", requests=80):
    cache = cache if cache is not None else PlanCache(optimizer="dp")
    fleet = Fleet.from_spec(fleet_spec)
    cache.warmup([model], fleet.chip_names, BATCHES)
    rate = 0.7 * fleet_capacity_rps(cache, fleet, (model,), BATCHES)
    traffic = PoissonTraffic(model, num_requests=requests, seed=seed, rate_rps=rate)
    simulator = ServingSimulator(fleet, cache, policy=policy,
                                 batch_sizes=BATCHES, max_wait_us=max_wait_us)
    return simulator.run(traffic.generate(), traffic_info=traffic.describe())


class TestServingSimulator:
    def test_fixed_seed_replay_identical(self):
        first = _run_once(seed=0)
        second = _run_once(seed=0)
        assert first.as_dict() == second.as_dict()

    def test_warm_cache_replay_identical(self):
        cold = _run_once(seed=0)
        cache = PlanCache(optimizer="dp")
        warm_once = _run_once(cache=cache, seed=0)
        warm_twice = _run_once(cache=cache, seed=0)
        # the deterministic core is cache-temperature independent ...
        assert cold.determinism_dict() == warm_once.determinism_dict()
        assert warm_once.determinism_dict() == warm_twice.determinism_dict()
        # ... while the cache counters legitimately differ
        assert cold.plan_cache["misses"] == warm_twice.plan_cache["misses"]
        assert cold.plan_cache["hits"] < warm_twice.plan_cache["hits"]

    def test_different_seed_differs(self):
        assert _run_once(seed=0).as_dict() != _run_once(seed=1).as_dict()

    def test_all_requests_complete(self):
        report = _run_once(seed=0)
        assert report.completed == report.num_requests == 80
        assert report.throughput_rps > 0
        assert report.batches >= 1
        assert sum(report.batch_histogram.values()) == report.batches
        assert report.mean_batch == pytest.approx(80 / report.batches)

    def test_latency_percentiles_ordered(self):
        report = _run_once(seed=0)
        latency = report.latency_ms
        assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        assert latency["mean"] > 0
        # a request's sojourn includes its service time: the fastest
        # single-sample plan bounds every percentile from below
        assert latency["p50"] > 0

    def test_per_chip_accounting(self):
        report = _run_once(seed=0, fleet_spec="S:2")
        assert len(report.per_chip) == 2
        assert sum(row["requests"] for row in report.per_chip) == report.completed
        assert sum(row["batches"] for row in report.per_chip) == report.batches
        for row in report.per_chip:
            assert 0.0 <= row["utilisation"] <= 1.0
        total = sum(row["energy_mj"] for row in report.per_chip)
        assert total == pytest.approx(report.total_energy_mj)
        assert report.energy_per_request_mj == pytest.approx(total / report.completed)

    def test_policies_all_serve_everything(self):
        for policy in ("fifo", "least_loaded", "latency"):
            report = _run_once(seed=0, policy=policy)
            assert report.completed == 80
            assert report.policy == policy

    def test_greedy_vs_batched_tradeoff(self):
        greedy = _run_once(seed=0, max_wait_us=0.0)
        batched = _run_once(seed=0, max_wait_us=500.0)
        # holding can only raise the mean batch size
        assert batched.mean_batch >= greedy.mean_batch
        assert greedy.padded_batches == 0

    def test_heterogeneous_fleet(self):
        report = _run_once(seed=0, fleet_spec="S:1,M:1")
        assert report.fleet_spec == "S:1,M:1"
        assert report.completed == 80
        assert {row["class"] for row in report.per_chip} == {"S", "M"}

    def test_trace_replay_reproduces_run(self, tmp_path):
        cache = PlanCache(optimizer="dp")
        fleet = Fleet.from_spec("S:2")
        cache.warmup(["squeezenet"], fleet.chip_names, BATCHES)
        traffic = BurstyTraffic("squeezenet", num_requests=60, seed=4, rate_rps=2000)
        requests = traffic.generate()
        path = str(tmp_path / "trace.json")
        save_trace(requests, path)
        simulator = ServingSimulator(fleet, cache, policy="fifo",
                                     batch_sizes=BATCHES, max_wait_us=100.0)
        live = simulator.run(requests, traffic_info={"traffic": "bursty"})
        replayed = ServingSimulator(
            Fleet.from_spec("S:2"), cache, policy="fifo",
            batch_sizes=BATCHES, max_wait_us=100.0,
        ).run(TraceTraffic(path).generate(), traffic_info={"traffic": "bursty"})
        assert live.determinism_dict() == replayed.determinism_dict()

    def test_empty_stream_rejected(self):
        cache = PlanCache(optimizer="dp")
        simulator = ServingSimulator(Fleet.homogeneous("S"), cache)
        with pytest.raises(ValueError):
            simulator.run([])

    def test_offset_timestamps_do_not_dilute_metrics(self):
        # replayed real-world traces carry epoch-style timestamps: the clock
        # must start at the first arrival, not t=0, or the idle prefix
        # swamps throughput/utilisation/queue depth
        cache = PlanCache(optimizer="dp")
        fleet_spec = "S:2"
        cache.warmup(["squeezenet"], Fleet.from_spec(fleet_spec).chip_names, BATCHES)
        traffic = PoissonTraffic("squeezenet", num_requests=40, seed=2, rate_rps=2000)
        requests = traffic.generate()
        offset = 1e12  # ~17 minutes into an epoch-style clock
        shifted = [
            Request(request_id=r.request_id, model=r.model,
                    arrival_ns=r.arrival_ns + offset)
            for r in requests
        ]

        def run(stream):
            simulator = ServingSimulator(Fleet.from_spec(fleet_spec), cache,
                                         policy="fifo", batch_sizes=BATCHES,
                                         max_wait_us=100.0)
            return simulator.run(stream)

        base, moved = run(requests), run(shifted)
        assert moved.throughput_rps == pytest.approx(base.throughput_rps, rel=1e-6)
        assert moved.makespan_ms == pytest.approx(base.makespan_ms, rel=1e-6)
        assert moved.queue_depth["mean"] == pytest.approx(
            base.queue_depth["mean"], rel=1e-6)
        for row_base, row_moved in zip(base.per_chip, moved.per_chip):
            assert row_moved["utilisation"] == pytest.approx(
                row_base["utilisation"], rel=1e-6)

    def test_single_request_rates_are_finite(self):
        cache = PlanCache(optimizer="dp")
        fleet = Fleet.homogeneous("S")
        cache.warmup(["squeezenet"], fleet.chip_names, BATCHES)
        simulator = ServingSimulator(fleet, cache, batch_sizes=BATCHES)
        report = simulator.run([Request(request_id=0, model="squeezenet",
                                        arrival_ns=50.0)])
        # a single arrival spans no time: the offered rate is undefined and
        # must read 0, not 1/1e-12
        assert report.offered_rps == 0.0
        assert report.completed == 1
        assert report.throughput_rps > 0.0

    def test_edp_mode_plans(self):
        cache = PlanCache(optimizer="dp", mode=FitnessMode.EDP)
        plan = cache.get("lenet5", "S", 4)
        assert plan.key.mode is FitnessMode.EDP
        assert plan.energy_pj > 0


def test_shared_plan_cache_is_shared_and_guards_capacity():
    from repro.evaluation.registry import clear_registry, shared_plan_cache

    clear_registry()
    try:
        cache = shared_plan_cache("dp", capacity=32)
        assert shared_plan_cache("dp", capacity=32) is cache
        # a second consumer asking for different eviction behaviour must not
        # silently receive the existing cache
        with pytest.raises(ValueError, match="capacity"):
            shared_plan_cache("dp", capacity=8)
        plan = cache.get("lenet5", "S", 1)
        assert shared_plan_cache("dp", capacity=32).get("lenet5", "S", 1) is plan
    finally:
        clear_registry()


def test_request_ordering_is_stable():
    requests = [
        Request(request_id=1, model="a", arrival_ns=5.0),
        Request(request_id=0, model="a", arrival_ns=5.0),
    ]
    ordered = sorted(requests, key=lambda r: (r.arrival_ns, r.request_id))
    assert [r.request_id for r in ordered] == [0, 1]
