"""Tests for the traffic-driven serving subsystem (:mod:`repro.serve`)."""

import json
import math
import os
from collections import deque

import pytest

from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.evaluation.registry import shared_decomposition
from repro.hardware.dram import LPDDR3_8GB
from repro.search import DPOptimalSearch
from repro.serve import (
    BurstyTraffic,
    ClosedLoopTraffic,
    CompiledPlan,
    DiurnalTraffic,
    DynamicBatcher,
    FairPolicy,
    FaultTolerance,
    Fleet,
    LatencyAwarePolicy,
    LeastLoadedPolicy,
    PlanCache,
    PlanCacheStats,
    PlanKey,
    PoissonTraffic,
    Request,
    ServingSimulator,
    TraceTraffic,
    fleet_capacity_rps,
    load_trace,
    make_policy,
    parse_inject,
    save_trace,
    service_latency_ns,
    switch_cost_enabled,
    validate_policy,
    validate_traffic,
)
from repro.serve.simulator import _percentile

BATCHES = (1, 2, 4, 8, 16)


class _StubPlanCache:
    """Hand-built plans keyed by (chip, batch) — for scheduling unit tests.

    Duck-types the slice of :class:`PlanCache` the simulator and policies
    consume (``get``/``optimizer``/``mode``/``stats``), so tests can
    engineer latency curves that real compiled models do not exhibit.
    """

    def __init__(self, latencies, weight_replace=None, energy_pj=4000.0):
        self.optimizer = "stub"
        self.mode = FitnessMode.LATENCY
        self._plans = {}
        for (chip, batch), latency in latencies.items():
            wr = (weight_replace or {}).get((chip, batch), 0.0)
            key = PlanKey(model="stub", chip=chip, dram=LPDDR3_8GB, batch=batch,
                          mode=FitnessMode.LATENCY, optimizer="stub")
            self._plans[(chip, batch)] = CompiledPlan(
                key=key, boundaries=(0,), num_partitions=1,
                latency_ns=float(latency), energy_pj=energy_pj,
                weight_replace_ns=wr, fill_ns=float(latency) - wr,
                bottleneck_ns=0.0, best_fitness=float(latency),
                exact=True, evaluations=0,
            )

    def get(self, model, chip, batch):
        return self._plans[(chip, batch)]

    @property
    def stats(self):
        return PlanCacheStats()


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(optimizer="dp")
        first = cache.get("squeezenet", "S", 4)
        second = cache.get("squeezenet", "S", 4)
        assert first is second
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.evictions == 0
        assert stats.size == 1

    def test_plan_matches_exact_search(self):
        cache = PlanCache(optimizer="dp")
        plan = cache.get("squeezenet", "S", 8)
        decomposition, validity = shared_decomposition("squeezenet", "S")
        evaluator = FitnessEvaluator(decomposition, batch_size=8)
        result = DPOptimalSearch(decomposition, evaluator, validity).run()
        assert plan.boundaries == tuple(result.best_group.boundaries)
        # the plan's latency is the bit-exact sequential span sum, i.e. the
        # search engine's fitness in latency mode
        assert plan.latency_ns == result.best_fitness
        assert plan.exact
        assert plan.energy_pj > 0

    def test_latency_curve_matches_compiled_batch(self):
        cache = PlanCache(optimizer="dp")
        plan = cache.get("squeezenet", "S", 8)
        assert plan.latency_at(8) == pytest.approx(plan.latency_ns, rel=1e-12)
        # the affine curve grows by the bottleneck per extra sample
        assert plan.latency_at(9) - plan.latency_at(8) == pytest.approx(
            plan.bottleneck_ns, rel=1e-12
        )

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2, optimizer="dp")
        cache.get("squeezenet", "S", 1)
        cache.get("squeezenet", "S", 2)
        cache.get("squeezenet", "S", 1)  # refresh batch-1: batch-2 becomes LRU
        cache.get("squeezenet", "S", 4)  # evicts batch-2
        assert cache.stats.evictions == 1
        assert cache.contains("squeezenet", "S", 1)
        assert not cache.contains("squeezenet", "S", 2)
        assert cache.contains("squeezenet", "S", 4)
        # the evicted plan recompiles to the identical deterministic plan
        before = cache.get("squeezenet", "S", 1)
        evicted = cache.get("squeezenet", "S", 2)  # miss again, evicts batch-4
        assert cache.stats.misses == 4
        assert evicted.boundaries == before.boundaries or evicted.key != before.key

    def test_warmup_stats(self):
        cache = PlanCache(optimizer="dp")
        compiled = cache.warmup(["squeezenet"], ["S"], [1, 4])
        assert compiled == 2
        stats = cache.stats
        assert stats.warmup_compiles == 2
        assert stats.misses == 2
        assert stats.hits == 0
        # a second warmup is all hits: nothing new compiled
        assert cache.warmup(["squeezenet"], ["S"], [1, 4]) == 0
        assert cache.stats.warmup_compiles == 2
        assert cache.stats.hits == 2
        # misses after warmup are not counted as warmup compiles
        cache.get("squeezenet", "S", 2)
        assert cache.stats.warmup_compiles == 2
        assert cache.stats.misses == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
        with pytest.raises(ValueError, match="unknown optimizer"):
            PlanCache(optimizer="magic")


# ----------------------------------------------------------------------
# Traffic generators
# ----------------------------------------------------------------------
class TestTraffic:
    def test_poisson_deterministic(self):
        first = PoissonTraffic("squeezenet", num_requests=50, seed=7, rate_rps=500).generate()
        second = PoissonTraffic("squeezenet", num_requests=50, seed=7, rate_rps=500).generate()
        assert first == second
        third = PoissonTraffic("squeezenet", num_requests=50, seed=8, rate_rps=500).generate()
        assert first != third

    def test_arrivals_sorted_and_positive(self):
        for traffic in (
            PoissonTraffic("squeezenet", num_requests=40, seed=0, rate_rps=300),
            BurstyTraffic("squeezenet", num_requests=40, seed=0, rate_rps=300),
            DiurnalTraffic("squeezenet", num_requests=40, seed=0, base_rate_rps=300),
        ):
            requests = traffic.generate()
            assert len(requests) == 40
            arrivals = [r.arrival_ns for r in requests]
            assert arrivals == sorted(arrivals)
            assert arrivals[0] > 0

    def test_model_mix(self):
        traffic = PoissonTraffic(("squeezenet", "lenet5"), num_requests=200,
                                 seed=0, rate_rps=300)
        models = {r.model for r in traffic.generate()}
        assert models == {"squeezenet", "lenet5"}

    def test_trace_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        original = BurstyTraffic("squeezenet", num_requests=30, seed=5,
                                 rate_rps=400).generate()
        save_trace(original, path)
        assert load_trace(path) == original
        replay = TraceTraffic(path)
        assert replay.generate() == original
        assert replay.num_requests == 30

    def test_malformed_trace_raises_value_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"requests": [{"id": 0, "model": "squeezenet"}]}')
        with pytest.raises(ValueError, match="malformed trace"):
            load_trace(str(path))
        path.write_text('{"no_requests_key": []}')
        with pytest.raises(ValueError, match="malformed trace"):
            load_trace(str(path))

    def test_validate_traffic(self):
        validate_traffic("poisson")
        with pytest.raises(ValueError, match="unknown traffic"):
            validate_traffic("magic")


# ----------------------------------------------------------------------
# Dynamic batcher and policies
# ----------------------------------------------------------------------
class TestDynamicBatcher:
    @staticmethod
    def _latency(batch):
        # big weight-replacement intercept: batching amortises heavily
        return 1000.0 + 10.0 * batch

    def test_greedy_without_wait_budget(self):
        batcher = DynamicBatcher(batch_sizes=BATCHES, max_wait_us=0.0)
        batch, deadline = batcher.choose(
            queue_len=5, now_ns=0.0, oldest_arrival_ns=0.0,
            ema_interarrival_ns=10.0, latency_of=self._latency, more_arrivals=True,
        )
        assert (batch, deadline) == (4, None)

    def test_padded_when_queue_below_smallest(self):
        batcher = DynamicBatcher(batch_sizes=(4, 8), max_wait_us=0.0)
        assert batcher.dispatch_size(3) == 4
        assert batcher.dispatch_size(9) == 8

    def test_holds_when_amortisation_wins(self):
        batcher = DynamicBatcher(batch_sizes=BATCHES, max_wait_us=100.0)
        # cheap wait (tight arrivals) + huge amortisation: hold for 8
        batch, deadline = batcher.choose(
            queue_len=5, now_ns=1000.0, oldest_arrival_ns=900.0,
            ema_interarrival_ns=1.0, latency_of=self._latency, more_arrivals=True,
        )
        assert batch == 0
        assert deadline == pytest.approx(900.0 + 100e3)

    def test_dispatches_when_wait_exceeds_budget(self):
        batcher = DynamicBatcher(batch_sizes=BATCHES, max_wait_us=0.001)  # 1 ns
        batch, deadline = batcher.choose(
            queue_len=5, now_ns=1000.0, oldest_arrival_ns=999.5,
            ema_interarrival_ns=1.0, latency_of=self._latency, more_arrivals=True,
        )
        assert (batch, deadline) == (4, None)

    def test_dispatches_without_future_arrivals(self):
        batcher = DynamicBatcher(batch_sizes=BATCHES, max_wait_us=100.0)
        batch, deadline = batcher.choose(
            queue_len=5, now_ns=0.0, oldest_arrival_ns=0.0,
            ema_interarrival_ns=1.0, latency_of=self._latency, more_arrivals=False,
        )
        assert (batch, deadline) == (4, None)

    def test_no_rate_estimate_is_work_conserving(self):
        batcher = DynamicBatcher(batch_sizes=BATCHES, max_wait_us=100.0)
        batch, deadline = batcher.choose(
            queue_len=5, now_ns=0.0, oldest_arrival_ns=0.0,
            ema_interarrival_ns=math.inf, latency_of=self._latency, more_arrivals=True,
        )
        assert (batch, deadline) == (4, None)


class TestPolicies:
    def test_registry(self):
        validate_policy("fifo")
        validate_policy("least_loaded")
        validate_policy("latency")
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("magic")

    def test_least_loaded_prefers_idle_history(self):
        fleet = Fleet.homogeneous("S", 2)
        fleet.workers[0].busy_ns = 100.0
        policy = LeastLoadedPolicy()
        chosen = policy.choose_worker(fleet.workers, "squeezenet", 1, None, 0.0)
        assert chosen.index == 1

    def test_latency_aware_prefers_faster_chip(self):
        cache = PlanCache(optimizer="dp")
        fleet = Fleet.from_spec("S:1,M:1")
        policy = LatencyAwarePolicy()
        chosen = policy.choose_worker(fleet.workers, "squeezenet", 4, cache, 0.0)
        latencies = {
            w.index: cache.get("squeezenet", w.chip_name, 4).latency_ns
            for w in fleet.workers
        }
        assert latencies[chosen.index] == min(latencies.values())


# ----------------------------------------------------------------------
# Fleet
# ----------------------------------------------------------------------
class TestFleet:
    def test_spec_parsing(self):
        fleet = Fleet.from_spec("S:2,M:1")
        assert [w.chip_name for w in fleet.workers] == ["S", "S", "M"]
        assert fleet.spec == "S:2,M:1"
        assert fleet.chip_names == ("S", "M")
        assert Fleet.from_spec("M").spec == "M:1"

    def test_spec_round_trips_interleaved_order(self):
        # worker order drives FIFO dispatch and tie-breaks, so the reported
        # spec must rebuild the same order, not collapse S,M,S into S:2,M:1
        fleet = Fleet.from_spec("S:1,M:1,S:1")
        assert fleet.spec == "S:1,M:1,S:1"
        rebuilt = Fleet.from_spec(fleet.spec)
        assert [w.chip_name for w in rebuilt.workers] == \
            [w.chip_name for w in fleet.workers]
        assert Fleet.from_spec("S:2,M:1").spec == "S:2,M:1"

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            Fleet.from_spec("")
        with pytest.raises(ValueError):
            Fleet.from_spec("Z:2")
        with pytest.raises(ValueError):
            Fleet.from_spec("M:0")
        with pytest.raises(ValueError):
            Fleet.from_spec("M:x")

    def test_idle_workers(self):
        fleet = Fleet.homogeneous("S", 2)
        fleet.workers[0].busy_until_ns = 50.0
        assert [w.index for w in fleet.idle_workers(10.0)] == [1]
        assert [w.index for w in fleet.idle_workers(50.0)] == [0, 1]


# ----------------------------------------------------------------------
# Serving simulator: fixed-seed determinism and accounting
# ----------------------------------------------------------------------
def _run_once(cache=None, policy="latency", max_wait_us=200.0, seed=0,
              fleet_spec="S:2", model="squeezenet", requests=80):
    cache = cache if cache is not None else PlanCache(optimizer="dp")
    fleet = Fleet.from_spec(fleet_spec)
    cache.warmup([model], fleet.chip_names, BATCHES)
    rate = 0.7 * fleet_capacity_rps(cache, fleet, (model,), BATCHES)
    traffic = PoissonTraffic(model, num_requests=requests, seed=seed, rate_rps=rate)
    simulator = ServingSimulator(fleet, cache, policy=policy,
                                 batch_sizes=BATCHES, max_wait_us=max_wait_us)
    return simulator.run(traffic.generate(), traffic_info=traffic.describe())


class TestServingSimulator:
    def test_fixed_seed_replay_identical(self):
        first = _run_once(seed=0)
        second = _run_once(seed=0)
        assert first.as_dict() == second.as_dict()

    def test_warm_cache_replay_identical(self):
        cold = _run_once(seed=0)
        cache = PlanCache(optimizer="dp")
        warm_once = _run_once(cache=cache, seed=0)
        warm_twice = _run_once(cache=cache, seed=0)
        # the deterministic core is cache-temperature independent ...
        assert cold.determinism_dict() == warm_once.determinism_dict()
        assert warm_once.determinism_dict() == warm_twice.determinism_dict()
        # ... while the cache counters legitimately differ
        assert cold.plan_cache["misses"] == warm_twice.plan_cache["misses"]
        assert cold.plan_cache["hits"] < warm_twice.plan_cache["hits"]

    def test_different_seed_differs(self):
        assert _run_once(seed=0).as_dict() != _run_once(seed=1).as_dict()

    def test_all_requests_complete(self):
        report = _run_once(seed=0)
        assert report.completed == report.num_requests == 80
        assert report.throughput_rps > 0
        assert report.batches >= 1
        assert sum(report.batch_histogram.values()) == report.batches
        assert report.mean_batch == pytest.approx(80 / report.batches)

    def test_latency_percentiles_ordered(self):
        report = _run_once(seed=0)
        latency = report.latency_ms
        assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        assert latency["mean"] > 0
        # a request's sojourn includes its service time: the fastest
        # single-sample plan bounds every percentile from below
        assert latency["p50"] > 0

    def test_per_chip_accounting(self):
        report = _run_once(seed=0, fleet_spec="S:2")
        assert len(report.per_chip) == 2
        assert sum(row["requests"] for row in report.per_chip) == report.completed
        assert sum(row["batches"] for row in report.per_chip) == report.batches
        for row in report.per_chip:
            assert 0.0 <= row["utilisation"] <= 1.0
        total = sum(row["energy_mj"] for row in report.per_chip)
        assert total == pytest.approx(report.total_energy_mj)
        assert report.energy_per_request_mj == pytest.approx(total / report.completed)

    def test_policies_all_serve_everything(self):
        for policy in ("fifo", "least_loaded", "latency"):
            report = _run_once(seed=0, policy=policy)
            assert report.completed == 80
            assert report.policy == policy

    def test_greedy_vs_batched_tradeoff(self):
        greedy = _run_once(seed=0, max_wait_us=0.0)
        batched = _run_once(seed=0, max_wait_us=500.0)
        # holding can only raise the mean batch size
        assert batched.mean_batch >= greedy.mean_batch
        assert greedy.padded_batches == 0

    def test_heterogeneous_fleet(self):
        report = _run_once(seed=0, fleet_spec="S:1,M:1")
        assert report.fleet_spec == "S:1,M:1"
        assert report.completed == 80
        assert {row["class"] for row in report.per_chip} == {"S", "M"}

    def test_trace_replay_reproduces_run(self, tmp_path):
        cache = PlanCache(optimizer="dp")
        fleet = Fleet.from_spec("S:2")
        cache.warmup(["squeezenet"], fleet.chip_names, BATCHES)
        traffic = BurstyTraffic("squeezenet", num_requests=60, seed=4, rate_rps=2000)
        requests = traffic.generate()
        path = str(tmp_path / "trace.json")
        save_trace(requests, path)
        simulator = ServingSimulator(fleet, cache, policy="fifo",
                                     batch_sizes=BATCHES, max_wait_us=100.0)
        live = simulator.run(requests, traffic_info={"traffic": "bursty"})
        replayed = ServingSimulator(
            Fleet.from_spec("S:2"), cache, policy="fifo",
            batch_sizes=BATCHES, max_wait_us=100.0,
        ).run(TraceTraffic(path).generate(), traffic_info={"traffic": "bursty"})
        assert live.determinism_dict() == replayed.determinism_dict()

    def test_empty_stream_rejected(self):
        cache = PlanCache(optimizer="dp")
        simulator = ServingSimulator(Fleet.homogeneous("S"), cache)
        with pytest.raises(ValueError):
            simulator.run([])

    def test_offset_timestamps_do_not_dilute_metrics(self):
        # replayed real-world traces carry epoch-style timestamps: the clock
        # must start at the first arrival, not t=0, or the idle prefix
        # swamps throughput/utilisation/queue depth
        cache = PlanCache(optimizer="dp")
        fleet_spec = "S:2"
        cache.warmup(["squeezenet"], Fleet.from_spec(fleet_spec).chip_names, BATCHES)
        traffic = PoissonTraffic("squeezenet", num_requests=40, seed=2, rate_rps=2000)
        requests = traffic.generate()
        offset = 1e12  # ~17 minutes into an epoch-style clock
        shifted = [
            Request(request_id=r.request_id, model=r.model,
                    arrival_ns=r.arrival_ns + offset)
            for r in requests
        ]

        def run(stream):
            simulator = ServingSimulator(Fleet.from_spec(fleet_spec), cache,
                                         policy="fifo", batch_sizes=BATCHES,
                                         max_wait_us=100.0)
            return simulator.run(stream)

        base, moved = run(requests), run(shifted)
        assert moved.throughput_rps == pytest.approx(base.throughput_rps, rel=1e-6)
        assert moved.makespan_ms == pytest.approx(base.makespan_ms, rel=1e-6)
        assert moved.queue_depth["mean"] == pytest.approx(
            base.queue_depth["mean"], rel=1e-6)
        for row_base, row_moved in zip(base.per_chip, moved.per_chip):
            assert row_moved["utilisation"] == pytest.approx(
                row_base["utilisation"], rel=1e-6)

    def test_single_request_rates_are_finite(self):
        cache = PlanCache(optimizer="dp")
        fleet = Fleet.homogeneous("S")
        cache.warmup(["squeezenet"], fleet.chip_names, BATCHES)
        simulator = ServingSimulator(fleet, cache, batch_sizes=BATCHES)
        report = simulator.run([Request(request_id=0, model="squeezenet",
                                        arrival_ns=50.0)])
        # a single arrival spans no time: the offered rate is undefined and
        # must read 0, not 1/1e-12
        assert report.offered_rps == 0.0
        assert report.completed == 1
        assert report.throughput_rps > 0.0

    def test_edp_mode_plans(self):
        cache = PlanCache(optimizer="dp", mode=FitnessMode.EDP)
        plan = cache.get("lenet5", "S", 4)
        assert plan.key.mode is FitnessMode.EDP
        assert plan.energy_pj > 0


def test_shared_plan_cache_is_shared_and_guards_capacity():
    from repro.evaluation.registry import clear_registry, shared_plan_cache

    clear_registry()
    try:
        cache = shared_plan_cache("dp", capacity=32)
        assert shared_plan_cache("dp", capacity=32) is cache
        # a second consumer asking for different eviction behaviour must not
        # silently receive the existing cache
        with pytest.raises(ValueError, match="capacity"):
            shared_plan_cache("dp", capacity=8)
        plan = cache.get("lenet5", "S", 1)
        assert shared_plan_cache("dp", capacity=32).get("lenet5", "S", 1) is plan
    finally:
        clear_registry()


def test_request_ordering_is_stable():
    requests = [
        Request(request_id=1, model="a", arrival_ns=5.0),
        Request(request_id=0, model="a", arrival_ns=5.0),
    ]
    ordered = sorted(requests, key=lambda r: (r.arrival_ns, r.request_id))
    assert [r.request_id for r in ordered] == [0, 1]


# ----------------------------------------------------------------------
# Nearest-rank percentile semantics
# ----------------------------------------------------------------------
class TestPercentile:
    def test_empty(self):
        assert _percentile([], 50) == 0.0
        assert _percentile([], 99) == 0.0

    def test_singleton(self):
        assert _percentile([7.0], 1) == 7.0
        assert _percentile([7.0], 50) == 7.0
        assert _percentile([7.0], 99) == 7.0

    def test_even_length_p50_is_lower_median(self):
        # nearest rank: ceil(0.5 * 4) = 2 -> the second element
        assert _percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_tails(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 95) == 4.0
        assert _percentile(values, 99) == 4.0
        assert _percentile(values, 25) == 1.0
        assert _percentile(values, 100) == 4.0


# ----------------------------------------------------------------------
# Plan-switch weight-replacement cost
# ----------------------------------------------------------------------
def _load_pre_pr5():
    path = os.path.join(os.path.dirname(__file__), "data", "serving_pre_pr5.json")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _run_mix(switch_cost, fleet_spec="S:1,M:1", seed=3, max_wait_us=200.0,
             policy="latency", slos=None):
    cache = PlanCache(optimizer="dp")
    fleet = Fleet.from_spec(fleet_spec)
    models = ["squeezenet", "lenet5"]
    cache.warmup(models, fleet.chip_names, BATCHES)
    rate = 0.7 * fleet_capacity_rps(cache, fleet, models, BATCHES)
    traffic = PoissonTraffic(models, num_requests=60, seed=seed, rate_rps=rate)
    simulator = ServingSimulator(fleet, cache, policy=policy,
                                 batch_sizes=BATCHES, max_wait_us=max_wait_us,
                                 switch_cost=switch_cost, slos=slos)
    return simulator.run(traffic.generate(), traffic_info=traffic.describe())


class TestSwitchCost:
    def test_off_path_bit_identical_to_pre_pr_homogeneous(self):
        # the pinned pre-switch-cost report: every pre-existing key is
        # bit-identical; served_histogram is the only addition (and equals
        # batch_histogram because the pinned run has no padded batches)
        expected = _load_pre_pr5()["homogeneous_hold"]
        cache = PlanCache(optimizer="dp")
        fleet = Fleet.from_spec("S:2")
        cache.warmup(["squeezenet"], fleet.chip_names, BATCHES)
        rate = 0.7 * fleet_capacity_rps(cache, fleet, ("squeezenet",), BATCHES)
        traffic = PoissonTraffic("squeezenet", num_requests=80, seed=0,
                                 rate_rps=rate)
        simulator = ServingSimulator(fleet, cache, policy="latency",
                                     batch_sizes=BATCHES, max_wait_us=200.0,
                                     switch_cost=False)
        data = simulator.run(traffic.generate(),
                             traffic_info=traffic.describe()).determinism_dict()
        assert set(data) - set(expected) == {"served_histogram"}
        for key in expected:
            assert data[key] == expected[key], key
        assert expected["padded_batches"] == 0
        assert data["served_histogram"] == data["batch_histogram"]

    def test_off_path_bit_identical_to_pre_pr_heterogeneous(self):
        expected = _load_pre_pr5()["heterogeneous_greedy"]
        data = _run_mix(switch_cost=False, max_wait_us=0.0).determinism_dict()
        assert set(data) - set(expected) == {"served_histogram"}
        for key in expected:
            assert data[key] == expected[key], key
        assert data["served_histogram"] == data["batch_histogram"]

    def test_env_var_gates_default(self, monkeypatch):
        cache = PlanCache(optimizer="dp")
        monkeypatch.setenv("REPRO_SERVE_SWITCH_COST", "0")
        assert not switch_cost_enabled()
        assert not ServingSimulator(Fleet.homogeneous("S"), cache).switch_cost
        monkeypatch.setenv("REPRO_SERVE_SWITCH_COST", "1")
        assert switch_cost_enabled()
        assert ServingSimulator(Fleet.homogeneous("S"), cache).switch_cost
        # the explicit parameter overrides the environment
        assert not ServingSimulator(Fleet.homogeneous("S"), cache,
                                    switch_cost=False).switch_cost

    def test_multi_model_switches_raise_tail_latency(self):
        off = _run_mix(switch_cost=False)
        on = _run_mix(switch_cost=True)
        assert on.plan_switches > 0
        assert on.switch_ms > 0.0
        assert on.latency_ms["p99"] > off.latency_ms["p99"]
        assert on.throughput_rps <= off.throughput_rps
        data = on.as_dict()
        assert data["switch"]["plan_switches"] == on.plan_switches
        assert sum(row["plan_switches"] for row in data["per_chip"]) == \
            on.plan_switches
        assert "switch" not in off.as_dict()

    def test_same_plan_homogeneous_run_has_zero_switches(self):
        def run(switch_cost):
            cache = PlanCache(optimizer="dp")
            fleet = Fleet.from_spec("S:2")
            cache.warmup(["squeezenet"], fleet.chip_names, (4,))
            rate = 0.7 * fleet_capacity_rps(cache, fleet, ("squeezenet",), (4,))
            traffic = PoissonTraffic("squeezenet", num_requests=40, seed=0,
                                     rate_rps=rate)
            simulator = ServingSimulator(fleet, cache, policy="latency",
                                         batch_sizes=(4,), max_wait_us=0.0,
                                         switch_cost=switch_cost)
            return simulator.run(traffic.generate())

        on, off = run(True), run(False)
        assert on.plan_switches == 0
        assert on.switch_ms == 0.0
        # with no switches the charge never applies: every metric matches
        # the switch-oblivious run (only the switch bookkeeping is extra)
        on_dict, off_dict = on.determinism_dict(), off.determinism_dict()
        on_dict.pop("switch")
        on_chips = on_dict.pop("per_chip")
        off_chips = off_dict.pop("per_chip")
        assert on_dict == off_dict
        for row_on, row_off in zip(on_chips, off_chips):
            assert {k: v for k, v in row_on.items()
                    if k not in ("plan_switches", "switch_ms")} == row_off

    def test_service_latency_helper(self):
        cache = _StubPlanCache({("S", 4): 100.0, ("S", 8): 500.0},
                               weight_replace={("S", 4): 30.0, ("S", 8): 60.0})
        worker = Fleet.homogeneous("S").workers[0]
        plan4 = cache.get("stub", "S", 4)
        plan8 = cache.get("stub", "S", 8)
        # prewarmed first dispatch: no charge
        assert service_latency_ns(plan4, worker, True) == 100.0
        worker.loaded_plan = plan4.key
        # warm re-dispatch: no charge; plan switch: + incoming WR
        assert service_latency_ns(plan4, worker, True) == 100.0
        assert service_latency_ns(plan8, worker, True) == 560.0
        # modelling off: always the compiled latency
        assert service_latency_ns(plan8, worker, False) == 500.0

    def test_latency_policy_prefers_warm_chip(self):
        cache = _StubPlanCache(
            {("S", 4): 120.0, ("M", 4): 100.0, ("M", 8): 300.0},
            weight_replace={("S", 4): 30.0, ("M", 4): 50.0, ("M", 8): 40.0},
        )
        fleet = Fleet.from_spec("S:1,M:1")
        s, m = fleet.workers
        policy = LatencyAwarePolicy()
        # both prewarmed-cold: M is the faster class
        assert policy.choose_worker([s, m], "stub", 4, cache, 0.0, True) is m
        # S holds the batch-4 plan, M holds batch-8: M would pay its
        # 50 ns switch charge (150 effective) — the warm slower S (120) wins
        s.loaded_plan = cache.get("stub", "S", 4).key
        m.loaded_plan = cache.get("stub", "M", 8).key
        assert policy.choose_worker([s, m], "stub", 4, cache, 0.0, True) is s
        # with switch cost off the faster class wins regardless
        assert policy.choose_worker([s, m], "stub", 4, cache, 0.0, False) is m


# ----------------------------------------------------------------------
# Batcher reference-chip regression (heterogeneous hold-vs-dispatch)
# ----------------------------------------------------------------------
class TestBatcherReferenceChip:
    def test_hold_decision_costs_each_batch_on_its_own_chip(self):
        # On S:1,M:1 the latency policy routes batch 4 to M but batch 8 to
        # S (the per-size plans re-optimise partitioning: S's batch-8 plan
        # amortises so well it beats even its batch-4 plan, while M's
        # batch-8 plan is pathological).  When both chips are idle with 7
        # queued requests, the hold-vs-dispatch comparison must cost
        # b_next=8 on S — costing it on the chip chosen for b_now=4 (M)
        # made holding look hopeless and split the queue into two batch-4
        # dispatches instead of accumulating one full batch 8.
        cache = _StubPlanCache({
            ("S", 4): 200_000.0, ("S", 8): 150_000.0,
            ("M", 4): 100_000.0, ("M", 8): 10_000_000.0,
        })
        fleet = Fleet.from_spec("S:1,M:1")
        # r0 occupies M until t=100k while r1..r7 queue behind the held S;
        # at t=100k both chips are idle with the queue at 7; r8 lands last
        requests = (
            [Request(request_id=0, model="stub", arrival_ns=0.0)]
            + [Request(request_id=i, model="stub", arrival_ns=i * 1_000.0)
               for i in range(1, 8)]
            + [Request(request_id=8, model="stub", arrival_ns=300_000.0)]
        )
        simulator = ServingSimulator(fleet, cache, policy="latency",
                                     batch_sizes=(4, 8), max_wait_us=1_000.0,
                                     switch_cost=False)
        report = simulator.run(requests)
        assert report.completed == 9
        # fixed: [r0 padded on M], [r1-r8 as one batch 8 on S] — the buggy
        # reference chip dispatched [r1-r4] and [r5-r8] as two batch 4s
        assert report.batches == 2
        assert report.padded_batches == 1
        assert report.batch_histogram == {4: 1, 8: 1}
        assert report.served_histogram == {1: 1, 8: 1}


# ----------------------------------------------------------------------
# Zero-gap interarrival EMA (duplicate trace timestamps)
# ----------------------------------------------------------------------
class TestZeroGapEMA:
    def test_simultaneous_arrivals_do_not_collapse_wait_estimate(self):
        # six requests share one timestamp (trace replay with duplicate
        # stamps); the zero gaps must not drag the EMA to ~0, where the
        # batcher concludes the next batch fills instantly and holds the
        # queue to the deadline on every decision
        cache = _StubPlanCache({("S", 1): 10_000.0, ("S", 8): 11_000.0})
        fleet = Fleet.homogeneous("S")
        requests = [Request(request_id=i, model="stub", arrival_ns=0.0)
                    for i in range(6)]
        requests.append(Request(request_id=6, model="stub",
                                arrival_ns=50_000_000.0))
        simulator = ServingSimulator(fleet, cache, policy="fifo",
                                     batch_sizes=(1, 8), max_wait_us=1_000.0,
                                     switch_cost=False)
        report = simulator.run(requests)
        assert report.completed == 7
        # zero gaps are skipped: no rate estimate exists, batching stays
        # work-conserving and the queue drains back to back — the broken
        # EMA held every request to the 1 ms deadline
        assert report.batches == 7
        assert report.wait_ms["max"] < 0.1
        assert report.batch_histogram == {1: 7}

    def test_duplicate_timestamp_trace_round_trips(self, tmp_path):
        path = str(tmp_path / "dup.json")
        requests = [Request(request_id=i, model="squeezenet", arrival_ns=5.0)
                    for i in range(3)]
        save_trace(requests, path)
        assert load_trace(path) == requests


# ----------------------------------------------------------------------
# Padded-batch accounting
# ----------------------------------------------------------------------
class TestPaddedBatchAccounting:
    def test_served_histogram_and_padded_energy_latency(self):
        # nominal batch 4 executes twice (once with 1 request, once with
        # 3): latency and energy are charged at the compiled batch size,
        # while served_histogram and mean_batch count actual requests
        cache = _StubPlanCache({("S", 4): 100_000.0, ("S", 8): 900_000.0},
                               energy_pj=4000.0)
        fleet = Fleet.homogeneous("S")
        requests = [Request(request_id=0, model="stub", arrival_ns=0.0)] + [
            Request(request_id=i, model="stub", arrival_ns=float(i))
            for i in range(1, 4)
        ]
        simulator = ServingSimulator(fleet, cache, policy="fifo",
                                     batch_sizes=(4, 8), max_wait_us=0.0,
                                     switch_cost=False)
        report = simulator.run(requests)
        assert report.completed == 4
        assert report.batches == 2
        assert report.padded_batches == 2
        assert report.batch_histogram == {4: 2}
        assert report.served_histogram == {1: 1, 3: 1}
        assert report.mean_batch == pytest.approx(2.0)
        # energy and chip time charge the nominal plan, spare slots included
        assert report.total_energy_mj == pytest.approx(2 * 4000.0 * 1e-9)
        assert report.per_chip[0]["busy_ms"] == pytest.approx(0.2)
        assert report.latency_ms["max"] == pytest.approx((200_000.0 - 1.0) * 1e-6)
        # the two histograms agree once padded slots are excluded
        assert sum(b * n for b, n in report.served_histogram.items()) == \
            report.completed
        assert sum(report.served_histogram.values()) == \
            sum(report.batch_histogram.values()) == report.batches

    def test_unpadded_runs_keep_histograms_equal(self):
        report = _run_once(seed=0)
        assert report.padded_batches == 0
        assert report.served_histogram == report.batch_histogram


# ----------------------------------------------------------------------
# Closed-loop traffic
# ----------------------------------------------------------------------
class TestClosedLoopTraffic:
    @staticmethod
    def _run(seed=5, clients=3, concurrency=1, requests=30, policy="latency",
             mean_think_s=0.0002, fleet_spec="S:1", models=("squeezenet",)):
        cache = PlanCache(optimizer="dp")
        fleet = Fleet.from_spec(fleet_spec)
        cache.warmup(models, fleet.chip_names, BATCHES)
        traffic = ClosedLoopTraffic(models, num_requests=requests, seed=seed,
                                    clients=clients, concurrency=concurrency,
                                    mean_think_s=mean_think_s)
        simulator = ServingSimulator(fleet, cache, policy=policy,
                                     batch_sizes=BATCHES, max_wait_us=100.0)
        return simulator.run(traffic), traffic

    def test_replay_is_bit_identical(self):
        first, _ = self._run(seed=5)
        second, _ = self._run(seed=5)
        assert first.determinism_dict() == second.determinism_dict()
        third, _ = self._run(seed=6)
        assert first.determinism_dict() != third.determinism_dict()

    def test_all_requests_complete(self):
        report, traffic = self._run(requests=30, clients=3)
        assert report.completed == report.num_requests == 30
        assert report.traffic["traffic"] == "closed"
        assert report.traffic["clients"] == 3
        assert report.traffic["concurrency"] == 1

    def test_outstanding_bounded_by_client_windows(self):
        # a closed loop can never queue more than clients * concurrency
        # requests — the defining difference from open-loop generators
        report, _ = self._run(requests=40, clients=3, concurrency=2,
                              mean_think_s=0.0)
        assert report.queue_depth["max"] <= 6
        report, _ = self._run(requests=40, clients=2, concurrency=1,
                              mean_think_s=0.0)
        assert report.queue_depth["max"] <= 2

    def test_generate_raises(self):
        traffic = ClosedLoopTraffic("squeezenet", num_requests=10, seed=0)
        with pytest.raises(ValueError, match="closed-loop"):
            traffic.generate()

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ClosedLoopTraffic("squeezenet", clients=0)
        with pytest.raises(ValueError):
            ClosedLoopTraffic("squeezenet", concurrency=0)
        with pytest.raises(ValueError):
            ClosedLoopTraffic("squeezenet", mean_think_s=-1.0)

    def test_session_issue_order_and_clients(self):
        traffic = ClosedLoopTraffic("squeezenet", num_requests=7, seed=1,
                                    clients=3, concurrency=2)
        session = traffic.session()
        initial = session.initial()
        # 3 clients x 2 outstanding = 6 initial issues, round-robin tagged
        assert [r.client for r in initial] == [0, 1, 2, 0, 1, 2]
        follow = session.on_complete(initial[1], 1_000_000.0)
        assert follow.client == 1
        assert follow.arrival_ns >= 1_000_000.0
        assert follow.request_id == 6
        assert session.on_complete(follow, 2_000_000.0) is None
        assert len(session.issued) == 7
        assert sum(session.model_counts().values()) == 7

    def test_realised_stream_replays_as_trace(self, tmp_path):
        report, traffic = self._run(requests=25, clients=2)
        issued = traffic.last_session.issued
        assert len(issued) == 25
        path = str(tmp_path / "closed.json")
        save_trace(issued, path)
        loaded = load_trace(path)
        # client tags survive the round trip
        assert sorted(loaded, key=lambda r: r.request_id) == \
            sorted(issued, key=lambda r: r.request_id)
        cache = PlanCache(optimizer="dp")
        fleet = Fleet.homogeneous("S")
        cache.warmup(["squeezenet"], fleet.chip_names, BATCHES)
        replay = ServingSimulator(fleet, cache, policy="latency",
                                  batch_sizes=BATCHES, max_wait_us=100.0)
        replayed = replay.run(TraceTraffic(path).generate())
        assert replayed.completed == 25


# ----------------------------------------------------------------------
# Per-model SLOs
# ----------------------------------------------------------------------
class TestSLOs:
    def test_blocks_and_attainment_bounds(self):
        report = _run_mix(switch_cost=True,
                          slos={"squeezenet": 1000.0, "lenet5": 1e-6})
        data = report.as_dict()
        assert set(report.slo) == {"squeezenet", "lenet5"}
        generous = report.slo["squeezenet"]
        hopeless = report.slo["lenet5"]
        # a 1-second target on a ms-scale workload is always attained; a
        # 1-picosecond target never is
        assert generous["attainment"] == 1.0
        assert hopeless["attainment"] == 0.0
        for block in report.slo.values():
            assert block["p50_ms"] <= block["p95_ms"] <= block["p99_ms"]
            assert block["completed"] > 0
        assert sum(b["completed"] for b in report.slo.values()) == \
            report.completed
        assert data["slo"]["squeezenet"] == generous

    def test_no_slos_no_block(self):
        report = _run_mix(switch_cost=True)
        assert report.slo == {}
        assert "slo" not in report.as_dict()

    def test_invalid_target_rejected(self):
        cache = PlanCache(optimizer="dp")
        with pytest.raises(ValueError, match="SLO target"):
            ServingSimulator(Fleet.homogeneous("S"), cache,
                             slos={"squeezenet": 0.0})

    def test_slo_run_is_deterministic(self):
        slos = {"squeezenet": 2.0, "lenet5": 1.0}
        first = _run_mix(switch_cost=True, slos=slos)
        second = _run_mix(switch_cost=True, slos=slos)
        assert first.determinism_dict() == second.determinism_dict()


# ----------------------------------------------------------------------
# Fair (deficit round-robin) policy
# ----------------------------------------------------------------------
class TestFairPolicy:
    def test_registered(self):
        validate_policy("fair")
        assert isinstance(make_policy("fair"), FairPolicy)

    def test_order_queues_serves_deficit_first(self):
        policy = FairPolicy()
        queues = {
            "a": deque([Request(request_id=0, model="a", arrival_ns=5.0)]),
            "b": deque([Request(request_id=1, model="b", arrival_ns=10.0)]),
        }
        # equal deficit: FIFO tie-break on the oldest head
        assert policy.order_queues(queues) == ["a", "b"]
        policy.note_dispatch("a", 4)
        assert policy.order_queues(queues) == ["b", "a"]
        policy.note_dispatch("b", 8)
        assert policy.order_queues(queues) == ["a", "b"]
        # reset() forgets the deficits (a new run starts clean)
        policy.reset()
        assert policy.order_queues(queues) == ["a", "b"]
        assert policy.order_queues({"a": queues["a"], "b": deque()}) == ["a"]

    def test_default_policies_keep_fifo_order(self):
        queues = {
            "a": deque([Request(request_id=1, model="a", arrival_ns=10.0)]),
            "b": deque([Request(request_id=0, model="b", arrival_ns=5.0)]),
        }
        for name in ("fifo", "least_loaded", "latency"):
            assert make_policy(name).order_queues(queues) == ["b", "a"]

    def test_fair_run_is_deterministic_and_complete(self):
        first = _run_mix(switch_cost=True, policy="fair")
        second = _run_mix(switch_cost=True, policy="fair")
        assert first.policy == "fair"
        assert first.completed == first.num_requests
        assert first.determinism_dict() == second.determinism_dict()

    def test_fair_bounds_minority_queue_wait(self):
        # one tenant floods the fleet while the other trickles: deficit
        # round-robin must not let the minority model's queue age behind
        # the flood (FIFO order would interleave strictly by arrival)
        cache = _StubPlanCache({("S", 1): 100_000.0, ("S", 4): 130_000.0})
        requests = [Request(request_id=i, model="flood", arrival_ns=float(i))
                    for i in range(12)]
        requests += [Request(request_id=12 + i, model="drip",
                             arrival_ns=100.0 + i) for i in range(2)]

        def run(policy):
            fleet = Fleet.homogeneous("S")
            simulator = ServingSimulator(fleet, cache, policy=policy,
                                         batch_sizes=(1, 4), max_wait_us=0.0,
                                         switch_cost=False)
            report = simulator.run(requests, traffic_info={"traffic": "unit"})
            return report

        fair = run("fair")
        fifo = run("fifo")
        assert fair.completed == fifo.completed == 14
        # the drip tenant is served strictly earlier under fair scheduling
        fair_slo = ServingSimulator(
            Fleet.homogeneous("S"), cache, policy="fair", batch_sizes=(1, 4),
            max_wait_us=0.0, switch_cost=False, slos={"drip": 1.0},
        ).run(requests)
        fifo_slo = ServingSimulator(
            Fleet.homogeneous("S"), cache, policy="fifo", batch_sizes=(1, 4),
            max_wait_us=0.0, switch_cost=False, slos={"drip": 1.0},
        ).run(requests)
        assert fair_slo.slo["drip"]["p99_ms"] < fifo_slo.slo["drip"]["p99_ms"]


# ----------------------------------------------------------------------
# Serving-report serialization round trip
# ----------------------------------------------------------------------
class TestServingReportRoundTrip:
    def test_dump_and_reload(self, tmp_path):
        from repro.serialization import dump_serving_report, load_result_dict

        report = _run_mix(switch_cost=True,
                          slos={"squeezenet": 2.0, "lenet5": 1.0})
        path = str(tmp_path / "serving.json")
        dump_serving_report(report, path)
        loaded = load_result_dict(path)
        assert loaded == report.as_dict()
        # histogram keys are stringified for JSON
        assert all(isinstance(k, str) for k in loaded["batch_histogram"])
        assert all(isinstance(k, str) for k in loaded["served_histogram"])
        assert loaded["switch"]["plan_switches"] == report.plan_switches
        assert loaded["slo"]["lenet5"]["target_ms"] == 1.0
        assert loaded["slo"]["squeezenet"]["attainment"] == \
            report.slo["squeezenet"]["attainment"]

    def test_switch_off_dump_keeps_legacy_shape(self, tmp_path):
        from repro.serialization import dump_serving_report, load_result_dict

        report = _run_mix(switch_cost=False, max_wait_us=0.0)
        path = str(tmp_path / "legacy.json")
        dump_serving_report(report, path)
        loaded = load_result_dict(path)
        assert "switch" not in loaded
        assert "slo" not in loaded
        assert all("plan_switches" not in row for row in loaded["per_chip"])


# ----------------------------------------------------------------------
# Fault-free bit-identity against the pre-fault simulator (PR 6 pins)
# ----------------------------------------------------------------------
def _load_pre_pr6():
    path = os.path.join(os.path.dirname(__file__), "data", "serving_pre_pr6.json")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _replay_capture(expected):
    """Re-run a pinned scenario from its own stored report.

    Every knob the run needs is recoverable from the capture (fleet, policy,
    batching, traffic parameters, SLO targets, whether switch cost was on),
    so the pin cannot drift from the scenario it describes.
    """
    traffic_info = expected["traffic"]
    models = list(traffic_info["models"])
    fleet = Fleet.from_spec(expected["fleet"])
    cache = PlanCache(optimizer=expected["optimizer"])
    batch_sizes = tuple(expected["batch_sizes"])
    cache.warmup(models, fleet.chip_names, batch_sizes)
    slos = {model: block["target_ms"]
            for model, block in expected.get("slo", {}).items()} or None
    simulator = ServingSimulator(
        fleet, cache, policy=expected["policy"], batch_sizes=batch_sizes,
        max_wait_us=expected["max_wait_us"],
        switch_cost="switch" in expected, slos=slos,
    )
    if traffic_info["traffic"] == "closed":
        traffic = ClosedLoopTraffic(
            models, num_requests=traffic_info["num_requests"],
            seed=traffic_info["seed"], clients=traffic_info["clients"],
            concurrency=traffic_info["concurrency"],
            mean_think_s=traffic_info["mean_think_s"],
        )
        return simulator.run(traffic)
    traffic = PoissonTraffic(models, num_requests=traffic_info["num_requests"],
                             seed=traffic_info["seed"],
                             rate_rps=traffic_info["rate_rps"])
    return simulator.run(traffic.generate(), traffic_info=traffic.describe())


class TestPrePr6Pins:
    """The fault-machinery PR's no-fault contract: with no faults injected
    and no fault-tolerance knob set, every report key is bit-identical to
    the pre-fault simulator — no ``faults`` block, no per-chip downtime
    columns, same accounting to the last float."""

    @pytest.mark.parametrize("scenario", [
        "open_latency_switch_on",
        "hetero_fair_slo_switch_on",
        "closed_fair_switch_off",
    ])
    def test_bit_identical(self, scenario):
        expected = _load_pre_pr6()[scenario]
        report = _replay_capture(expected)
        assert not report.fault_tolerance
        assert report.determinism_dict() == expected

    def test_closed_fair_switch_env_off_matches_pin(self, monkeypatch):
        # REPRO_SERVE_SWITCH_COST=0 with the fair policy under closed-loop
        # traffic: the env default must reproduce the explicit
        # switch_cost=False capture bit-for-bit
        expected = _load_pre_pr6()["closed_fair_switch_off"]
        monkeypatch.setenv("REPRO_SERVE_SWITCH_COST", "0")
        traffic_info = expected["traffic"]
        fleet = Fleet.from_spec(expected["fleet"])
        cache = PlanCache(optimizer="dp")
        cache.warmup(list(traffic_info["models"]), fleet.chip_names, BATCHES)
        traffic = ClosedLoopTraffic(
            list(traffic_info["models"]), num_requests=traffic_info["num_requests"],
            seed=traffic_info["seed"], clients=traffic_info["clients"],
            concurrency=traffic_info["concurrency"],
            mean_think_s=traffic_info["mean_think_s"],
        )
        simulator = ServingSimulator(fleet, cache, policy="fair",
                                     batch_sizes=BATCHES,
                                     max_wait_us=expected["max_wait_us"])
        assert not simulator.switch_cost
        report = simulator.run(traffic)
        assert report.policy == "fair"
        assert report.determinism_dict() == expected


# ----------------------------------------------------------------------
# Controller-off bit-identity against the pre-control-plane simulator
# (PR 7 pins) — unlike the PR 6 pins these scenarios *do* exercise the
# fault-aware accounting path (injected failures, stragglers, retries,
# timeouts, shedding): the control plane must leave every one of those
# code paths bit-identical when it is not enabled.
# ----------------------------------------------------------------------
def _load_pre_pr7():
    path = os.path.join(os.path.dirname(__file__), "data", "serving_pre_pr7.json")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def pre_pr7_scenarios():
    """Scenario builders for the PR 7 pins, keyed by capture name.

    Each builder runs one controller-off scenario from scratch and returns
    its report; ``tests/data/serving_pre_pr7.json`` holds the
    ``determinism_dict()`` these produced before the control plane existed.
    The capture was generated by calling exactly these builders (see the
    CHANGES entry), so the pin and the scenario cannot drift apart silently
    — a mismatch means the controller-off path changed behaviour.
    """

    def fault_retry_latency():
        model = "resnet18"
        fleet = Fleet.from_spec("M:2")
        cache = PlanCache(optimizer="dp")
        cache.warmup((model,), fleet.chip_names, BATCHES)
        rate = 0.9 * fleet_capacity_rps(cache, fleet, (model,), BATCHES)
        traffic = PoissonTraffic(model, num_requests=60, seed=3, rate_rps=rate)
        span_us = 60 / rate * 1e6
        faults = [
            parse_inject(f"chip_fail@{0.2 * span_us:.0f}:chip=0,"
                         f"until={0.6 * span_us:.0f}"),
            parse_inject(f"straggler@{0.3 * span_us:.0f}:chip=1,factor=2.0,"
                         f"until={0.7 * span_us:.0f}"),
        ]
        ft = FaultTolerance(timeout_us=0.4 * span_us, max_retries=2,
                            shed_queue_depth=24)
        simulator = ServingSimulator(
            fleet, cache, policy="latency", batch_sizes=BATCHES,
            max_wait_us=200.0, switch_cost=True, slos={model: 12.0},
            faults=faults, fault_tolerance=ft,
        )
        return simulator.run(traffic.generate(),
                             traffic_info=traffic.describe())

    def hetero_fair_chaos():
        models = ("resnet18", "squeezenet")
        fleet = Fleet.from_spec("S:2,M:1")
        cache = PlanCache(optimizer="dp")
        cache.warmup(models, fleet.chip_names, BATCHES)
        rate = 0.8 * fleet_capacity_rps(cache, fleet, models, BATCHES)
        traffic = PoissonTraffic(models, num_requests=60, seed=5,
                                 rate_rps=rate, model_weights=(0.6, 0.4))
        faults = [parse_inject("chaos@0:seed=11,count=2,"
                               "mtbf_us=4000,mttr_us=800")]
        ft = FaultTolerance(timeout_us=9000.0, max_retries=1,
                            retry_backoff_us=80.0)
        simulator = ServingSimulator(
            fleet, cache, policy="fair", batch_sizes=BATCHES,
            max_wait_us=200.0, switch_cost=True,
            slos={"resnet18": 10.0, "squeezenet": 3.0},
            faults=faults, fault_tolerance=ft,
        )
        return simulator.run(traffic.generate(),
                             traffic_info=traffic.describe())

    def plain_open_latency():
        model = "squeezenet"
        fleet = Fleet.from_spec("M:2")
        cache = PlanCache(optimizer="dp")
        cache.warmup((model,), fleet.chip_names, BATCHES)
        rate = 0.7 * fleet_capacity_rps(cache, fleet, (model,), BATCHES)
        traffic = PoissonTraffic(model, num_requests=50, seed=7, rate_rps=rate)
        simulator = ServingSimulator(
            fleet, cache, policy="latency", batch_sizes=BATCHES,
            max_wait_us=200.0, switch_cost=True,
        )
        return simulator.run(traffic.generate(),
                             traffic_info=traffic.describe())

    return {
        "fault_retry_latency": fault_retry_latency,
        "hetero_fair_chaos": hetero_fair_chaos,
        "plain_open_latency": plain_open_latency,
    }


class TestPrePr7Pins:
    """The control-plane PR's controller-off contract: with no
    ``ControlConfig`` the simulator takes the exact pre-control code path —
    fault-aware accounting included — and every report key is bit-identical
    to the pre-control capture."""

    @pytest.mark.parametrize("scenario", [
        "fault_retry_latency",
        "hetero_fair_chaos",
        "plain_open_latency",
    ])
    def test_bit_identical(self, scenario):
        expected = _load_pre_pr7()[scenario]
        report = pre_pr7_scenarios()[scenario]()
        assert report.determinism_dict() == expected
