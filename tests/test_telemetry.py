"""Tests of the streaming telemetry layer (:mod:`repro.serve.telemetry`).

Four contracts: the percentile sketches stay within their documented error
bounds vs the exact nearest-rank percentile (P² exactly below five
samples); the metrics timeline renders 0.0 — never NaN — for windows with
zero completions or zero elapsed time and is byte-identically
reproducible; the request tracer emits valid, deterministic Chrome
trace-event JSON with memory bounded by the sampling stride; and telemetry
as a whole is a **pure observer** — a telemetry-on run replays the
telemetry-off event order bit-identically (pinned against
``tests/data/serving_pre_pr7.json``).
"""

import json
import math
import os

import pytest

from repro.serialization import (
    dump_chrome_trace,
    dump_metrics_timeline,
    timeline_to_csv,
)
from repro.serve import (
    ControlConfig,
    FaultTolerance,
    Fleet,
    Log2Histogram,
    P2Quantile,
    PlanCache,
    PoissonTraffic,
    ServingSimulator,
    StreamingQuantiles,
    Telemetry,
    TelemetryConfig,
    TelemetrySession,
    TimelineAccumulator,
    fleet_capacity_rps,
    parse_inject,
    telemetry_enabled,
)
from repro.serve.traffic import (
    BurstyTraffic,
    ClosedLoopTraffic,
    DiurnalTraffic,
)
from repro.sim.metrics import nearest_rank_percentile
from repro.sim.report import render_timeline

from test_serve import pre_pr7_scenarios

BATCHES = (1, 2, 4, 8, 16)

#: documented P² accuracy contract on this repo's latency-like
#: distributions (n >= 50): relative error vs exact nearest rank
P2_BOUND = 0.15
#: log2 histogram quantiles are geometric bin midpoints: within sqrt(2)
LOG2_BOUND = math.sqrt(2.0)


def _interarrival_gaps(traffic):
    """Latency-shaped sample stream: a generator's interarrival gaps."""
    requests = traffic.generate()
    arrivals = [r.arrival_ns for r in requests]
    return [b - a for a, b in zip(arrivals, arrivals[1:]) if b > a]


def _distributions():
    return {
        "poisson": _interarrival_gaps(
            PoissonTraffic("resnet18", num_requests=400, seed=11,
                           rate_rps=4000.0)),
        "bursty": _interarrival_gaps(
            BurstyTraffic("resnet18", num_requests=400, seed=12,
                          rate_rps=4000.0)),
        "diurnal": _interarrival_gaps(
            DiurnalTraffic("resnet18", num_requests=400, seed=13,
                           base_rate_rps=4000.0)),
    }


# ----------------------------------------------------------------------
# shared nearest-rank percentile (the dedup satellite)
# ----------------------------------------------------------------------
class TestSharedPercentile:
    def test_simulator_and_controller_share_one_function(self):
        from repro.serve import control, simulator

        assert simulator._percentile is nearest_rank_percentile
        assert control.percentile is nearest_rank_percentile

    def test_nearest_rank_definition(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert nearest_rank_percentile(values, 50) == 5.0
        assert nearest_rank_percentile(values, 95) == 10.0
        assert nearest_rank_percentile(values, 1) == 1.0
        assert nearest_rank_percentile([], 95) == 0.0
        assert nearest_rank_percentile([7.5], 99) == 7.5


# ----------------------------------------------------------------------
# streaming percentile sketches
# ----------------------------------------------------------------------
class TestP2Quantile:
    # p99 of the *bursty* gap stream is excluded: burst/idle interarrival
    # gaps are bimodal with a sparse extreme tail, which is outside the
    # documented contract (serving *latency* distributions — covered end to
    # end by TestStreamingReport across all four traffic shapes); the
    # distribution-free guarantee lives in Log2Histogram
    @pytest.mark.parametrize("name", ["poisson", "bursty", "diurnal"])
    @pytest.mark.parametrize("q", [50.0, 90.0, 95.0])
    def test_within_documented_bound(self, name, q):
        samples = _distributions()[name]
        assert len(samples) >= 50
        sketch = P2Quantile(q)
        for value in samples:
            sketch.add(value)
        exact = nearest_rank_percentile(sorted(samples), q)
        assert sketch.count == len(samples)
        assert abs(sketch.value() - exact) <= P2_BOUND * exact

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_tiny_samples_fall_back_exactly(self, n):
        # below five samples P² cannot place its markers: the estimate
        # must be the *exact* nearest-rank percentile, not an extrapolation
        samples = [3.0, 1.0, 4.0, 1.5][:n]
        for q in (50.0, 95.0, 99.0):
            sketch = P2Quantile(q)
            for value in samples:
                sketch.add(value)
            assert sketch.value() == nearest_rank_percentile(
                sorted(samples), q)

    def test_empty_returns_zero(self):
        assert P2Quantile(95.0).value() == 0.0

    def test_exactly_five_initialises_markers(self):
        sketch = P2Quantile(50.0)
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            sketch.add(value)
        assert sketch.value() == 3.0

    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(100.0)


class TestLog2Histogram:
    @pytest.mark.parametrize("name", ["poisson", "bursty", "diurnal"])
    @pytest.mark.parametrize("q", [50.0, 95.0, 99.0])
    def test_within_sqrt2_of_exact(self, name, q):
        samples = _distributions()[name]
        histogram = Log2Histogram()
        for value in samples:
            histogram.add(value)
        exact = nearest_rank_percentile(sorted(samples), q)
        estimate = histogram.quantile(q)
        # the estimate is the geometric midpoint of the bin holding the
        # exact nearest-rank sample: a guaranteed factor-sqrt(2) bound
        assert exact / LOG2_BOUND <= estimate <= exact * LOG2_BOUND

    def test_exact_mean_max_count(self):
        histogram = Log2Histogram()
        for value in (1.0, 10.0, 100.0):
            histogram.add(value)
        assert histogram.count == 3
        assert histogram.mean() == pytest.approx(37.0)
        assert histogram.max == 100.0

    def test_as_dict_only_nonempty_bins(self):
        histogram = Log2Histogram()
        histogram.add(5.0)  # bin 2: [4, 8)
        data = histogram.as_dict()
        assert data["bins"] == {"2": 1}
        assert data["count"] == 1

    def test_empty_quantile_zero(self):
        assert Log2Histogram().quantile(95.0) == 0.0


class TestStreamingQuantiles:
    def test_tracks_count_mean_max_and_percentiles(self):
        samples = _distributions()["poisson"]
        summary = StreamingQuantiles((50.0, 95.0, 99.0))
        for value in samples:
            summary.add(value)
        assert summary.count == len(samples)
        assert summary.mean() == pytest.approx(sum(samples) / len(samples))
        assert summary.max == max(samples)
        exact = nearest_rank_percentile(sorted(samples), 95.0)
        assert abs(summary.percentile(95.0) - exact) <= P2_BOUND * exact


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestTelemetryHub:
    def test_counters_sources_histograms_snapshot(self):
        hub = Telemetry()
        hub.inc("b")
        hub.inc("a", 2)
        hub.inc("a")
        hub.register_source("gauges_z", lambda: {"x": 1})
        hub.register_source("gauges_a", lambda: {"y": 2.5})
        hub.histogram("lat").add(12.0)
        snap = hub.snapshot()
        assert snap["counters"] == {"a": 3, "b": 1}
        assert list(snap["counters"]) == ["a", "b"]
        assert list(snap["gauges"]) == ["gauges_a", "gauges_z"]
        assert snap["histograms"]["lat"]["count"] == 1
        assert hub.counter("a") == 3
        assert hub.counter("never") == 0

    def test_sources_are_lazy(self):
        hub = Telemetry()
        state = {"v": 1}
        hub.register_source("s", lambda: dict(state))
        state["v"] = 7
        assert hub.snapshot()["gauges"]["s"] == {"v": 7}


# ----------------------------------------------------------------------
# metrics timeline: window-rate guards (the bugfix satellite)
# ----------------------------------------------------------------------
class TestTimelineWindowGuards:
    def test_zero_completion_window_renders_zero_not_nan(self):
        timeline = TimelineAccumulator(1000.0, slo_models=("m",))
        timeline.start(0.0)
        timeline.note_arrival(100.0)
        timeline.note_completion(500.0, 400.0, "m", True)
        # window 1 (1000..2000 ns) sees arrivals but zero completions —
        # e.g. fully inside a chip-outage stall
        timeline.note_arrival(1500.0)
        rows = timeline.rows(2500.0, queue_depth=1, utilisation=0.0)
        assert len(rows) == 3
        stalled = rows[1]
        assert stalled["completed"] == 0
        assert stalled["throughput_rps"] == 0.0
        assert stalled["attainment"] == 0.0
        assert stalled["slo"]["m"] == 0.0
        for row in rows:
            for key, value in row.items():
                if isinstance(value, float):
                    assert not math.isnan(value), (row["window"], key)

    def test_zero_elapsed_window_renders_zero_not_crash(self):
        # dispatch-time accounting can land a completion timestamp past
        # the last arrival-defined span: that window has completions but
        # zero elapsed time inside the span and must render 0.0, not
        # raise ZeroDivisionError or emit inf
        timeline = TimelineAccumulator(1000.0)
        timeline.start(0.0)
        timeline.note_completion(3500.0, 100.0)
        rows = timeline.rows(1000.0, queue_depth=0, utilisation=0.0)
        tail = rows[-1]
        assert tail["window"] == 3
        assert tail["completed"] == 1
        assert tail["throughput_rps"] == 0.0
        assert all(not math.isnan(v) for v in tail.values()
                   if isinstance(v, float))

    def test_normal_window_rate(self):
        timeline = TimelineAccumulator(1000.0)
        timeline.start(0.0)
        timeline.note_completion(200.0, 50.0)
        timeline.note_completion(800.0, 70.0)
        rows = timeline.rows(1000.0, queue_depth=0, utilisation=0.5)
        assert rows[0]["completed"] == 2
        # 2 completions in a 1000 ns (1e-6 s) window = 2e6 req/s
        assert rows[0]["throughput_rps"] == pytest.approx(2e6)

    def test_samples_forward_fill(self):
        timeline = TimelineAccumulator(1000.0)
        timeline.start(0.0)
        timeline.note_arrival(100.0)
        timeline.sample(0, queue_depth=4, utilisation=1.0)
        timeline.note_arrival(3100.0)
        rows = timeline.rows(3500.0, queue_depth=2, utilisation=0.25)
        # window 0 takes its boundary sample; 1 and 2 forward-fill it;
        # the last window takes the end-of-run flush
        assert [row["queue_depth"] for row in rows] == [4, 4, 4, 2]
        assert rows[0]["utilisation"] == 1.0
        assert rows[-1]["utilisation"] == 0.25

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TimelineAccumulator(0.0)


# ----------------------------------------------------------------------
# full-stack scenario helpers
# ----------------------------------------------------------------------
def _fault_scenario(telemetry=None, control=False, sink=None):
    """The PR 7 ``fault_retry_latency`` pin scenario, telemetry optional."""
    model = "resnet18"
    fleet = Fleet.from_spec("M:2")
    cache = PlanCache(optimizer="dp")
    cache.warmup((model,), fleet.chip_names, BATCHES)
    rate = 0.9 * fleet_capacity_rps(cache, fleet, (model,), BATCHES)
    traffic = PoissonTraffic(model, num_requests=60, seed=3, rate_rps=rate)
    span_us = 60 / rate * 1e6
    faults = [
        parse_inject(f"chip_fail@{0.2 * span_us:.0f}:chip=0,"
                     f"until={0.6 * span_us:.0f}"),
        parse_inject(f"straggler@{0.3 * span_us:.0f}:chip=1,factor=2.0,"
                     f"until={0.7 * span_us:.0f}"),
    ]
    ft = FaultTolerance(timeout_us=0.4 * span_us, max_retries=2,
                        shed_queue_depth=24)
    ctrl = (ControlConfig(interval_us=200.0, hedge_after_pct=90.0)
            if control else None)
    simulator = ServingSimulator(
        fleet, cache, policy="latency", batch_sizes=BATCHES,
        max_wait_us=200.0, switch_cost=True, slos={model: 12.0},
        faults=faults, fault_tolerance=ft, control=ctrl,
        telemetry=telemetry,
    )
    if sink is not None:
        simulator.stream_sink = sink
    report = simulator.run(traffic.generate(),
                           traffic_info=traffic.describe())
    return simulator, report


def _closed_hedge_scenario(telemetry=None):
    """Closed-loop clients over a straggling fleet with hedging active —
    the hardest accounting regime: arrivals are injected live by the
    clients, stragglers trip timeouts/retries, and hedged duplicates must
    still complete each request exactly once."""
    model = "squeezenet"
    fleet = Fleet.from_spec("M:3")
    cache = PlanCache(optimizer="dp")
    cache.warmup((model,), fleet.chip_names, (1, 2, 4, 8))
    traffic = ClosedLoopTraffic(model, num_requests=150, seed=4,
                                clients=12, concurrency=2)
    simulator = ServingSimulator(
        fleet, cache, policy="fifo", batch_sizes=(1, 2, 4, 8),
        max_wait_us=100.0,
        faults=[parse_inject("straggler@0:chip=0,factor=10")],
        fault_tolerance=FaultTolerance(max_retries=1, timeout_us=800.0,
                                       shed_queue_depth=10),
        control=ControlConfig(interval_us=200.0, hedge_after_pct=60.0,
                              hedge_min_samples=8),
        telemetry=telemetry,
    )
    report = simulator.run(traffic, traffic_info=traffic.describe())
    return simulator, report


def _hedge_scenario(telemetry=None):
    """A straggler scenario tuned so hedges actually fire (see
    tests/test_control.py::TestHedging)."""
    model = "squeezenet"
    fleet = Fleet.from_spec("M:3")
    cache = PlanCache(optimizer="dp")
    cache.warmup((model,), fleet.chip_names, (1, 2, 4, 8))
    rate = 0.8 * fleet_capacity_rps(cache, fleet, (model,), (1, 2, 4, 8))
    traffic = PoissonTraffic(model, num_requests=120, seed=0, rate_rps=rate)
    simulator = ServingSimulator(
        fleet, cache, policy="fifo", batch_sizes=(1, 2, 4, 8),
        max_wait_us=100.0,
        faults=[parse_inject("straggler@0:chip=0,factor=6")],
        fault_tolerance=FaultTolerance(max_retries=1),
        control=ControlConfig(interval_us=200.0, hedge_after_pct=70.0,
                              hedge_min_samples=8),
        telemetry=telemetry,
    )
    report = simulator.run(traffic.generate(),
                           traffic_info=traffic.describe())
    return simulator, report


def _traffic_scenario(kind, telemetry=None):
    """Fault-free run of one model under each traffic shape."""
    model = "squeezenet"
    fleet = Fleet.from_spec("M:2")
    cache = PlanCache(optimizer="dp")
    cache.warmup((model,), fleet.chip_names, BATCHES)
    rate = 0.8 * fleet_capacity_rps(cache, fleet, (model,), BATCHES)
    if kind == "poisson":
        traffic = PoissonTraffic(model, num_requests=120, seed=2,
                                 rate_rps=rate)
    elif kind == "bursty":
        traffic = BurstyTraffic(model, num_requests=120, seed=2,
                                rate_rps=rate)
    elif kind == "diurnal":
        traffic = DiurnalTraffic(model, num_requests=120, seed=2,
                                 base_rate_rps=rate)
    else:
        traffic = ClosedLoopTraffic(model, num_requests=120, seed=2,
                                    clients=6)
    simulator = ServingSimulator(
        fleet, cache, policy="latency", batch_sizes=BATCHES,
        max_wait_us=200.0, slos={model: 5.0}, telemetry=telemetry,
    )
    if kind == "closed":
        report = simulator.run(traffic, traffic_info=traffic.describe())
    else:
        report = simulator.run(traffic.generate(),
                               traffic_info=traffic.describe())
    return report


def _load_pre_pr7():
    path = os.path.join(os.path.dirname(__file__), "data",
                        "serving_pre_pr7.json")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# pure-observer contract
# ----------------------------------------------------------------------
class TestPureObserver:
    def test_telemetry_on_keeps_pre_pr7_pin(self):
        # ``_fault_scenario`` is a verbatim clone of the pinned
        # ``fault_retry_latency`` builder (cross-checked below): running it
        # with full telemetry on must still match the pre-telemetry capture
        # bit for bit once the new (additive) blocks are removed
        expected = _load_pre_pr7()["fault_retry_latency"]
        baseline = pre_pr7_scenarios()["fault_retry_latency"]()
        assert baseline.determinism_dict() == expected
        _, on = _fault_scenario(TelemetryConfig(
            timeline_interval_us=500.0, trace_every=5,
            streaming_percentiles=False))
        d_on = on.determinism_dict()
        d_on.pop("timeline")
        assert d_on == expected

    def test_telemetry_on_bit_identical_minus_new_blocks(self):
        _, off = _fault_scenario()
        _, on = _fault_scenario(TelemetryConfig(
            timeline_interval_us=500.0, trace_every=5))
        d_on = on.determinism_dict()
        timeline = d_on.pop("timeline")
        assert timeline  # the new block is present...
        assert d_on == off.determinism_dict()  # ...and everything else equal
        assert "telemetry" not in d_on  # hub snapshot is non-deterministic

    def test_telemetry_on_matches_pin_under_control_plane(self):
        _, off = _fault_scenario(control=True)
        _, on = _fault_scenario(
            TelemetryConfig(timeline_interval_us=500.0, trace_every=5),
            control=True)
        d_on = on.determinism_dict()
        d_on.pop("timeline")
        assert d_on == off.determinism_dict()

    def test_env_gate_drops_telemetry_wholesale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_TELEMETRY", "0")
        assert not telemetry_enabled()
        simulator, report = _fault_scenario(TelemetryConfig(
            timeline_interval_us=500.0, trace_every=5))
        assert not report.timeline
        assert not report.telemetry
        assert simulator.telemetry_session is None
        assert not simulator.telemetry.active


# ----------------------------------------------------------------------
# timeline block: determinism, serialization, rendering
# ----------------------------------------------------------------------
class TestTimelineBlock:
    def test_fixed_seed_timeline_is_deterministic(self):
        cfg = TelemetryConfig(timeline_interval_us=500.0)
        _, first = _fault_scenario(cfg)
        _, second = _fault_scenario(cfg)
        assert first.timeline == second.timeline
        assert first.timeline  # non-trivial
        # the fault window is visible: some window saw the chip failure
        assert any(row["failures"] for row in first.timeline)
        assert any(row["recoveries"] for row in first.timeline)

    def test_timeline_in_as_dict_but_telemetry_popped_from_core(self):
        cfg = TelemetryConfig(timeline_interval_us=500.0)
        _, report = _fault_scenario(cfg)
        data = report.as_dict()
        assert "timeline" in data
        assert "telemetry" in data
        core = report.determinism_dict()
        assert "timeline" in core
        assert "telemetry" not in core
        assert "plan_cache" not in core

    def test_metrics_artifacts_byte_identical(self, tmp_path):
        cfg = TelemetryConfig(timeline_interval_us=500.0)
        _, first = _fault_scenario(cfg)
        _, second = _fault_scenario(cfg)
        blobs = []
        for run, report in enumerate((first, second)):
            json_path = str(tmp_path / f"metrics_{run}.json")
            csv_path = str(tmp_path / f"metrics_{run}.csv")
            dump_metrics_timeline(report.timeline, json_path)
            dump_metrics_timeline(report.timeline, csv_path)
            with open(json_path, "rb") as handle:
                json_bytes = handle.read()
            with open(csv_path, "rb") as handle:
                csv_bytes = handle.read()
            blobs.append((json_bytes, csv_bytes))
        assert blobs[0] == blobs[1]
        reloaded = json.loads(blobs[0][0])
        assert reloaded == first.timeline

    def test_csv_flattens_slo_block(self):
        rows = [{"window": 0, "t_ms": 0.0, "slo": {"b": 0.5, "a": 1.0}}]
        text = timeline_to_csv(rows)
        header, body = text.strip().splitlines()
        assert header == "window,t_ms,slo_a,slo_b"
        assert body == "0,0.000000,1.000000,0.500000"

    def test_csv_column_order_is_canonical_not_dict_order(self):
        # rows whose dict insertion order is scrambled still serialize in
        # the canonical column order with explicit float formatting
        rows = [
            {"p95_ms": 2.5, "window": 1, "arrivals": 3, "t_ms": 0.5,
             "completed": 2},
            {"completed": 4, "t_ms": 1.0, "window": 2, "p95_ms": 1.25,
             "arrivals": 5},
        ]
        text = timeline_to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "window,t_ms,arrivals,completed,p95_ms"
        assert lines[1] == "1,0.500000,3,2,2.500000"
        assert lines[2] == "2,1.000000,5,4,1.250000"

    def test_render_timeline_table(self):
        cfg = TelemetryConfig(timeline_interval_us=500.0)
        _, report = _fault_scenario(cfg)
        text = render_timeline(report.timeline)
        header = text.splitlines()[0]
        for column in ("window", "throughput_rps", "p95_ms", "attainment"):
            assert column in header
        # event columns appear because this scenario has faults/retries
        assert "failures" in header
        # but control columns stay hidden on a controller-off run
        assert "quarantines" not in header
        assert render_timeline([]) == "(empty timeline)"

    def test_control_columns_are_deltas(self):
        cfg = TelemetryConfig(timeline_interval_us=500.0)
        _, report = _fault_scenario(cfg, control=True)
        rows = report.timeline
        assert all("hedges" in row for row in rows)
        # per-window deltas sum back to the cumulative controller counter
        assert sum(row["hedges"] for row in rows) == \
            report.control["hedges"]

    def test_window_percentiles_track_exact_report(self):
        # sanity: the timeline's sketch percentiles live in the same
        # range as the terminal report's exact percentiles; windows use
        # the log2 histogram, so the bound is the factor-sqrt(2) one
        cfg = TelemetryConfig(timeline_interval_us=2000.0)
        _, report = _fault_scenario(cfg)
        busy = [row for row in report.timeline if row["completed"] >= 5]
        assert busy
        for row in busy:
            assert 0.0 < row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
            assert row["p99_ms"] <= report.latency_ms["max"] * LOG2_BOUND


# ----------------------------------------------------------------------
# streaming terminal report
# ----------------------------------------------------------------------
class TestStreamingReport:
    def test_streaming_report_within_bound_of_exact(self):
        _, exact = _fault_scenario()
        _, stream = _fault_scenario(TelemetryConfig(
            streaming_percentiles=True))
        assert stream.completed == exact.completed
        assert stream.throughput_rps == exact.throughput_rps
        assert stream.latency_ms["mean"] == pytest.approx(
            exact.latency_ms["mean"])
        assert stream.latency_ms["max"] == exact.latency_ms["max"]
        for key in ("p50", "p95", "p99"):
            assert abs(stream.latency_ms[key] - exact.latency_ms[key]) <= \
                P2_BOUND * exact.latency_ms[key]
        block_s = stream.slo["resnet18"]
        block_e = exact.slo["resnet18"]
        # attainment counts are exact (only percentiles are sketched)
        assert block_s["attainment"] == block_e["attainment"]
        assert block_s["completed"] == block_e["completed"]
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert abs(block_s[key] - block_e[key]) <= P2_BOUND * block_e[key]

    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal",
                                      "closed"])
    def test_streaming_bound_holds_across_traffic_shapes(self, kind):
        # the documented P² contract, end to end on real serving latency
        # streams from every traffic generator (including closed-loop,
        # whose arrivals are response-dependent)
        exact = _traffic_scenario(kind)
        stream = _traffic_scenario(kind, TelemetryConfig(
            streaming_percentiles=True))
        assert stream.completed == exact.completed
        assert stream.throughput_rps == exact.throughput_rps
        for key in ("p50", "p95", "p99"):
            assert abs(stream.latency_ms[key] - exact.latency_ms[key]) <= \
                P2_BOUND * exact.latency_ms[key], (kind, key)
        assert stream.slo["squeezenet"]["attainment"] == \
            exact.slo["squeezenet"]["attainment"]

    def test_default_path_untouched_by_streaming_code(self):
        # the exact path is the default: no TelemetryConfig means no
        # sketches anywhere near the report floats
        simulator, report = _fault_scenario()
        assert simulator.telemetry_session is None
        assert not report.timeline


# ----------------------------------------------------------------------
# request lifecycle tracing
# ----------------------------------------------------------------------
class TestRequestTracing:
    def _trace(self, every=5, control=False):
        simulator, report = _fault_scenario(
            TelemetryConfig(trace_every=every), control=control)
        session = simulator.telemetry_session
        return session.tracer, report

    def test_fixed_seed_trace_byte_identical(self, tmp_path):
        blobs = []
        for run in range(2):
            tracer, _ = self._trace()
            path = str(tmp_path / f"trace_{run}.json")
            dump_chrome_trace(tracer.chrome_trace(), path)
            with open(path, "rb") as handle:
                blobs.append(handle.read())
        assert blobs[0] == blobs[1]

    def test_chrome_trace_schema(self):
        tracer, _ = self._trace()
        trace = tracer.chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events
        timestamps = [event["ts"] for event in events]
        assert timestamps == sorted(timestamps)
        for event in events:
            assert event["ph"] in ("X", "i")  # complete spans + instants
            assert event["ts"] >= 0.0
            assert isinstance(event["tid"], int)
            assert event["pid"] == 0
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
        # span names and attributes carry the lifecycle detail
        names = {event["name"] for event in events}
        assert "queued" in names and "service" in names
        service = [e for e in events if e["name"] == "service"]
        for event in service:
            for key in ("chip", "model", "batch", "plan_switch"):
                assert key in event["args"]

    def test_sampling_memory_bound(self):
        num_requests = 60
        for every in (1, 5, 7, 60):
            tracer, report = self._trace(every=every)
            bound = math.ceil(num_requests / every)
            assert len(tracer.traced_requests) <= bound
            assert all(rid % every == 0 for rid in tracer.traced_requests)

    def test_queue_span_outcomes(self):
        tracer, report = self._trace(every=1)
        queued = [e for e in tracer.chrome_trace()["traceEvents"]
                  if e["name"] == "queued"]
        outcomes = {event["args"]["outcome"] for event in queued}
        assert "dispatched" in outcomes
        # this scenario sheds under its queue-depth cap
        assert report.shed > 0
        assert "shed" in outcomes

    def test_hedge_spans_marked(self):
        simulator, report = _hedge_scenario(TelemetryConfig(trace_every=1))
        assert report.control["hedges"] > 0
        tracer = simulator.telemetry_session.tracer
        hedge_spans = [e for e in tracer.chrome_trace()["traceEvents"]
                       if e["name"] == "service"
                       and e["args"].get("hedge")]
        assert len(hedge_spans) > 0

    def test_rejects_nonpositive_stride(self):
        from repro.serve import RequestTracer

        with pytest.raises(ValueError):
            RequestTracer(0)


# ----------------------------------------------------------------------
# config + session plumbing
# ----------------------------------------------------------------------
class TestTelemetryConfig:
    def test_default_inactive(self):
        config = TelemetryConfig()
        assert not config.active

    def test_each_knob_activates(self):
        assert TelemetryConfig(timeline_interval_us=100.0).active
        assert TelemetryConfig(trace_every=3).active
        assert TelemetryConfig(streaming_percentiles=True).active

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(timeline_interval_us=-1.0)
        with pytest.raises(ValueError):
            TelemetryConfig(trace_every=-2)

    def test_session_parts_follow_config(self):
        session = TelemetrySession(TelemetryConfig(trace_every=4))
        assert session.tracer is not None
        assert session.timeline is None
        assert session.stream is None
        full = TelemetrySession(TelemetryConfig(
            timeline_interval_us=10.0, trace_every=2,
            streaming_percentiles=True), slo_models=("m",))
        assert full.timeline is not None
        assert full.tracer is not None
        assert full.stream is not None

    def test_report_telemetry_block_shape(self):
        _, report = _fault_scenario(TelemetryConfig(
            timeline_interval_us=500.0, trace_every=5))
        block = report.telemetry
        assert set(block) == {"counters", "gauges", "histograms", "config"}
        assert block["counters"]["arrivals"] == 60
        assert block["counters"]["completions"] == report.completed
        assert block["gauges"]["fleet"]["chips"] == 2
        assert "plan_cache" in block["gauges"]
        assert block["gauges"]["faults"]["failures"] == report.failures
        assert block["histograms"]["latency_ns"]["count"] == report.completed
        assert block["config"]["timeline_interval_us"] == 500.0


# ----------------------------------------------------------------------
# incremental window streaming (the observatory's flush path)
# ----------------------------------------------------------------------
class TestIncrementalFlush:
    def _feed(self, timeline):
        """A note/sample schedule spanning several windows, with a stall
        (no completions) in window 2 and a dispatch-time future
        completion landing past the current instant."""
        timeline.start(0.0)
        timeline.note_arrival(100.0)
        timeline.note_completion(400.0, 300.0, "m", True)
        timeline.note_completion(2600.0, 700.0, "m", False)  # future ts
        timeline.sample(0, queue_depth=3, utilisation=0.9)
        timeline.note_arrival(1200.0)
        timeline.sample(1, queue_depth=2, utilisation=0.6)
        timeline.note_arrival(2300.0)
        timeline.sample(2, queue_depth=1, utilisation=0.4)
        timeline.note_arrival(3400.0)
        timeline.note_completion(3600.0, 500.0, "m", True)

    def test_flush_ready_then_rows_matches_one_shot(self):
        batch = TimelineAccumulator(1000.0, slo_models=("m",))
        self._feed(batch)
        expected = batch.rows(4000.0, queue_depth=0, utilisation=0.1)

        streamed = TimelineAccumulator(1000.0, slo_models=("m",))
        streamed.start(0.0)
        streamed.note_arrival(100.0)
        streamed.note_completion(400.0, 300.0, "m", True)
        streamed.note_completion(2600.0, 700.0, "m", False)
        streamed.sample(0, queue_depth=3, utilisation=0.9)
        early = streamed.flush_ready(400.0)  # floor too low: nothing final
        assert early == []
        streamed.note_arrival(1200.0)
        streamed.sample(1, queue_depth=2, utilisation=0.6)
        first = streamed.flush_ready(1500.0)
        assert [row["window"] for row in first] == [0]
        streamed.note_arrival(2300.0)
        streamed.sample(2, queue_depth=1, utilisation=0.4)
        second = streamed.flush_ready(2600.0)
        assert [row["window"] for row in second] == [1]
        streamed.note_arrival(3400.0)
        streamed.note_completion(3600.0, 500.0, "m", True)
        rows = streamed.rows(4000.0, queue_depth=0, utilisation=0.1)
        assert json.dumps(rows, sort_keys=True) == \
            json.dumps(expected, sort_keys=True)
        # the mid-run flushes streamed a strict prefix, exactly once each
        assert rows[:2] == first + second

    def test_flushed_windows_are_dropped_from_memory(self):
        timeline = TimelineAccumulator(1000.0)
        timeline.start(0.0)
        for k in range(6):
            timeline.note_arrival(k * 1000.0 + 100.0)
            timeline.sample(k, queue_depth=0, utilisation=0.0)
        timeline.flush_ready(6000.0)
        # every flushed window's accumulator is gone (bounded memory)
        assert all(index >= 5 for index in timeline._windows)
        # ...and a late note after the flush still lands correctly
        timeline.note_arrival(6100.0)
        rows = timeline.rows(6200.0, queue_depth=0, utilisation=0.0)
        assert rows[6]["arrivals"] == 1

    def test_streamed_windows_equal_final_timeline(self):
        # full stack: a sink-attached fault scenario with a fine window —
        # the streamed rows, concatenated, are byte-identical to the
        # report's end-of-run timeline block
        streamed = []
        kinds = []

        def sink(kind, payload):
            kinds.append(kind)
            if kind == "window":
                streamed.append(payload)

        _, report = _fault_scenario(
            TelemetryConfig(timeline_interval_us=150.0), sink=sink)
        assert json.dumps(streamed, sort_keys=True) == \
            json.dumps(report.timeline, sort_keys=True)
        # windows flushed mid-run, not just at finish: every mid-run
        # flush batch is chased by a hub snapshot, and at least one
        # window message precedes the last hub message
        assert kinds.count("hub") >= 1
        assert kinds.index("window") < len(kinds) - 1
        # fault events streamed live too (this scenario injects two)
        assert kinds.count("event") >= 2

    def test_sink_attached_run_is_bit_identical(self):
        cfg = TelemetryConfig(timeline_interval_us=150.0)
        _, off = _fault_scenario(cfg)
        _, on = _fault_scenario(cfg, sink=lambda kind, payload: None)
        assert on.determinism_dict() == off.determinism_dict()


# ----------------------------------------------------------------------
# per-window conservation under the hardest accounting regime
# ----------------------------------------------------------------------
class TestWindowConservation:
    def test_closed_loop_hedged_windows_conserve_fates(self):
        cfg = TelemetryConfig(timeline_interval_us=300.0)
        _, report = _closed_hedge_scenario(cfg)
        rows = report.timeline
        assert len(rows) >= 2
        # the scenario actually exercises the hard paths
        assert report.control["hedges"] > 0
        assert report.timeouts + report.retries > 0

        def total(key):
            return sum(row[key] for row in rows)

        # window sums reproduce the report's fate counters exactly:
        # hedged requests complete once, retries are not re-arrivals
        assert total("arrivals") == report.num_requests
        assert total("completed") == report.completed
        assert total("shed") == report.shed
        assert total("timeouts") == report.timeouts
        assert total("lost") == report.lost
        assert total("hedges") == report.control["hedges"]
        # every offered request met exactly one fate (closed-loop runs
        # drain completely: nothing is left queued at the end)
        assert (report.completed + report.shed + report.timeouts
                + report.lost) == report.num_requests

    def test_cumulative_fates_never_exceed_cumulative_arrivals(self):
        cfg = TelemetryConfig(timeline_interval_us=300.0)
        _, report = _closed_hedge_scenario(cfg)
        seen = fated = 0
        for row in report.timeline:
            seen += row["arrivals"]
            fated += (row["completed"] + row["shed"] + row["timeouts"]
                      + row["lost"])
            # a request's fate can only land at or after its arrival
            # (dispatch-time accounting keys completions by their own
            # future timestamp, which is >= the arrival's)
            assert fated <= seen, row["window"]


# ----------------------------------------------------------------------
# timeline rendering at terminal width: middle elision
# ----------------------------------------------------------------------
class TestRenderTimelineElision:
    def _rows(self, count):
        return [
            {"window": k, "t_ms": 0.5 * k, "arrivals": k, "completed": k,
             "throughput_rps": 1.0, "p50_ms": 1.0, "p95_ms": 2.0,
             "p99_ms": 3.0, "queue_depth": 0, "utilisation": 0.5,
             "attainment": 1.0}
            for k in range(count)
        ]

    def test_elides_middle_keeps_head_and_tail(self):
        text = render_timeline(self._rows(20), max_rows=6)
        lines = text.splitlines()
        # header + separator + 6 kept rows + 1 marker
        assert len(lines) == 9
        assert lines[5].strip() == "... 14 windows elided ..."
        body = [line for line in lines[2:] if "elided" not in line]
        first_windows = [int(line.split()[0]) for line in body]
        assert first_windows == [0, 1, 2, 17, 18, 19]

    def test_odd_budget_favours_the_head(self):
        text = render_timeline(self._rows(10), max_rows=5)
        lines = text.splitlines()
        assert lines[2 + 3].strip() == "... 5 windows elided ..."
        body = [line for line in lines[2:] if "elided" not in line]
        assert [int(line.split()[0]) for line in body] == [0, 1, 2, 8, 9]

    def test_no_elision_when_rows_fit(self):
        rows = self._rows(6)
        assert render_timeline(rows, max_rows=6) == render_timeline(rows)
        assert render_timeline(rows, max_rows=10) == render_timeline(rows)
        assert "elided" not in render_timeline(rows, max_rows=6)

    def test_zero_disables_and_tiny_budget_keeps_two(self):
        rows = self._rows(12)
        assert "elided" not in render_timeline(rows, max_rows=0)
        text = render_timeline(rows, max_rows=1)
        body = [line for line in text.splitlines()[2:]
                if "elided" not in line]
        # a budget below two still shows the first and last window
        assert [int(line.split()[0]) for line in body] == [0, 11]


# ----------------------------------------------------------------------
# golden CSV artifact
# ----------------------------------------------------------------------
class TestGoldenCsv:
    def test_fault_scenario_csv_matches_golden_file(self):
        # the committed golden file pins column order *and* cell
        # formatting: a drift in either (dict iteration order, float
        # repr, a renamed column) fails here byte-for-byte
        path = os.path.join(os.path.dirname(__file__), "data",
                            "timeline_golden.csv")
        with open(path, "r", encoding="utf-8", newline="") as handle:
            golden = handle.read()
        _, report = _fault_scenario(
            TelemetryConfig(timeline_interval_us=500.0), control=True)
        assert timeline_to_csv(report.timeline) == golden
