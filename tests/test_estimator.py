"""Tests for repro.onchip.estimator: per-partition latency/energy estimation."""

import pytest

from repro.core.baselines import greedy_partition, layerwise_partition
from repro.core.partition import Partition, PartitionGroup
from repro.onchip.estimator import PartitionEstimator


@pytest.fixture(scope="module")
def estimator_m(chip_m):
    return PartitionEstimator(chip_m, batch_size=4)


class TestBasicEstimation:
    def test_all_latency_components_non_negative(self, resnet18_decomposition_m, estimator_m):
        d = resnet18_decomposition_m
        for partition in greedy_partition(d).partitions():
            est = estimator_m.estimate(partition)
            lat = est.latency
            assert lat.weight_load_ns >= 0
            assert lat.weight_write_ns >= 0
            assert lat.pipeline_ns > 0
            assert lat.total_ns == pytest.approx(lat.weight_replace_ns + lat.pipeline_ns)

    def test_energy_components_non_negative(self, resnet18_decomposition_m, estimator_m):
        d = resnet18_decomposition_m
        est = estimator_m.estimate(greedy_partition(d).partition(0))
        for key, value in est.energy.as_dict().items():
            assert value >= 0, key
        assert est.energy.total_pj > 0

    def test_weight_replace_is_max_of_load_and_write(self, resnet18_decomposition_m, estimator_m):
        d = resnet18_decomposition_m
        est = estimator_m.estimate(greedy_partition(d).partition(0))
        assert est.latency.weight_replace_ns == pytest.approx(
            max(est.latency.weight_load_ns, est.latency.weight_write_ns)
        )

    def test_stage_latencies_include_load_store(self, resnet18_decomposition_m, estimator_m):
        d = resnet18_decomposition_m
        est = estimator_m.estimate(greedy_partition(d).partition(0))
        assert "__load__" in est.stage_latency_ns
        assert "__store__" in est.stage_latency_ns
        layer_stages = set(est.stage_latency_ns) - {"__load__", "__store__"}
        assert layer_stages == set(est.partition.layer_names())

    def test_per_sample_and_edp_helpers(self, resnet18_decomposition_m, estimator_m):
        d = resnet18_decomposition_m
        est = estimator_m.estimate(greedy_partition(d).partition(0))
        assert est.latency_per_sample_ns == pytest.approx(est.latency_ns / est.batch_size)
        assert est.energy_per_sample_pj == pytest.approx(est.energy_pj / est.batch_size)
        assert est.edp == pytest.approx(est.energy_pj * est.latency_ns)

    def test_invalid_batch_size(self, chip_m, resnet18_decomposition_m):
        with pytest.raises(ValueError):
            PartitionEstimator(chip_m, batch_size=0)
        est = PartitionEstimator(chip_m, batch_size=1)
        partition = greedy_partition(resnet18_decomposition_m).partition(0)
        with pytest.raises(ValueError):
            est.estimate(partition, batch_size=-1)


class TestScalingBehaviour:
    def test_latency_increases_with_batch(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        partition = greedy_partition(d).partition(0)
        est1 = PartitionEstimator(chip_m, batch_size=1).estimate(partition)
        est16 = PartitionEstimator(chip_m, batch_size=16).estimate(partition)
        assert est16.latency_ns > est1.latency_ns
        # pipelining: 16 samples cost far less than 16x one sample
        assert est16.latency_ns < 16 * est1.latency_ns

    def test_weight_replace_independent_of_batch(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        partition = greedy_partition(d).partition(0)
        est1 = PartitionEstimator(chip_m, batch_size=1).estimate(partition)
        est16 = PartitionEstimator(chip_m, batch_size=16).estimate(partition)
        assert est1.latency.weight_replace_ns == pytest.approx(est16.latency.weight_replace_ns)

    def test_batch_amortises_weight_energy_share(self, resnet18_decomposition_m, chip_m):
        """Fig. 9: the weight-load/MVM energy ratio falls as batch size grows."""
        d = resnet18_decomposition_m
        partition = greedy_partition(d).partition(0)
        est1 = PartitionEstimator(chip_m, batch_size=1).estimate(partition)
        est16 = PartitionEstimator(chip_m, batch_size=16).estimate(partition)
        ratio1 = est1.energy.weight_load_pj / est1.energy.mvm_pj
        ratio16 = est16.energy.weight_load_pj / est16.energy.mvm_pj
        assert ratio16 < ratio1 / 4

    def test_larger_chip_not_slower_for_same_partition(self, resnet18_graph, chip_m, chip_l):
        from repro.core.decomposition import decompose_model

        d_m = decompose_model(resnet18_graph, chip_m)
        d_l = decompose_model(resnet18_graph, chip_l)
        # compare the first layer alone on both chips (same workload, more resources)
        p_m = Partition(d_m, 0, d_m.layer_unit_ranges["conv1"][1])
        p_l = Partition(d_l, 0, d_l.layer_unit_ranges["conv1"][1])
        est_m = PartitionEstimator(chip_m, batch_size=8).estimate(p_m)
        est_l = PartitionEstimator(chip_l, batch_size=8).estimate(p_l)
        assert est_l.latency.pipeline_ns <= est_m.latency.pipeline_ns * 1.001

    def test_replication_reduces_pipeline_latency(self, squeezenet_decomposition_s, chip_s):
        """The whole point of replication: more crossbars -> shorter pipeline."""
        from repro.onchip.plan import build_partition_plan
        from repro.mapping.replication import ReplicationPlan
        from repro.mapping.core_mapping import map_partition_to_cores

        d = squeezenet_decomposition_s
        partition = PartitionGroup.single_partition(d).partition(0)
        est = PartitionEstimator(chip_s, batch_size=8)
        optimized = est.estimate(partition)

        # build an artificial plan with no replication at all
        plan = build_partition_plan(partition, chip_s)
        geometries = [s.as_geometry() for s in plan.slices]
        unreplicated = ReplicationPlan(
            factors={g.layer_name: 1 for g in geometries},
            crossbars_used={g.layer_name: g.crossbars_per_copy for g in geometries},
            total_crossbars=sum(g.crossbars_per_copy for g in geometries),
            bottleneck_slots=max(g.windows for g in geometries),
        )
        plan.replication = unreplicated
        plan.core_mapping = map_partition_to_cores(geometries, unreplicated, chip_s)
        baseline = est.estimate(partition, plan=plan)
        assert optimized.latency.pipeline_ns < baseline.latency.pipeline_ns

    def test_partition_with_more_layers_costs_more(self, resnet18_decomposition_m, estimator_m):
        d = resnet18_decomposition_m
        small = estimator_m.estimate(Partition(d, 0, 2))
        # growing the span within validity adds work
        from repro.core.validity import ValidityMap

        vm = ValidityMap(d)
        end = vm.max_end(0)
        large = estimator_m.estimate(Partition(d, 0, end))
        assert large.energy_pj > small.energy_pj
