"""Tests for the model zoo: structure and Table II weight footprints."""

import pytest

from repro.graph.layers import LayerKind
from repro.graph.tensor import TensorShape
from repro.models import (
    alexnet,
    build_model,
    lenet5,
    list_models,
    mobilenet_v1,
    resnet18,
    resnet34,
    squeezenet1_0,
    squeezenet1_1,
    vgg11,
    vgg16,
)

MB = 2 ** 20


class TestRegistry:
    def test_list_models_contains_paper_networks(self):
        names = list_models()
        assert "vgg16" in names
        assert "resnet18" in names
        assert "squeezenet" in names

    def test_build_model_by_name(self):
        g = build_model("lenet5")
        assert g.name == "lenet5"

    def test_unknown_model_raises_with_hint(self):
        with pytest.raises(KeyError, match="available"):
            build_model("resnet1000")

    def test_build_model_kwargs_forwarded(self):
        g = build_model("resnet18", num_classes=10)
        assert g.node("fc").output_shape == TensorShape.flat(10)

    def test_all_registered_models_build_and_validate(self):
        for name in list_models():
            graph = build_model(name)
            graph.validate()
            assert len(graph) > 5


class TestVGG16:
    def test_table2_weight_sizes(self, vgg16_graph):
        """Table II: VGG16 Linear 58.95 MB, Conv 7.02 MB, Total 65.97 MB at 4-bit."""
        linear_mb = vgg16_graph.linear_weight_bytes(4) / MB
        conv_mb = vgg16_graph.conv_weight_bytes(4) / MB
        total_mb = vgg16_graph.crossbar_weight_bytes(4) / MB
        assert linear_mb == pytest.approx(58.95, rel=0.01)
        assert conv_mb == pytest.approx(7.02, rel=0.01)
        assert total_mb == pytest.approx(65.97, rel=0.01)

    def test_has_16_weight_layers(self, vgg16_graph):
        convs = [n for n in vgg16_graph.nodes() if n.kind is LayerKind.CONV2D]
        fcs = [n for n in vgg16_graph.nodes() if n.kind is LayerKind.LINEAR]
        assert len(convs) == 13
        assert len(fcs) == 3

    def test_output_is_1000_classes(self, vgg16_graph):
        assert vgg16_graph.node("fc3").output_shape == TensorShape.flat(1000)

    def test_spatial_reduction(self, vgg16_graph):
        assert vgg16_graph.node("pool5").output_shape == TensorShape.chw(512, 7, 7)

    def test_vgg11_smaller_than_vgg16(self):
        assert vgg11().total_weight_count() < vgg16().total_weight_count()

    def test_batchnorm_variant(self):
        g = vgg16(with_batchnorm=True)
        bn_count = sum(1 for n in g.nodes() if n.kind is LayerKind.BATCHNORM)
        assert bn_count == 13


class TestResNet18:
    def test_table2_weight_sizes(self, resnet18_graph):
        """Table II: ResNet18 Linear 0.244 MB, Conv 5.324 MB, Total 5.569 MB."""
        linear_mb = resnet18_graph.linear_weight_bytes(4) / MB
        conv_mb = resnet18_graph.conv_weight_bytes(4) / MB
        total_mb = resnet18_graph.crossbar_weight_bytes(4) / MB
        assert linear_mb == pytest.approx(0.244, abs=0.005)
        assert conv_mb == pytest.approx(5.324, rel=0.01)
        assert total_mb == pytest.approx(5.569, rel=0.01)

    def test_has_residual_adds(self, resnet18_graph):
        adds = [n for n in resnet18_graph.nodes() if n.kind is LayerKind.ADD]
        assert len(adds) == 8  # two blocks per stage, four stages

    def test_downsample_convs(self, resnet18_graph):
        downsamples = [n for n in resnet18_graph.nodes() if "down_conv" in n.name]
        assert len(downsamples) == 3  # stages 2-4

    def test_final_feature_map(self, resnet18_graph):
        assert resnet18_graph.node("avgpool").output_shape == TensorShape.chw(512, 1, 1)

    def test_resnet34_deeper(self):
        g34 = resnet34()
        g18 = resnet18()
        assert len(g34) > len(g18)
        assert g34.total_weight_count() > g18.total_weight_count()


class TestSqueezeNet:
    def test_table2_weight_size(self, squeezenet_graph):
        """Table II: SqueezeNet total 0.58725 MB at 4-bit (conv only)."""
        total_mb = squeezenet_graph.crossbar_weight_bytes(4) / MB
        assert total_mb == pytest.approx(0.587, abs=0.01)
        assert squeezenet_graph.linear_weight_bytes(4) == 0

    def test_fire_modules_present(self, squeezenet_graph):
        concats = [n for n in squeezenet_graph.nodes() if n.kind is LayerKind.CONCAT]
        assert len(concats) == 8  # fire2..fire9

    def test_v10_larger_than_v11(self):
        assert squeezenet1_0().total_weight_count() > squeezenet1_1().total_weight_count()

    def test_classifier_conv_output(self, squeezenet_graph):
        out = squeezenet_graph.node("conv10").output_shape
        assert out.channels == 1000


class TestExtraModels:
    def test_alexnet_structure(self):
        g = alexnet()
        convs = [n for n in g.nodes() if n.kind is LayerKind.CONV2D]
        fcs = [n for n in g.nodes() if n.kind is LayerKind.LINEAR]
        assert len(convs) == 5
        assert len(fcs) == 3

    def test_mobilenet_depthwise_layers(self):
        g = mobilenet_v1()
        depthwise = [
            n for n in g.nodes()
            if n.kind is LayerKind.CONV2D and n.layer.attrs.get("groups", 1) > 1
        ]
        assert len(depthwise) == 13

    def test_mobilenet_width_multiplier(self):
        full = mobilenet_v1()
        half = mobilenet_v1(width_multiplier=0.5)
        assert half.total_weight_count() < full.total_weight_count()

    def test_lenet_output(self):
        g = lenet5()
        assert g.node("fc3").output_shape == TensorShape.flat(10)

    def test_input_size_parameter(self):
        g = resnet18(input_size=160)
        assert g.node("input").output_shape == TensorShape.chw(3, 160, 160)
