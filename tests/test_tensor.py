"""Tests for repro.graph.tensor.TensorShape."""

import pytest

from repro.graph.tensor import TensorShape


class TestConstruction:
    def test_chw(self):
        shape = TensorShape.chw(3, 224, 224)
        assert shape.dims == (3, 224, 224)

    def test_flat(self):
        shape = TensorShape.flat(4096)
        assert shape.dims == (4096,)

    def test_of_iterable(self):
        shape = TensorShape.of([1, 2, 3])
        assert shape.dims == (1, 2, 3)

    def test_of_generator(self):
        shape = TensorShape.of(d for d in (8, 8))
        assert shape.dims == (8, 8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TensorShape(())

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorShape((3, 0, 5))

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorShape((-1,))

    def test_non_int_dim_rejected(self):
        with pytest.raises(ValueError):
            TensorShape((1.5, 2))


class TestQueries:
    def test_rank(self):
        assert TensorShape.chw(3, 4, 5).rank == 3
        assert TensorShape.flat(10).rank == 1

    def test_is_feature_map(self):
        assert TensorShape.chw(3, 4, 5).is_feature_map
        assert not TensorShape.flat(10).is_feature_map

    def test_is_flat(self):
        assert TensorShape.flat(10).is_flat
        assert not TensorShape.chw(3, 4, 5).is_flat

    def test_channels_height_width(self):
        shape = TensorShape.chw(16, 28, 14)
        assert shape.channels == 16
        assert shape.height == 28
        assert shape.width == 14

    def test_flat_height_width_default_to_one(self):
        shape = TensorShape.flat(100)
        assert shape.height == 1
        assert shape.width == 1
        assert shape.channels == 100

    def test_num_elements(self):
        assert TensorShape.chw(3, 4, 5).num_elements == 60
        assert TensorShape.flat(7).num_elements == 7

    def test_iteration(self):
        assert list(TensorShape.chw(1, 2, 3)) == [1, 2, 3]

    def test_str(self):
        assert str(TensorShape.chw(3, 32, 32)) == "3x32x32"


class TestSizeBytes:
    def test_8bit(self):
        assert TensorShape.flat(100).size_bytes(8) == 100

    def test_4bit(self):
        assert TensorShape.flat(100).size_bytes(4) == 50

    def test_4bit_rounds_up(self):
        assert TensorShape.flat(101).size_bytes(4) == 51

    def test_1bit(self):
        assert TensorShape.flat(9).size_bytes(1) == 2

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            TensorShape.flat(10).size_bytes(0)

    def test_feature_map_bytes(self):
        # 64 channels x 56 x 56 at 4 bits = 64*56*56/2 bytes
        shape = TensorShape.chw(64, 56, 56)
        assert shape.size_bytes(4) == 64 * 56 * 56 // 2


class TestFlatten:
    def test_flattened_preserves_elements(self):
        shape = TensorShape.chw(512, 7, 7)
        assert shape.flattened() == TensorShape.flat(512 * 49)

    def test_flatten_of_flat_is_identity(self):
        shape = TensorShape.flat(128)
        assert shape.flattened() == shape

    def test_equality_and_hash(self):
        a = TensorShape.chw(3, 4, 5)
        b = TensorShape.chw(3, 4, 5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TensorShape.chw(3, 4, 6)
