"""Tests for the core-local memory allocator."""

import pytest

from repro.isa.memory import AllocationError, LocalMemoryAllocator


class TestAllocation:
    def test_simple_alloc_free(self):
        alloc = LocalMemoryAllocator(1024)
        handle = alloc.allocate(256, tag="buf")
        assert alloc.used_bytes == 256
        alloc.free(handle)
        assert alloc.used_bytes == 0

    def test_peak_tracking(self):
        alloc = LocalMemoryAllocator(1024)
        a = alloc.allocate(400)
        b = alloc.allocate(400)
        alloc.free(a)
        alloc.free(b)
        assert alloc.peak_usage == 800
        assert alloc.fits

    def test_overflow_recorded_not_raised(self):
        alloc = LocalMemoryAllocator(100)
        alloc.allocate(80)
        alloc.allocate(80)
        assert alloc.peak_usage == 160
        assert alloc.overflow_bytes == 60
        assert not alloc.fits

    def test_first_fit_reuses_freed_space(self):
        alloc = LocalMemoryAllocator(1000)
        a = alloc.allocate(100)
        b = alloc.allocate(100)
        alloc.free(a)
        c = alloc.allocate(50)
        # c should slot into the freed region, not extend the peak
        assert alloc.peak_usage == 200
        alloc.free(b)
        alloc.free(c)

    def test_invalid_capacity(self):
        with pytest.raises(AllocationError):
            LocalMemoryAllocator(0)

    def test_invalid_size(self):
        alloc = LocalMemoryAllocator(100)
        with pytest.raises(AllocationError):
            alloc.allocate(0)
        with pytest.raises(AllocationError):
            alloc.allocate(-10)

    def test_double_free_rejected(self):
        alloc = LocalMemoryAllocator(100)
        handle = alloc.allocate(10)
        alloc.free(handle)
        with pytest.raises(AllocationError):
            alloc.free(handle)

    def test_unknown_handle(self):
        alloc = LocalMemoryAllocator(100)
        with pytest.raises(AllocationError):
            alloc.free(1234)

    def test_reset_keeps_peak(self):
        alloc = LocalMemoryAllocator(100)
        alloc.allocate(60)
        alloc.reset()
        assert alloc.used_bytes == 0
        assert alloc.peak_usage == 60

    def test_live_tags(self):
        alloc = LocalMemoryAllocator(100)
        alloc.allocate(10, tag="a")
        alloc.allocate(10, tag="b")
        assert alloc.live_tags() == ["a", "b"]
