"""Tests for repro.hardware.power: EnergyBreakdown and PowerModel."""

import pytest

from repro.hardware import CHIP_S
from repro.hardware.power import EnergyBreakdown, PowerModel


class TestEnergyBreakdown:
    def test_total_is_sum_of_components(self):
        e = EnergyBreakdown(mvm_pj=10.0, weight_write_pj=5.0, static_pj=2.5)
        assert e.total_pj == pytest.approx(17.5)

    def test_total_mj_conversion(self):
        e = EnergyBreakdown(mvm_pj=1e9)
        assert e.total_mj == pytest.approx(1.0)

    def test_add_accumulates_in_place(self):
        a = EnergyBreakdown(mvm_pj=1.0, vfu_pj=2.0)
        b = EnergyBreakdown(mvm_pj=3.0, data_load_pj=4.0)
        result = a.add(b)
        assert result is a
        assert a.mvm_pj == 4.0
        assert a.vfu_pj == 2.0
        assert a.data_load_pj == 4.0

    def test_scaled_returns_copy(self):
        a = EnergyBreakdown(mvm_pj=2.0, static_pj=4.0)
        b = a.scaled(0.5)
        assert b.mvm_pj == 1.0
        assert b.static_pj == 2.0
        assert a.mvm_pj == 2.0

    def test_dram_pj_aggregates_memory_terms(self):
        e = EnergyBreakdown(weight_load_pj=1, data_load_pj=2, data_store_pj=3, dram_background_pj=4)
        assert e.dram_pj == 10

    def test_as_dict_roundtrip(self):
        e = EnergyBreakdown(mvm_pj=1.5)
        d = e.as_dict()
        assert d["mvm_pj"] == 1.5
        assert set(d) >= {"mvm_pj", "weight_write_pj", "weight_load_pj", "static_pj"}

    def test_str_mentions_total(self):
        assert "total" in str(EnergyBreakdown(mvm_pj=1.0))


class TestPowerModel:
    @pytest.fixture()
    def power(self):
        return PowerModel(CHIP_S)

    def test_mvm_energy_scales_with_count(self, power):
        one = power.mvm_energy_pj(1, 256)
        ten = power.mvm_energy_pj(10, 256)
        assert ten == pytest.approx(10 * one)

    def test_vfu_energy(self, power):
        assert power.vfu_energy_pj(1000) == pytest.approx(
            1000 * CHIP_S.core.vfu_energy_per_element_pj
        )

    def test_weight_write_energy_per_weight(self, power):
        per_weight = power.weight_write_energy_pj(1)
        assert per_weight == pytest.approx(
            CHIP_S.core.crossbar.cells_per_weight * CHIP_S.core.crossbar.write_energy_per_cell_pj
        )

    def test_weight_load_more_expensive_than_interconnect(self, power):
        num_bytes = 4096
        assert power.weight_load_energy_pj(num_bytes) > power.interconnect_energy_pj(num_bytes)

    def test_dram_data_energy_positive_and_linear(self, power):
        assert power.dram_data_energy_pj(0) == pytest.approx(
            power.chip.interconnect.transfer_energy_pj(0)
        )
        assert power.dram_data_energy_pj(2000) > power.dram_data_energy_pj(1000)

    def test_static_energy_mw_times_ns(self, power):
        # 1 core for 1000 ns at static_power_mw mW
        expected = CHIP_S.core.static_power_mw * 1000.0
        assert power.static_energy_pj(1000.0, 1) == pytest.approx(expected)

    def test_static_energy_clamps_core_count(self, power):
        all_cores = power.static_energy_pj(100.0, CHIP_S.num_cores)
        assert power.static_energy_pj(100.0, CHIP_S.num_cores + 50) == pytest.approx(all_cores)
        assert power.static_energy_pj(100.0, -1) == 0.0

    def test_local_memory_energy(self, power):
        assert power.local_memory_energy_pj(100) == pytest.approx(
            100 * CHIP_S.core.local_memory_energy_per_byte_pj
        )

    def test_relative_cost_ordering(self, power):
        """Per byte: DRAM traffic >> on-chip bus traffic."""
        num_bytes = 1 << 16
        dram = power.dram_data_energy_pj(num_bytes)
        bus = power.interconnect_energy_pj(num_bytes)
        assert dram > 10 * bus
