"""End-to-end integration tests: whole-compiler flows matching the paper's claims."""

import pytest

from repro.core.compiler import compile_model
from repro.core.ga import GAConfig
from repro.hardware import CHIP_L, CHIP_M, CHIP_S
from repro.isa.instructions import Opcode
from repro.models import build_model

GA = GAConfig(population_size=12, generations=5, n_select=4, n_mutate=8,
              early_stop_patience=4, seed=0)


class TestAllPaperWorkloadsCompile:
    """Table II: COMPASS supports all three models on all three chips."""

    @pytest.mark.parametrize("model", ["vgg16", "resnet18", "squeezenet"])
    @pytest.mark.parametrize("chip", [CHIP_S, CHIP_M, CHIP_L], ids=["S", "M", "L"])
    def test_greedy_compiles_everywhere(self, model, chip):
        graph = build_model(model)
        result = compile_model(graph, chip, scheme="greedy", batch_size=2,
                               generate_instructions=False)
        assert result.supported
        assert result.throughput > 0
        assert result.group.is_valid(chip.total_crossbars)

    def test_models_exceeding_capacity_get_multiple_partitions(self):
        graph = build_model("vgg16")
        result = compile_model(graph, CHIP_L, scheme="greedy", batch_size=1,
                               generate_instructions=False)
        assert result.num_partitions > 1

    def test_model_fitting_on_chip_single_partition(self):
        graph = build_model("squeezenet")
        result = compile_model(graph, CHIP_L, scheme="greedy", batch_size=1,
                               generate_instructions=False)
        assert result.num_partitions == 1


class TestHeadlineClaims:
    """Directional checks of the paper's Sec. IV-B results."""

    def test_compass_throughput_gain_over_baselines(self):
        """Fig. 6: COMPASS improves throughput over greedy and layerwise."""
        graph = build_model("resnet18")
        kwargs = dict(batch_size=16, generate_instructions=False)
        compass = compile_model(graph, CHIP_M, scheme="compass", ga_config=GA, **kwargs)
        greedy = compile_model(graph, CHIP_M, scheme="greedy", **kwargs)
        layerwise = compile_model(graph, CHIP_M, scheme="layerwise", **kwargs)
        assert compass.throughput > greedy.throughput
        assert compass.throughput > layerwise.throughput

    def test_greedy_first_partition_dominates_latency(self):
        """Fig. 7: greedy's first partition takes the lion's share of the time."""
        graph = build_model("resnet18")
        result = compile_model(graph, CHIP_M, scheme="greedy", batch_size=16,
                               generate_instructions=False)
        fractions = result.report.partition_latency_fractions()
        assert fractions[0] > 0.5

    def test_layerwise_moves_more_dram_feature_traffic_than_greedy(self):
        """Sec. IV-B1: layerwise increases DRAM access for intermediate features."""
        graph = build_model("resnet18")
        kwargs = dict(batch_size=4, generate_instructions=False)
        greedy = compile_model(graph, CHIP_M, scheme="greedy", **kwargs)
        layerwise = compile_model(graph, CHIP_M, scheme="layerwise", **kwargs)
        assert layerwise.report.feature_traffic_bytes() > greedy.report.feature_traffic_bytes()

    def test_compass_edp_no_worse_than_layerwise(self):
        """Fig. 8: COMPASS wins EDP against layerwise by a wide margin."""
        graph = build_model("resnet18")
        kwargs = dict(batch_size=8, generate_instructions=False)
        compass = compile_model(graph, CHIP_S, scheme="compass", ga_config=GA, **kwargs)
        layerwise = compile_model(graph, CHIP_S, scheme="layerwise", **kwargs)
        assert compass.edp_per_inference < layerwise.edp_per_inference

    def test_weight_energy_amortised_by_batching(self):
        """Fig. 9: weight load energy dominates at batch 1, amortised by batch 16."""
        graph = build_model("resnet18")
        small = compile_model(graph, CHIP_M, scheme="greedy", batch_size=1,
                              generate_instructions=False)
        large = compile_model(graph, CHIP_M, scheme="greedy", batch_size=16,
                              generate_instructions=False)
        small_ratio = (
            small.report.energy_breakdown.weight_load_pj
            / small.report.energy_breakdown.mvm_pj
        )
        large_ratio = (
            large.report.energy_breakdown.weight_load_pj
            / large.report.energy_breakdown.mvm_pj
        )
        assert small_ratio > 1.0  # dominates compute at batch 1
        assert large_ratio < small_ratio / 4  # sufficiently amortised at batch 16

    def test_ga_converges_within_budget(self):
        """Fig. 10: the GA improves fitness and stabilises within the run."""
        graph = build_model("resnet18")
        result = compile_model(graph, CHIP_M, scheme="compass", batch_size=16,
                               ga_config=GAConfig(population_size=16, generations=8,
                                                  n_select=4, n_mutate=12, seed=3),
                               generate_instructions=False)
        history = result.ga_result.history
        assert history[-1].best_fitness <= history[0].best_fitness


class TestInstructionLevelConsistency:
    def test_schedule_covers_model_weights_and_outputs(self):
        graph = build_model("squeezenet")
        result = compile_model(graph, CHIP_S, scheme="greedy", batch_size=2)
        schedule = result.schedule
        counts = schedule.count_by_opcode()
        assert counts[Opcode.WRITE_WEIGHT] >= sum(
            plan.crossbars_used for plan in result.plans
        )
        assert counts[Opcode.MVMUL] > 0
        assert counts[Opcode.STORE_DATA] > 0

    def test_extra_models_also_compile(self):
        for name in ["alexnet", "mobilenet_v1", "lenet5"]:
            graph = build_model(name)
            result = compile_model(graph, CHIP_M, scheme="greedy", batch_size=1,
                                   generate_instructions=False)
            assert result.throughput > 0
