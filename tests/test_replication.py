"""Tests for repro.mapping.replication: pipeline-balancing replication."""

import math

import pytest

from repro.mapping.geometry import WeightMatrixGeometry
from repro.mapping.replication import ReplicationPlan, allocate_replication


def make_geom(name, crossbars, windows, rows=256, cols=64):
    return WeightMatrixGeometry(
        layer_name=name,
        rows=rows,
        cols=cols,
        groups=1,
        crossbars_per_copy=crossbars,
        weights_per_copy=rows * cols,
        windows=windows,
        weight_bytes=(rows * cols * 4) // 8,
        row_tiles=math.ceil(rows / 256),
        col_tiles=math.ceil(cols / 64),
    )


class TestAllocation:
    def test_empty_partition(self):
        plan = allocate_replication([], crossbar_budget=16)
        assert plan.total_crossbars == 0
        assert plan.bottleneck_slots == 0

    def test_single_layer_gets_all_budget(self):
        geom = make_geom("conv", crossbars=1, windows=100)
        plan = allocate_replication([geom], crossbar_budget=10)
        assert plan.factor("conv") == 10
        assert plan.total_crossbars == 10
        assert plan.bottleneck_slots == 10

    def test_replication_capped_by_windows(self):
        geom = make_geom("fc", crossbars=1, windows=1)
        plan = allocate_replication([geom], crossbar_budget=100)
        assert plan.factor("fc") == 1  # replicating a 1-window layer is useless

    def test_budget_exhaustion_raises_when_single_copy_too_big(self):
        geom = make_geom("huge", crossbars=20, windows=10)
        with pytest.raises(ValueError):
            allocate_replication([geom], crossbar_budget=16)

    def test_bottleneck_layer_replicated_first(self):
        early = make_geom("early", crossbars=1, windows=1000)  # bottleneck
        late = make_geom("late", crossbars=1, windows=10)
        plan = allocate_replication([early, late], crossbar_budget=8)
        assert plan.factor("early") > plan.factor("late")

    def test_balances_towards_equal_service_time(self):
        a = make_geom("a", crossbars=1, windows=400)
        b = make_geom("b", crossbars=1, windows=100)
        plan = allocate_replication([a, b], crossbar_budget=10)
        slots_a = math.ceil(400 / plan.factor("a"))
        slots_b = math.ceil(100 / plan.factor("b"))
        # service times should be within a factor ~2 of each other
        assert max(slots_a, slots_b) <= 2 * min(slots_a, slots_b) + 1

    def test_respects_budget(self):
        geoms = [make_geom(f"l{i}", crossbars=2, windows=500) for i in range(4)]
        plan = allocate_replication(geoms, crossbar_budget=20)
        assert plan.total_crossbars <= 20

    def test_crossbars_used_per_layer(self):
        geom = make_geom("conv", crossbars=3, windows=50)
        plan = allocate_replication([geom], crossbar_budget=9)
        assert plan.crossbars_used["conv"] == 3 * plan.factor("conv")

    def test_max_replication_limit(self):
        geom = make_geom("conv", crossbars=1, windows=10_000)
        plan = allocate_replication([geom], crossbar_budget=1000, max_replication=4)
        assert plan.factor("conv") <= 4

    def test_unknown_layer_factor_defaults_to_one(self):
        plan = ReplicationPlan()
        assert plan.factor("missing") == 1

    def test_bottleneck_slots_reported(self):
        a = make_geom("a", crossbars=1, windows=100)
        plan = allocate_replication([a], crossbar_budget=4)
        assert plan.bottleneck_slots == math.ceil(100 / plan.factor("a"))

    def test_more_budget_never_hurts_bottleneck(self):
        geoms = [make_geom("a", 1, 784), make_geom("b", 2, 196), make_geom("c", 4, 49)]
        small = allocate_replication(geoms, crossbar_budget=16)
        large = allocate_replication(geoms, crossbar_budget=64)
        assert large.bottleneck_slots <= small.bottleneck_slots
