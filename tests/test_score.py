"""Tests for repro.core.score: partition score R (Sec. III-C2)."""

import numpy as np
import pytest

from repro.core.baselines import greedy_partition, layerwise_partition
from repro.core.fitness import FitnessEvaluator
from repro.core.score import (
    partition_scores,
    population_unit_expectation,
    unit_fitness_profile,
)


@pytest.fixture(scope="module")
def evaluated_population(resnet18_decomposition_m):
    d = resnet18_decomposition_m
    evaluator = FitnessEvaluator(d, batch_size=4)
    groups = [greedy_partition(d), layerwise_partition(d)]
    return d, [evaluator.evaluate(g) for g in groups]


class TestUnitProfile:
    def test_profile_length(self, evaluated_population):
        d, evals = evaluated_population
        profile = unit_fitness_profile(evals[0], d.num_units)
        assert profile.shape == (d.num_units,)

    def test_profile_sum_equals_group_fitness(self, evaluated_population):
        """sum_i m(x_i) over all units equals the PGF by construction."""
        d, evals = evaluated_population
        for ev in evals:
            profile = unit_fitness_profile(ev, d.num_units)
            assert profile.sum() == pytest.approx(ev.fitness)

    def test_profile_constant_within_partition(self, evaluated_population):
        d, evals = evaluated_population
        ev = evals[0]
        profile = unit_fitness_profile(ev, d.num_units)
        for (start, end), fitness in zip(ev.group.spans(), ev.partition_fitness):
            assert np.allclose(profile[start:end], fitness / (end - start))


class TestExpectation:
    def test_expectation_is_mean_of_profiles(self, evaluated_population):
        d, evals = evaluated_population
        expectation = population_unit_expectation(evals, d.num_units)
        manual = np.mean(
            [unit_fitness_profile(ev, d.num_units) for ev in evals], axis=0
        )
        assert np.allclose(expectation, manual)

    def test_empty_population_rejected(self, evaluated_population):
        d, _ = evaluated_population
        with pytest.raises(ValueError):
            population_unit_expectation([], d.num_units)


class TestScores:
    def test_one_score_per_partition(self, evaluated_population):
        d, evals = evaluated_population
        expectation = population_unit_expectation(evals, d.num_units)
        for ev in evals:
            scores = partition_scores(ev, expectation)
            assert len(scores) == ev.group.num_partitions
            assert all(s > 0 for s in scores)

    def test_identical_population_scores_are_one(self, evaluated_population):
        """If every individual is the same group, every score R is exactly 1."""
        d, evals = evaluated_population
        ev = evals[0]
        expectation = population_unit_expectation([ev, ev, ev], d.num_units)
        scores = partition_scores(ev, expectation)
        assert np.allclose(scores, 1.0)

    def test_worse_partition_scores_higher(self, evaluated_population):
        """A partition whose units do better elsewhere in the population gets R > 1."""
        d, evals = evaluated_population
        expectation = population_unit_expectation(evals, d.num_units)
        all_scores = [s for ev in evals for s in partition_scores(ev, expectation)]
        assert max(all_scores) > 1.0
        assert min(all_scores) < 1.0 + 1e-9
