"""Tests for repro.core.validity.ValidityMap (Fig. 5)."""

import numpy as np
import pytest

from repro.core.decomposition import decompose_model
from repro.core.validity import ValidityMap
from repro.hardware import CHIP_L, CHIP_S


class TestMaxEnd:
    def test_max_end_monotone_nondecreasing(self, resnet18_decomposition_m):
        vm = ValidityMap(resnet18_decomposition_m)
        ends = [vm.max_end(i) for i in range(vm.num_units)]
        assert all(b >= a for a, b in zip(ends, ends[1:]))

    def test_max_end_greater_than_start(self, resnet18_decomposition_m):
        vm = ValidityMap(resnet18_decomposition_m)
        for i in range(vm.num_units):
            assert vm.max_end(i) > i

    def test_max_end_out_of_range(self, small_cnn_decomposition):
        vm = ValidityMap(small_cnn_decomposition)
        with pytest.raises(IndexError):
            vm.max_end(-1)
        with pytest.raises(IndexError):
            vm.max_end(vm.num_units)

    def test_spans_within_max_end_respect_capacity(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        vm = ValidityMap(d)
        for start in range(0, vm.num_units, 7):
            end = vm.max_end(start)
            assert d.span_crossbars(start, end) <= d.chip.total_crossbars
            if end < vm.num_units:
                assert d.span_crossbars(start, end + 1) > d.chip.total_crossbars


class TestValidity:
    def test_is_valid_consistent_with_max_end(self, resnet18_decomposition_m):
        vm = ValidityMap(resnet18_decomposition_m)
        assert vm.is_valid(0, vm.max_end(0))
        if vm.max_end(0) < vm.num_units:
            assert not vm.is_valid(0, vm.max_end(0) + 1)

    def test_invalid_ranges(self, small_cnn_decomposition):
        vm = ValidityMap(small_cnn_decomposition)
        assert not vm.is_valid(0, 0)
        assert not vm.is_valid(2, 1)
        assert not vm.is_valid(-1, 1)
        assert not vm.is_valid(0, vm.num_units + 1)

    def test_fully_fitting_model_all_valid(self, squeezenet_decomposition_s):
        vm = ValidityMap(squeezenet_decomposition_s)
        assert vm.valid_fraction() == pytest.approx(1.0)
        assert vm.is_valid(0, vm.num_units)

    def test_small_chip_reduces_valid_fraction(self, vgg16_graph):
        """Fig. 5: more weights + smaller chip -> larger invalid portion."""
        frac_s = ValidityMap(decompose_model(vgg16_graph, CHIP_S)).valid_fraction()
        frac_l = ValidityMap(decompose_model(vgg16_graph, CHIP_L)).valid_fraction()
        assert frac_s < frac_l < 1.0

    def test_single_unit_too_big_raises(self, small_cnn_decomposition):
        with pytest.raises(ValueError):
            ValidityMap(small_cnn_decomposition, capacity_crossbars=0)


class TestMatrix:
    def test_matrix_shape_and_diagonal(self, small_cnn_decomposition):
        vm = ValidityMap(small_cnn_decomposition)
        matrix = vm.as_matrix()
        assert matrix.shape == (vm.num_units, vm.num_units)
        assert matrix.dtype == bool
        assert np.all(np.diagonal(matrix))  # every single-unit span is valid

    def test_matrix_row_prefix_property(self, resnet18_decomposition_m):
        """Each row is a prefix of True values starting at the diagonal."""
        vm = ValidityMap(resnet18_decomposition_m)
        matrix = vm.as_matrix()
        for i in range(vm.num_units):
            row = matrix[i]
            assert not row[:i].any()
            true_count = int(row.sum())
            assert row[i:i + true_count].all()
            assert not row[i + true_count:].any()

    def test_matrix_matches_valid_fraction(self, resnet18_decomposition_m):
        vm = ValidityMap(resnet18_decomposition_m)
        matrix = vm.as_matrix()
        n = vm.num_units
        assert vm.valid_fraction() == pytest.approx(matrix.sum() / (n * (n + 1) / 2))

    def test_matrix_is_cached_and_read_only(self, resnet18_decomposition_m):
        """The matrix is the DP's hot mask: built once, shared, immutable."""
        vm = ValidityMap(resnet18_decomposition_m)
        first = vm.as_matrix()
        assert vm.as_matrix() is first  # cached, not recomputed per call
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0, 0] = False

    def test_matrix_pins_is_valid(self, resnet18_decomposition_m):
        """Cell [i, j] == is_valid(i, j + 1) over the whole triangle."""
        vm = ValidityMap(resnet18_decomposition_m)
        matrix = vm.as_matrix()
        for i in range(vm.num_units):
            for j in range(vm.num_units):
                assert matrix[i, j] == vm.is_valid(i, j + 1)


class TestRandomPartitioning:
    def test_random_valid_end_in_range(self, resnet18_decomposition_m):
        vm = ValidityMap(resnet18_decomposition_m)
        rng = np.random.default_rng(0)
        for _ in range(50):
            end = vm.random_valid_end(0, rng)
            assert 0 < end <= vm.max_end(0)

    def test_random_boundaries_cover_model(self, resnet18_decomposition_m):
        vm = ValidityMap(resnet18_decomposition_m)
        rng = np.random.default_rng(1)
        for _ in range(20):
            bounds = vm.random_partition_boundaries(rng)
            assert bounds[-1] == vm.num_units
            assert all(b > a for a, b in zip(bounds, bounds[1:]))
            start = 0
            for end in bounds:
                assert vm.is_valid(start, end)
                start = end

    def test_random_boundaries_deterministic_with_seed(self, resnet18_decomposition_m):
        vm = ValidityMap(resnet18_decomposition_m)
        a = vm.random_partition_boundaries(np.random.default_rng(42))
        b = vm.random_partition_boundaries(np.random.default_rng(42))
        assert a == b
