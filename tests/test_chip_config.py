"""Tests for core/chip/interconnect configs and the Table I presets."""

import pytest

from repro.hardware import (
    CHIP_L,
    CHIP_M,
    CHIP_S,
    CHIP_PRESETS,
    get_chip_config,
    hardware_configuration_table,
)
from repro.hardware.chip import ChipConfig, InterconnectConfig
from repro.hardware.core import CoreConfig
from repro.hardware.crossbar import CrossbarConfig


class TestCoreConfig:
    def test_weight_capacity(self):
        core = CoreConfig(crossbars_per_core=9)
        assert core.weight_capacity_bytes == 9 * 8 * 1024

    def test_static_power_includes_table1_components(self):
        core = CoreConfig()
        assert core.static_power_mw >= 22.8 + 18.0 + 8.0

    def test_vfu_latency_and_energy(self):
        core = CoreConfig(vfu_count=12, vfu_elements_per_ns=1.0)
        assert core.vfu_latency_ns(120) == pytest.approx(10.0)
        assert core.vfu_latency_ns(0) == 0.0
        assert core.vfu_energy_pj(100) == pytest.approx(100 * core.vfu_energy_per_element_pj)

    def test_local_memory_helpers(self):
        core = CoreConfig()
        assert core.local_memory_latency_ns(0) == 0.0
        assert core.local_memory_latency_ns(320) == pytest.approx(10.0)
        assert core.local_memory_energy_pj(64) == pytest.approx(32.0)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            CoreConfig(crossbars_per_core=0)
        with pytest.raises(ValueError):
            CoreConfig(vfu_count=0)
        with pytest.raises(ValueError):
            CoreConfig(local_memory_bytes=0)


class TestInterconnect:
    def test_transfer_time_has_fixed_and_variable_part(self):
        bus = InterconnectConfig(bandwidth_bytes_per_ns=16.0, transfer_latency_ns=10.0)
        assert bus.transfer_time_ns(0) == 0.0
        assert bus.transfer_time_ns(160) == pytest.approx(20.0)

    def test_transfer_energy(self):
        bus = InterconnectConfig(energy_per_byte_pj=0.2)
        assert bus.transfer_energy_pj(100) == pytest.approx(20.0)
        assert bus.transfer_energy_pj(-5) == 0.0


class TestChipPresets:
    def test_table1_capacities(self):
        """Table I: 1.125 / 2.0 / 4.5 MB."""
        assert CHIP_S.weight_capacity_mb == pytest.approx(1.125)
        assert CHIP_M.weight_capacity_mb == pytest.approx(2.0)
        assert CHIP_L.weight_capacity_mb == pytest.approx(4.5)

    def test_table1_core_counts(self):
        assert (CHIP_S.num_cores, CHIP_S.core.crossbars_per_core) == (16, 9)
        assert (CHIP_M.num_cores, CHIP_M.core.crossbars_per_core) == (16, 16)
        assert (CHIP_L.num_cores, CHIP_L.core.crossbars_per_core) == (36, 16)

    def test_total_crossbars(self):
        assert CHIP_S.total_crossbars == 144
        assert CHIP_M.total_crossbars == 256
        assert CHIP_L.total_crossbars == 576

    def test_capacity_ordering(self):
        assert CHIP_S.weight_capacity_bytes < CHIP_M.weight_capacity_bytes < CHIP_L.weight_capacity_bytes

    def test_fits_on_chip(self):
        assert CHIP_S.fits_on_chip(1024 * 1024)
        assert not CHIP_S.fits_on_chip(3 * 1024 * 1024)

    def test_get_chip_config_case_insensitive(self):
        assert get_chip_config("s") is CHIP_S
        assert get_chip_config(" M ") is CHIP_M

    def test_get_chip_config_unknown(self):
        with pytest.raises(KeyError):
            get_chip_config("XL")

    def test_presets_dict(self):
        assert set(CHIP_PRESETS) == {"S", "M", "L"}

    def test_describe_mentions_capacity(self):
        assert "1.125" in CHIP_S.describe()

    def test_invalid_chip(self):
        with pytest.raises(ValueError):
            ChipConfig(name="bad", num_cores=0)


class TestHardwareTable:
    def test_three_rows(self):
        rows = hardware_configuration_table()
        assert len(rows) == 3
        assert [r["chip"] for r in rows] == ["L", "M", "S"]

    def test_row_contents_match_table1(self):
        rows = {r["chip"]: r for r in hardware_configuration_table()}
        assert rows["S"]["capacity_mb"] == pytest.approx(1.125)
        assert rows["M"]["num_cores"] == 16
        assert rows["L"]["crossbars_per_core"] == 16
        assert rows["S"]["vfu_power_mw"] == pytest.approx(22.8)
        assert rows["S"]["local_memory_kb"] == 64
        assert rows["S"]["control_power_mw"] == pytest.approx(8.0)
