"""Tests for repro.graph.builder.GraphBuilder."""

import pytest

from repro.graph import GraphBuilder
from repro.graph.tensor import TensorShape


class TestSequentialConstruction:
    def test_simple_chain(self):
        b = GraphBuilder("m")
        b.add_input(3, 16, 16)
        b.add_conv("c1", 3, 8, 3, padding=1)
        b.add_relu()
        b.add_maxpool(2, 2)
        b.add_flatten()
        b.add_linear("fc", 8 * 8 * 8, 10)
        g = b.build()
        assert len(g) == 6
        assert g.node("fc").output_shape == TensorShape.flat(10)

    def test_current_tracks_last_added(self):
        b = GraphBuilder()
        b.add_input(1, 8, 8)
        name = b.add_conv("c", 1, 2, 3, padding=1)
        assert b.current == name == "c"

    def test_auto_names_are_unique(self):
        b = GraphBuilder()
        b.add_input(1, 8, 8)
        b.add_conv("c", 1, 2, 3, padding=1)
        r1 = b.add_relu()
        b.add_conv("c2", 2, 2, 3, padding=1)
        r2 = b.add_relu()
        assert r1 != r2

    def test_no_input_raises(self):
        b = GraphBuilder()
        with pytest.raises(ValueError):
            b.add_relu()


class TestBranching:
    def test_residual_block(self):
        b = GraphBuilder()
        b.add_input(4, 8, 8)
        trunk = b.add_conv("c1", 4, 4, 3, padding=1)
        b.add_relu()
        b.add_conv("c2", 4, 4, 3, padding=1)
        b.add_add("res", inputs=[b.current, trunk])
        g = b.build()
        assert set(n.name for n in g.predecessors("res")) == {"c2", "c1"}

    def test_add_requires_two_inputs(self):
        b = GraphBuilder()
        b.add_input(4, 8, 8)
        b.add_conv("c1", 4, 4, 3, padding=1)
        with pytest.raises(ValueError):
            b.add_add("res", inputs=[b.current])
        with pytest.raises(ValueError):
            b.add_add("res2")

    def test_concat_requires_two_inputs(self):
        b = GraphBuilder()
        b.add_input(4, 8, 8)
        b.add_conv("c1", 4, 4, 1)
        with pytest.raises(ValueError):
            b.add_concat("cat", inputs=["c1"])

    def test_fire_like_branch(self):
        b = GraphBuilder()
        b.add_input(8, 8, 8)
        squeeze = b.add_conv("squeeze", 8, 4, 1)
        e1 = b.add_conv("e1", 4, 8, 1, inputs=[squeeze])
        e3 = b.add_conv("e3", 4, 8, 3, padding=1, inputs=[squeeze])
        b.add_concat("cat", inputs=[e1, e3])
        g = b.build()
        assert g.node("cat").output_shape == TensorShape.chw(16, 8, 8)

    def test_explicit_inputs_override_current(self):
        b = GraphBuilder()
        b.add_input(3, 8, 8)
        b.add_conv("c1", 3, 4, 3, padding=1)
        b.add_conv("c2", 4, 4, 3, padding=1)
        # branch back from c1 explicitly
        b.add_conv("c3", 4, 4, 3, padding=1, inputs=["c1"])
        g = b.build()
        assert [n.name for n in g.predecessors("c3")] == ["c1"]


class TestBuild:
    def test_build_validates(self):
        b = GraphBuilder()
        b.add_input(1, 4, 4)
        b.add_conv("c", 1, 1, 3, padding=1)
        g = b.build()
        assert g.name == "model"

    def test_named_builder(self):
        b = GraphBuilder("custom")
        b.add_input(1, 4, 4)
        assert b.build().name == "custom"
