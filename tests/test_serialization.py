"""Tests for JSON serialization of compilation results."""

import json

import pytest

from repro.core.compiler import compile_model
from repro.core.ga import GAConfig
from repro.hardware import CHIP_S
from repro.serialization import (
    compilation_result_to_dict,
    dump_compilation_result,
    execution_report_to_dict,
    ga_result_to_dict,
    load_result_dict,
    partition_estimate_to_dict,
)

TINY_GA = GAConfig(population_size=8, generations=3, n_select=3, n_mutate=5, seed=0)


@pytest.fixture(scope="module")
def compiled(squeezenet_graph):
    return compile_model(squeezenet_graph, CHIP_S, scheme="compass", batch_size=4,
                         ga_config=TINY_GA)


class TestSerialization:
    def test_partition_estimate_dict(self, compiled):
        data = partition_estimate_to_dict(compiled.report.estimates[0])
        assert data["num_units"] == compiled.report.estimates[0].partition.num_units
        assert data["latency_ns"]["total"] > 0
        assert set(data["io"]) == {"load_bytes", "store_bytes", "num_entries", "num_exits"}
        json.dumps(data)  # must be JSON-serialisable

    def test_execution_report_dict(self, compiled):
        data = execution_report_to_dict(compiled.report)
        assert data["model"] == compiled.graph.name
        assert data["num_partitions"] == len(data["partitions"])
        assert data["throughput_ips"] == pytest.approx(compiled.report.throughput)
        json.dumps(data)

    def test_ga_result_dict(self, compiled):
        data = ga_result_to_dict(compiled.ga_result)
        assert data["best_boundaries"] == list(compiled.group.boundaries)
        assert len(data["history"]) == compiled.ga_result.generations_run
        json.dumps(data)

    def test_compilation_result_dict(self, compiled):
        data = compilation_result_to_dict(compiled)
        assert data["scheme"] == "compass"
        assert data["boundaries"] == list(compiled.group.boundaries)
        assert "ga" in data
        assert "instructions" in data
        assert data["total_instructions"] == compiled.schedule.total_instructions
        json.dumps(data)

    def test_ga_history_can_be_excluded(self, compiled):
        data = compilation_result_to_dict(compiled, include_ga_history=False)
        assert "ga" not in data

    def test_dump_and_load_roundtrip(self, compiled, tmp_path):
        path = tmp_path / "result.json"
        dump_compilation_result(compiled, str(path))
        loaded = load_result_dict(str(path))
        assert loaded["model"] == compiled.graph.name
        assert loaded["report"]["num_partitions"] == compiled.num_partitions
