"""Opt-in CI guard: quick-bench headliners must not regress vs the baseline.

Skipped unless ``REPRO_CHECK_BENCH`` is set — the check runs the quick
benchmark suite (tens of seconds) and is only meaningful on the machine
profile that produced the committed ``BENCH_<date>.json``; see
``scripts/check_bench_regression.py`` for the comparison rules
(threshold via ``REPRO_BENCH_REGRESSION_PCT``, default 20%).
"""

import os
import subprocess
import sys

import pytest

from repro import envflags

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

pytestmark = pytest.mark.skipif(
    not envflags.check_bench_enabled(),
    reason="benchmark regression check is opt-in: set REPRO_CHECK_BENCH=1",
)


def test_quick_bench_no_regression():
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "scripts", "check_bench_regression.py")],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"benchmark regression detected:\n{result.stdout}\n{result.stderr}"
    )
