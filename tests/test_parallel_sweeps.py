"""Tests for the parallel sweep runner (repro.evaluation.parallel)."""

import pytest

from repro.core.ga import GAConfig
from repro.evaluation.experiments import ExperimentConfig, make_sweep_runner
from repro.evaluation.parallel import ParallelSweepRunner
from repro.evaluation.sweeps import SweepRunner

TINY_GA = GAConfig(population_size=6, generations=2, n_select=2, n_mutate=4,
                   early_stop_patience=2, seed=0)
MODELS = ("lenet5",)
CHIPS = ("S", "M")
SCHEMES = ("greedy", "compass")
BATCHES = (1, 4)


def serial_rows():
    runner = SweepRunner(ga_config=TINY_GA)
    return runner.run(MODELS, CHIPS, SCHEMES, BATCHES)


class TestParallelSweepRunner:
    def test_rows_identical_to_serial(self):
        parallel = ParallelSweepRunner(ga_config=TINY_GA, max_workers=2)
        assert parallel.run(MODELS, CHIPS, SCHEMES, BATCHES) == serial_rows()

    def test_single_worker_falls_back_to_serial(self):
        parallel = ParallelSweepRunner(ga_config=TINY_GA, max_workers=1)
        assert parallel.run(MODELS, CHIPS, SCHEMES, BATCHES) == serial_rows()

    def test_single_chunk_falls_back_to_serial(self):
        parallel = ParallelSweepRunner(ga_config=TINY_GA, max_workers=4)
        rows = parallel.run(MODELS, ("S",), SCHEMES, BATCHES)
        assert rows == SweepRunner(ga_config=TINY_GA).run(MODELS, ("S",), SCHEMES, BATCHES)

    def test_row_order_is_serial_order(self):
        parallel = ParallelSweepRunner(ga_config=TINY_GA, max_workers=2)
        rows = parallel.run(MODELS, CHIPS, SCHEMES, BATCHES)
        keys = [(r["model"], r["chip"], r["batch"], r["scheme"]) for r in rows]
        expected = [
            (model, chip, batch, scheme)
            for model in MODELS for chip in CHIPS
            for batch in BATCHES for scheme in SCHEMES
        ]
        assert keys == expected


class TestMakeSweepRunner:
    def test_serial_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_SWEEPS", raising=False)
        runner = make_sweep_runner(ExperimentConfig.fast())
        assert isinstance(runner, SweepRunner)

    def test_parallel_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_SWEEPS", "1")
        runner = make_sweep_runner(ExperimentConfig.fast())
        assert isinstance(runner, ParallelSweepRunner)

    def test_env_zero_stays_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_SWEEPS", "0")
        assert isinstance(make_sweep_runner(ExperimentConfig.fast()), SweepRunner)

    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_SWEEPS", "0")
        runner = make_sweep_runner(ExperimentConfig.fast(), parallel=True, max_workers=2)
        assert isinstance(runner, ParallelSweepRunner)
        assert runner.max_workers == 2
