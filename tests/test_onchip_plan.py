"""Tests for repro.onchip.plan: layer slices, replication and core mapping."""

import pytest

from repro.core.baselines import greedy_partition
from repro.core.partition import Partition, PartitionGroup
from repro.onchip.plan import build_partition_plan


class TestPlanConstruction:
    def test_slices_match_partition_layers(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        partition = greedy_partition(d).partition(0)
        plan = build_partition_plan(partition, chip_m)
        assert [s.layer_name for s in plan.slices] == partition.layer_names()

    def test_single_copy_bytes_matches_partition(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        partition = greedy_partition(d).partition(0)
        plan = build_partition_plan(partition, chip_m)
        assert plan.single_copy_weight_bytes == partition.weight_bytes

    def test_replicated_at_least_single_copy(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        partition = greedy_partition(d).partition(0)
        plan = build_partition_plan(partition, chip_m)
        assert plan.replicated_weight_bytes >= plan.single_copy_weight_bytes

    def test_crossbars_within_chip_budget(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        for partition in greedy_partition(d).partitions():
            plan = build_partition_plan(partition, chip_m)
            assert plan.crossbars_used <= chip_m.total_crossbars

    def test_replication_factors_at_least_one(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        partition = greedy_partition(d).partition(0)
        plan = build_partition_plan(partition, chip_m)
        for layer_slice in plan.slices:
            assert plan.replication.factor(layer_slice.layer_name) >= 1

    def test_small_partition_gets_replication(self, squeezenet_decomposition_s, chip_s):
        """A partition using a fraction of the chip should replicate its layers."""
        d = squeezenet_decomposition_s
        partition = PartitionGroup.single_partition(d).partition(0)
        plan = build_partition_plan(partition, chip_s)
        factors = [plan.replication.factor(s.layer_name) for s in plan.slices]
        assert max(factors) > 1

    def test_core_utilization_bounds(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        partition = greedy_partition(d).partition(0)
        plan = build_partition_plan(partition, chip_m)
        assert 0.0 < plan.core_utilization <= 1.0

    def test_slice_for_lookup(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        partition = greedy_partition(d).partition(0)
        plan = build_partition_plan(partition, chip_m)
        name = plan.slices[0].layer_name
        assert plan.slice_for(name).layer_name == name
        with pytest.raises(KeyError):
            plan.slice_for("missing_layer")

    def test_slice_fraction_reflects_split_layers(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        # find a multi-unit layer and plan only its first unit
        for layer in d.crossbar_layers:
            start, end = d.layer_unit_ranges[layer]
            if end - start >= 2:
                partition = Partition(d, start, start + 1)
                plan = build_partition_plan(partition, chip_m)
                assert plan.slice_for(layer).fraction < 1.0
                return
        pytest.skip("no multi-unit layer")

    def test_attached_layers_recorded(self, small_cnn_decomposition, tiny_chip):
        d = small_cnn_decomposition
        partition = Partition(d, 0, d.num_units)
        plan = build_partition_plan(partition, tiny_chip)
        attached = {name for s in plan.slices for name in s.attached}
        assert "relu1" in attached
        assert "res_add" in attached
