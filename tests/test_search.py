"""Tests for the partition-search subsystem (``repro.search``).

The load-bearing contracts:

* ``DPOptimalSearch`` is *exact* in latency mode — equal to brute-force
  enumeration on a small model, and never beaten by any other engine on any
  registry model (the optimum is a hard floor, asserted with ``<=`` on raw
  floats: the DP's left-to-right accumulation is bit-identical to the
  evaluator's sequential sums, so no tolerance is needed).
* ``GASearch`` is a *transparent* adapter: fixed-seed results are
  bit-identical to driving ``CompassGA`` directly.
* The EDP-mode Pareto DP is exact while its frontier is not truncated.
"""

import numpy as np
import pytest

from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.core.ga import CompassGA, GAConfig
from repro.core.partition import PartitionGroup
from repro.evaluation.registry import shared_decomposition
from repro.models import list_models
from repro.search import (
    BeamSearch,
    DPOptimalSearch,
    GASearch,
    OPTIMIZERS,
    SimulatedAnnealing,
    make_search,
)

FAST_GA = GAConfig(
    population_size=24, generations=8, n_select=6, n_mutate=18,
    early_stop_patience=4, seed=0,
)


def enumerate_boundary_groups(validity, start=0):
    """All valid boundary tuples of a decomposition (exponential; tiny models)."""
    if start == validity.num_units:
        yield ()
        return
    for end in range(start + 1, validity.max_end(start) + 1):
        for rest in enumerate_boundary_groups(validity, end):
            yield (end,) + rest


class TestDPOptimalSearch:
    def test_matches_brute_force_on_small_model(self):
        decomposition, validity = shared_decomposition("lenet5", "S")
        assert decomposition.num_units <= 12
        evaluator = FitnessEvaluator(decomposition, batch_size=2)
        brute = min(
            evaluator.evaluate(
                PartitionGroup.from_boundaries(decomposition, bounds)
            ).fitness
            for bounds in enumerate_boundary_groups(validity)
        )
        result = DPOptimalSearch(decomposition, evaluator, validity).run()
        assert result.exact
        assert result.best_fitness == brute

    def test_edp_pareto_dp_matches_brute_force(self):
        decomposition, validity = shared_decomposition("lenet5", "S")
        evaluator = FitnessEvaluator(decomposition, batch_size=2, mode=FitnessMode.EDP)
        result = DPOptimalSearch(decomposition, evaluator, validity).run()
        assert result.exact  # lenet5 frontiers are far below the cap

        def group_edp(bounds):
            estimates = evaluator.span_table.estimate_group(
                PartitionGroup.from_boundaries(decomposition, bounds), 2
            )
            return (
                sum(e.energy_pj for e in estimates)
                * sum(e.latency_ns for e in estimates)
            )

        brute = min(group_edp(b) for b in enumerate_boundary_groups(validity))
        best = result.best_evaluation
        assert best.total_energy_pj * best.total_latency_ns == brute

    def test_dp_equals_fitness_of_reconstructed_group(self):
        decomposition, validity = shared_decomposition("squeezenet", "S")
        evaluator = FitnessEvaluator(decomposition, batch_size=4)
        result = DPOptimalSearch(decomposition, evaluator, validity).run()
        # the DP's accumulated optimum IS the evaluator's fitness, bit for bit
        assert result.best_fitness == evaluator.evaluate(result.best_group).fitness
        # history records one step per cut position
        assert result.steps_run == decomposition.num_units
        assert result.history[-1].best_fitness == result.best_fitness

    def test_dp_identical_with_and_without_span_matrix(self):
        decomposition, validity = shared_decomposition("squeezenet", "M")
        with_matrix = DPOptimalSearch(
            decomposition,
            FitnessEvaluator(decomposition, batch_size=4, use_span_matrix=True),
            validity,
        ).run()
        without_matrix = DPOptimalSearch(
            decomposition,
            FitnessEvaluator(decomposition, batch_size=4, use_span_matrix=False),
            validity,
        ).run()
        assert with_matrix.best_group.boundaries == without_matrix.best_group.boundaries
        assert with_matrix.best_fitness == without_matrix.best_fitness

    def test_rejects_mismatched_evaluator(self):
        decomposition, _ = shared_decomposition("lenet5", "S")
        other, _ = shared_decomposition("squeezenet", "S")
        with pytest.raises(ValueError, match="different decomposition"):
            DPOptimalSearch(decomposition, FitnessEvaluator(other))


class TestOptimumIsFloor:
    """DP fitness <= every heuristic engine, on every registry model."""

    @pytest.mark.parametrize("model", list_models())
    @pytest.mark.parametrize("chip", ["S", "L"])
    def test_dp_below_all_heuristics(self, model, chip):
        try:
            decomposition, validity = shared_decomposition(model, chip)
        except Exception:
            pytest.skip(f"{model} does not decompose on chip {chip}")
        evaluator = FitnessEvaluator(decomposition, batch_size=4)
        optimum = DPOptimalSearch(decomposition, evaluator, validity).run()
        assert optimum.exact
        heuristics = {
            "ga": GASearch(decomposition, evaluator, validity, ga_config=FAST_GA),
            "beam": BeamSearch(decomposition, evaluator, validity, width=6),
            "anneal": SimulatedAnnealing(
                decomposition, evaluator, validity, steps=150, seed=0
            ),
        }
        for name, engine in heuristics.items():
            result = engine.run()
            assert optimum.best_fitness <= result.best_fitness, (
                f"{name} beat the 'exact' DP on {model}-{chip}"
            )
            # every engine returns a full, valid partitioning
            assert result.best_group.boundaries[-1] == decomposition.num_units
            assert validity.group_valid(result.best_group.boundaries)


class TestGASearchAdapter:
    def test_bit_identical_to_compass_ga(self):
        decomposition, validity = shared_decomposition("squeezenet", "S")
        evaluator = FitnessEvaluator(decomposition, batch_size=4)
        direct = CompassGA(decomposition, evaluator, FAST_GA, validity).run()
        adapted = GASearch(
            decomposition, evaluator, validity, ga_config=FAST_GA
        ).run()
        assert adapted.best_fitness == direct.best_fitness
        assert adapted.best_group.boundaries == direct.best_group.boundaries
        assert adapted.ga_result is not None
        assert adapted.ga_result.generations_run == direct.generations_run
        assert len(adapted.ga_result.history) == len(direct.history)
        for ours, theirs in zip(adapted.ga_result.history, direct.history):
            assert ours.fitnesses == theirs.fitnesses
            assert ours.num_partitions == theirs.num_partitions
            assert ours.selected_mask == theirs.selected_mask
        # the search-level history mirrors the GA generations
        assert [s.step for s in adapted.history] == [
            r.generation for r in direct.history
        ]
        assert [s.best_fitness for s in adapted.history] == [
            r.best_fitness for r in direct.history
        ]


class TestHeuristicEngines:
    def test_beam_deterministic_and_width_validated(self):
        decomposition, validity = shared_decomposition("squeezenet", "M")
        evaluator = FitnessEvaluator(decomposition, batch_size=2)
        first = BeamSearch(decomposition, evaluator, validity, width=4).run()
        second = BeamSearch(decomposition, evaluator, validity, width=4).run()
        assert first.best_group.boundaries == second.best_group.boundaries
        assert first.best_fitness == second.best_fitness
        with pytest.raises(ValueError, match="width"):
            BeamSearch(decomposition, evaluator, validity, width=0)

    def test_anneal_fixed_seed_reproducible(self):
        decomposition, validity = shared_decomposition("squeezenet", "M")
        evaluator = FitnessEvaluator(decomposition, batch_size=2)
        first = SimulatedAnnealing(
            decomposition, evaluator, validity, steps=100, seed=7
        ).run()
        second = SimulatedAnnealing(
            decomposition, evaluator, validity, steps=100, seed=7
        ).run()
        assert first.best_group.boundaries == second.best_group.boundaries
        assert first.best_fitness == second.best_fitness
        assert first.steps_run == 100
        assert len(first.history) == 100
        # best-so-far trace is monotonically non-increasing
        trace = [step.best_fitness for step in first.history]
        assert all(b <= a for a, b in zip(trace, trace[1:]))

    def test_search_results_report_span_stats(self):
        decomposition, validity = shared_decomposition("squeezenet", "M")
        evaluator = FitnessEvaluator(decomposition, batch_size=2)
        result = BeamSearch(decomposition, evaluator, validity, width=2).run()
        assert result.span_stats  # span table engaged -> per-run delta stats
        assert result.evaluations > 0


class TestFactory:
    def test_all_registered_engines_construct(self):
        decomposition, validity = shared_decomposition("lenet5", "S")
        for name in OPTIMIZERS:
            evaluator = FitnessEvaluator(decomposition, batch_size=1)
            engine = make_search(name, decomposition, evaluator, validity)
            assert engine.name == name
            result = engine.run()
            assert result.optimizer == name
            assert result.best_group.boundaries[-1] == decomposition.num_units

    def test_unknown_optimizer_raises(self):
        decomposition, validity = shared_decomposition("lenet5", "S")
        evaluator = FitnessEvaluator(decomposition)
        with pytest.raises(ValueError, match="unknown optimizer 'magic'"):
            make_search("magic", decomposition, evaluator, validity)


class TestEDPFrontierInstrumentation:
    def test_frontier_sizes_recorded(self):
        decomposition, validity = shared_decomposition("lenet5", "S")
        evaluator = FitnessEvaluator(decomposition, batch_size=4, mode=FitnessMode.EDP)
        search = DPOptimalSearch(decomposition, evaluator, validity)
        assert search.frontier_sizes is None
        result = search.run()
        assert result.exact
        assert len(search.frontier_sizes) == decomposition.num_units
        assert all(size >= 1 for size in search.frontier_sizes)

    def test_latency_mode_leaves_frontier_unset(self):
        decomposition, validity = shared_decomposition("lenet5", "S")
        evaluator = FitnessEvaluator(decomposition, batch_size=4)
        search = DPOptimalSearch(decomposition, evaluator, validity)
        search.run()
        assert search.frontier_sizes is None

    def test_uncapped_matches_default_cap(self):
        decomposition, validity = shared_decomposition("squeezenet", "S")
        evaluator = FitnessEvaluator(decomposition, batch_size=4, mode=FitnessMode.EDP)
        capped = DPOptimalSearch(decomposition, evaluator, validity).run()
        uncapped = DPOptimalSearch(
            decomposition, evaluator, validity, max_frontier=0
        ).run()
        assert capped.exact and uncapped.exact
        assert capped.best_group.boundaries == uncapped.best_group.boundaries
        assert capped.best_fitness == uncapped.best_fitness

    def test_max_frontier_validation(self):
        decomposition, validity = shared_decomposition("lenet5", "S")
        evaluator = FitnessEvaluator(decomposition, batch_size=1, mode=FitnessMode.EDP)
        with pytest.raises(ValueError, match="max_frontier"):
            DPOptimalSearch(decomposition, evaluator, validity, max_frontier=1)
        # 0 is the documented "uncapped" setting
        DPOptimalSearch(decomposition, evaluator, validity, max_frontier=0).run()

    def test_tight_cap_thins_and_reports_inexact(self):
        decomposition, validity = shared_decomposition("mobilenet_v1", "S")
        evaluator = FitnessEvaluator(decomposition, batch_size=4, mode=FitnessMode.EDP)
        search = DPOptimalSearch(decomposition, evaluator, validity, max_frontier=2)
        result = search.run()
        # mobilenet's real frontiers exceed 2 states, so thinning must engage
        assert max(search.frontier_sizes) > 2
        assert not result.exact
