"""Tests for repro.core.fitness: fitness evaluation and caching."""

import pytest

from repro.core.baselines import greedy_partition, layerwise_partition
from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.core.partition import PartitionGroup


class TestEvaluator:
    def test_group_fitness_is_sum_of_partitions(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        evaluator = FitnessEvaluator(d, batch_size=4)
        group = greedy_partition(d)
        evaluation = evaluator.evaluate(group)
        assert evaluation.fitness == pytest.approx(sum(evaluation.partition_fitness))
        assert len(evaluation.partition_fitness) == group.num_partitions

    def test_latency_mode_fitness_equals_latency(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        evaluator = FitnessEvaluator(d, batch_size=4, mode=FitnessMode.LATENCY)
        evaluation = evaluator.evaluate(greedy_partition(d))
        assert evaluation.fitness == pytest.approx(evaluation.total_latency_ns)

    def test_edp_mode_differs_from_latency_mode(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        group = greedy_partition(d)
        lat = FitnessEvaluator(d, batch_size=4, mode=FitnessMode.LATENCY).evaluate(group)
        edp = FitnessEvaluator(d, batch_size=4, mode=FitnessMode.EDP).evaluate(group)
        assert lat.fitness != pytest.approx(edp.fitness)

    def test_cache_reuses_spans(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        evaluator = FitnessEvaluator(d, batch_size=2)
        group = greedy_partition(d)
        evaluator.evaluate(group)
        first_size = evaluator.cache_size
        evaluator.evaluate(group)
        assert evaluator.cache_size == first_size
        assert first_size == group.num_partitions

    def test_estimates_positive(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        evaluator = FitnessEvaluator(d, batch_size=1)
        evaluation = evaluator.evaluate(layerwise_partition(d))
        assert all(f > 0 for f in evaluation.partition_fitness)
        assert evaluation.total_energy_pj > 0
        assert evaluation.edp > 0

    def test_bigger_batch_longer_total_latency(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        group = greedy_partition(d)
        small = FitnessEvaluator(d, batch_size=1).evaluate(group)
        large = FitnessEvaluator(d, batch_size=16).evaluate(group)
        assert large.total_latency_ns > small.total_latency_ns
        # ... but throughput (samples per time) improves
        assert 16 / large.total_latency_ns > 1 / small.total_latency_ns

    def test_invalid_batch_size(self, resnet18_decomposition_m):
        with pytest.raises(ValueError):
            FitnessEvaluator(resnet18_decomposition_m, batch_size=0)

    def test_single_partition_vs_split_changes_fitness(self, squeezenet_decomposition_s):
        d = squeezenet_decomposition_s
        evaluator = FitnessEvaluator(d, batch_size=4)
        single = evaluator.evaluate(PartitionGroup.single_partition(d))
        split = evaluator.evaluate(
            PartitionGroup.from_boundaries(d, [d.num_units // 2, d.num_units])
        )
        assert single.fitness != pytest.approx(split.fitness)
