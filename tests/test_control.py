"""Tests for the self-healing control plane (:mod:`repro.serve.control`).

Covers the :class:`ControlConfig` surface, the pure helpers (nearest-rank
percentile, the plan re-placement solve), the :class:`Controller` decision
logic against hand-built workers, and the four actuators end to end inside
the simulator: failure detection + quarantine scored against injected
ground truth, hedged requests (with the request-conservation invariant),
the SLO-driven autoscaler, and plan re-placement.  Controller-off
bit-identity against the pre-control simulator is pinned separately in
``tests/test_serve.py``.
"""

import dataclasses

import pytest

from repro.serve import (
    COLD_PLAN,
    ControlConfig,
    Controller,
    FaultTolerance,
    Fleet,
    PlanCache,
    PoissonTraffic,
    ServingSimulator,
    fleet_capacity_rps,
    parse_inject,
    place_plans,
)
from repro.serve.control import percentile
from repro.serve.fleet import ChipWorker

BATCHES = (1, 2, 4, 8)


def _control_run(control, faults=None, ft=None, fleet_spec="M:3",
                 model="squeezenet", requests=80, seed=0, policy="latency",
                 max_wait_us=100.0, rate_scale=0.8, slos=None,
                 switch_cost=False, simulator_out=None):
    cache = PlanCache(optimizer="dp")
    fleet = Fleet.from_spec(fleet_spec)
    cache.warmup([model], fleet.chip_names, BATCHES)
    rate = rate_scale * fleet_capacity_rps(cache, fleet, (model,), BATCHES)
    traffic = PoissonTraffic(model, num_requests=requests, seed=seed,
                             rate_rps=rate)
    simulator = ServingSimulator(fleet, cache, policy=policy,
                                 batch_sizes=BATCHES, max_wait_us=max_wait_us,
                                 switch_cost=switch_cost, slos=slos,
                                 faults=faults, fault_tolerance=ft,
                                 control=control)
    if simulator_out is not None:
        simulator_out.append(simulator)
    return simulator.run(traffic.generate(), traffic_info=traffic.describe())


def _conserved(report):
    return (report.completed + report.shed + report.timeouts + report.lost
            == report.num_requests)


# ----------------------------------------------------------------------
# ControlConfig surface
# ----------------------------------------------------------------------
class TestControlConfig:
    def test_defaults_inactive(self):
        config = ControlConfig()
        assert config.interval_us == 0.0
        assert not config.active

    def test_interval_activates(self):
        assert ControlConfig(interval_us=100.0).active

    @pytest.mark.parametrize("kwargs", [
        {"interval_us": -1.0},
        {"quarantine_after": 0},
        {"straggler_ratio": 1.0},
        {"straggler_ratio": 0.5},
        {"probation_us": 0.0},
        {"hedge_after_pct": -1.0},
        {"hedge_after_pct": 100.0},
        {"hedge_min_samples": 0},
        {"min_chips": 0},
        {"min_chips": 4, "max_chips": 2},
        {"scale_up_below": 0.0},
        {"scale_up_below": 1.5},
        {"scale_up_depth": 0.0},
        {"scale_down_util": 1.0},
        {"cooldown_us": -1.0},
        {"window": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ControlConfig(**kwargs)

    def test_frozen(self):
        config = ControlConfig(interval_us=100.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.interval_us = 50.0

    def test_cold_plan_never_matches_a_real_plan(self):
        cache = PlanCache(optimizer="dp")
        plan = cache.get("squeezenet", "S", 1)
        assert COLD_PLAN != plan.key


# ----------------------------------------------------------------------
# Pure helpers
# ----------------------------------------------------------------------
class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 75) == 30.0
        assert percentile(values, 99) == 40.0
        # rank never falls below 1, even at q=0
        assert percentile(values, 0) == 10.0

    def test_single_sample(self):
        assert percentile([7.0], 95) == 7.0


class TestPlacePlans:
    PRICES = {  # (chip, model) -> warm service price
        (0, "a"): 10.0, (0, "b"): 50.0,
        (1, "a"): 40.0, (1, "b"): 20.0,
    }

    def price(self, chip, model):
        return self.PRICES[(chip, model)]

    def test_exact_solve_covers_both_models(self):
        assignment = place_plans(
            [0, 1], ["a", "b"], {"a": 1.0, "b": 1.0},
            self.price, miss=lambda m: 1000.0)
        # covering both beats doubling up on either chip's favourite
        assert assignment == {0: "a", 1: "b"}

    def test_weights_steer_the_assignment(self):
        # model "a" dominates traffic and chip 1 runs it much faster:
        # both chips pin "a" (chip 1's price wins the cover), "b" eats
        # its miss price instead of occupying a chip
        prices = {(0, "a"): 10.0, (0, "b"): 50.0,
                  (1, "a"): 2.0, (1, "b"): 50.0}
        assignment = place_plans(
            [0, 1], ["a", "b"], {"a": 100.0, "b": 1.0},
            lambda c, m: prices[(c, m)], miss=lambda m: 30.0)
        assert assignment == {0: "a", 1: "a"}

    def test_empty_inputs(self):
        assert place_plans([], ["a"], {}, self.price, lambda m: 0.0) == {}
        assert place_plans([0], [], {}, self.price, lambda m: 0.0) == {}

    def test_greedy_fallback_is_deterministic_and_covers(self):
        # 2 models on 13 chips = 8192 assignments > the exhaustive budget
        chips = list(range(13))
        models = ["a", "b"]
        weights = {"a": 5.0, "b": 3.0}

        def price(chip, model):
            return 10.0 + chip + (5.0 if model == "b" else 0.0)

        first = place_plans(chips, models, weights, price, lambda m: 100.0)
        second = place_plans(chips, models, weights, price, lambda m: 100.0)
        assert first == second
        assert set(first) == set(chips)
        assert set(first.values()) == {"a", "b"}


# ----------------------------------------------------------------------
# Controller decision logic against hand-built workers
# ----------------------------------------------------------------------
def _workers(n, **overrides):
    return [ChipWorker(index=i, chip_name="M", **overrides) for i in range(n)]


class TestControllerDecisions:
    def test_stalled_completion_quarantines(self):
        ctrl = Controller(ControlConfig(interval_us=100.0))
        workers = _workers(2)
        ctrl.note_dispatch(0, "m", 4, completion_ns=1000.0, epoch=0)
        workers[0].up = False  # the chip died mid-batch
        assert ctrl.assess(2000.0, workers)
        assert 0 in ctrl.blocked
        assert ctrl.detections == ctrl.true_detections == 1
        assert ctrl.false_detections == 0

    def test_epoch_move_scores_true_even_after_recovery(self):
        # the chip died and already recovered by the tick — the moved
        # epoch still proves the dispatched batch was killed
        ctrl = Controller(ControlConfig(interval_us=100.0))
        workers = _workers(1)
        ctrl.note_dispatch(0, "m", 4, completion_ns=1000.0, epoch=0)
        workers[0].epoch = 1  # failure bumped it; chip is up again
        assert ctrl.assess(2000.0, workers)
        assert ctrl.true_detections == 1

    def test_healthy_stall_scores_false_positive(self):
        ctrl = Controller(ControlConfig(interval_us=100.0))
        workers = _workers(1)
        ctrl.note_dispatch(0, "m", 4, completion_ns=1000.0, epoch=0)
        # chip is up, same epoch: the controller still quarantines on the
        # missing completion, but truth scores it a false positive
        assert ctrl.assess(2000.0, workers)
        assert ctrl.false_detections == 1

    def test_straggler_needs_consecutive_strikes(self):
        ctrl = Controller(ControlConfig(interval_us=100.0, quarantine_after=2))
        workers = _workers(3)
        workers[0].latency_factor = 4.0
        ctrl.note_completion(0, 4.0)  # far above the 1.0 fleet median
        ctrl.note_completion(1, 1.0)
        ctrl.note_completion(2, 1.0)
        assert not ctrl.assess(1000.0, workers)  # first strike only
        assert ctrl.assess(2000.0, workers)      # second strike quarantines
        assert 0 in ctrl.blocked
        assert ctrl.true_detections == 1

    def test_probation_readmits_and_doubles_on_flap(self):
        config = ControlConfig(interval_us=100.0, probation_us=1000.0)
        ctrl = Controller(config)
        workers = _workers(1)
        ctrl._quarantine(0, now=0.0, genuine=True)
        first_probation = ctrl.health_for(0).quarantined_until
        assert first_probation == pytest.approx(1_000_000.0)
        assert not ctrl.assess(first_probation - 1.0, workers)  # still serving
        assert ctrl.assess(first_probation, workers)
        assert 0 not in ctrl.blocked
        assert ctrl.readmissions == 1
        # flap: the second quarantine's probation is twice as long
        ctrl._quarantine(0, now=first_probation, genuine=True)
        assert ctrl.health_for(0).quarantined_until == \
            pytest.approx(first_probation + 2_000_000.0)

    def test_scale_up_on_bad_attainment(self):
        config = ControlConfig(interval_us=100.0, autoscale=True,
                               min_chips=1, max_chips=4)
        ctrl = Controller(config)
        for _ in range(10):
            ctrl.note_request(1000.0, slo_ok=False)
        assert ctrl.scale_decision(0.0, _workers(2), queued=3) == +1

    def test_scale_respects_bounds_and_cooldown(self):
        config = ControlConfig(interval_us=100.0, autoscale=True,
                               min_chips=1, max_chips=2, cooldown_us=1000.0)
        ctrl = Controller(config)
        for _ in range(10):
            ctrl.note_request(1000.0, slo_ok=False)
        assert ctrl.scale_decision(0.0, _workers(2), queued=3) == 0  # at max
        workers = _workers(1)
        assert ctrl.scale_decision(0.0, workers, queued=3) == +1
        ctrl.last_scale_ns = 0.0
        assert ctrl.scale_decision(500_000.0, workers, queued=3) == 0  # cooling
        assert ctrl.scale_decision(1_000_000.0, workers, queued=3) == +1

    def test_scale_down_needs_idle_fleet_and_healthy_slo(self):
        config = ControlConfig(interval_us=100.0, autoscale=True,
                               min_chips=1, max_chips=4, scale_down_util=0.3)
        ctrl = Controller(config)
        workers = _workers(2)
        for _ in range(10):
            ctrl.note_request(1000.0, slo_ok=True)
            ctrl.update_utilisation(1000.0, workers)  # everyone idle
        assert ctrl.scale_decision(0.0, workers, queued=0) == -1
        assert ctrl.scale_decision(0.0, workers, queued=5) == 0  # backlog
        assert ctrl.scale_decision(0.0, _workers(1), queued=0) == 0  # at min

    def test_emergency_scale_up_when_nothing_can_serve(self):
        config = ControlConfig(interval_us=100.0, autoscale=True, max_chips=4)
        ctrl = Controller(config)
        workers = _workers(2)
        ctrl.blocked.update({0, 1})
        assert ctrl.scale_decision(0.0, workers, queued=1) == +1

    def test_preferred_batch_tracks_the_dispatch_mix(self):
        ctrl = Controller(ControlConfig(interval_us=100.0))
        assert ctrl.preferred_batch("m", fallback=4) == 4
        for _ in range(3):
            ctrl.note_dispatch(0, "m", 8, completion_ns=1.0)
        ctrl.note_dispatch(0, "m", 2, completion_ns=1.0)
        assert ctrl.preferred_batch("m", fallback=4) == 8


# ----------------------------------------------------------------------
# Failure detection + quarantine, end to end
# ----------------------------------------------------------------------
class TestDetectionEndToEnd:
    FAULTS = [parse_inject("chip_fail@1000:chip=0,until=20000")]

    def test_chip_death_is_detected_and_scored_true(self):
        report = _control_run(
            ControlConfig(interval_us=200.0),
            faults=self.FAULTS, ft=FaultTolerance(max_retries=2))
        control = report.control
        assert control["ticks"] > 0
        assert control["detections"] >= 1
        assert control["true_detections"] >= 1
        assert control["quarantines"] >= 1
        assert control["detections"] == \
            control["true_detections"] + control["false_detections"]
        assert _conserved(report)

    def test_recovered_chip_is_readmitted_and_serves_again(self):
        report = _control_run(
            ControlConfig(interval_us=200.0, probation_us=500.0),
            faults=self.FAULTS, ft=FaultTolerance(max_retries=2),
            requests=160, rate_scale=0.6)
        assert report.control["readmissions"] >= 1
        # after probation the chip takes work again
        assert report.per_chip[0]["requests"] > 0

    def test_quarantine_routes_around_the_straggler(self):
        faults = [parse_inject("straggler@0:chip=0,factor=6")]
        plain = _control_run(None, faults=faults, requests=200,
                             ft=FaultTolerance(max_retries=1), policy="fifo")
        healed = _control_run(
            ControlConfig(interval_us=200.0, probation_us=50_000.0),
            faults=faults, requests=200,
            ft=FaultTolerance(max_retries=1), policy="fifo")
        assert healed.control["quarantines"] >= 1
        assert healed.control["true_detections"] >= 1
        # with the straggler drained, tail latency improves materially
        assert healed.latency_ms["p99"] < plain.latency_ms["p99"]

    def test_clean_run_raises_no_false_alarms(self):
        report = _control_run(ControlConfig(interval_us=200.0))
        assert report.control["detections"] == 0
        assert report.control["quarantines"] == 0
        assert report.completed == report.num_requests


# ----------------------------------------------------------------------
# Hedged requests
# ----------------------------------------------------------------------
class TestHedging:
    CONFIG = ControlConfig(interval_us=200.0, hedge_after_pct=70.0,
                           hedge_min_samples=8)
    FAULTS = [parse_inject("straggler@0:chip=0,factor=6")]

    def _run(self, seed=0):
        return _control_run(self.CONFIG, faults=self.FAULTS,
                            ft=FaultTolerance(max_retries=1), policy="fifo",
                            seed=seed, requests=120)

    def test_hedges_fire_and_win(self):
        report = self._run()
        control = report.control
        assert control["hedges"] >= 1
        assert control["hedges_won"] >= 1
        assert control["hedges_won"] + control["hedges_wasted"] \
            <= control["hedges"]

    def test_hedges_do_not_inflate_fate_counters(self):
        # the conservation invariant with hedging on: every offered
        # request has exactly one fate, duplicates notwithstanding
        report = self._run()
        assert _conserved(report)
        assert report.completed <= report.num_requests

    def test_fixed_seed_hedged_run_replays_bit_identically(self):
        first = self._run()
        second = self._run()
        assert first.determinism_dict() == second.determinism_dict()
        assert first.control == second.control

    def test_different_seed_changes_the_run(self):
        assert self._run().determinism_dict() != \
            self._run(seed=3).determinism_dict()

    def test_hedging_cuts_tail_latency_under_stragglers(self):
        unhedged = _control_run(
            ControlConfig(interval_us=200.0), faults=self.FAULTS,
            ft=FaultTolerance(max_retries=1), policy="fifo", requests=120)
        hedged = self._run()
        assert hedged.latency_ms["p99"] <= unhedged.latency_ms["p99"]


# ----------------------------------------------------------------------
# SLO-driven autoscaler
# ----------------------------------------------------------------------
class TestAutoscale:
    def test_overload_grows_the_fleet(self):
        simulators = []
        report = _control_run(
            ControlConfig(interval_us=200.0, autoscale=True,
                          min_chips=2, max_chips=6, cooldown_us=500.0),
            fleet_spec="M:2", rate_scale=2.5, requests=160,
            slos={"squeezenet": 6.0}, ft=FaultTolerance(max_retries=1),
            simulator_out=simulators)
        control = report.control
        assert control["scale_ups"] >= 1
        assert control["base_chips"] == 2
        assert control["final_chips"] > 2
        assert control["final_chips"] <= 6
        # the fleet object really grew (retired chips stay listed)
        assert len(simulators[0].fleet.workers) >= control["final_chips"]
        assert _conserved(report)

    def test_autoscaling_improves_attainment(self):
        kwargs = dict(fleet_spec="M:2", rate_scale=2.5, requests=160,
                      slos={"squeezenet": 6.0},
                      ft=FaultTolerance(max_retries=1))
        static = _control_run(ControlConfig(interval_us=200.0), **kwargs)
        scaled = _control_run(
            ControlConfig(interval_us=200.0, autoscale=True,
                          min_chips=2, max_chips=6, cooldown_us=500.0),
            **kwargs)
        assert scaled.slo["squeezenet"]["attainment"] > \
            static.slo["squeezenet"]["attainment"]

    def test_cold_chips_pay_the_plan_switch(self):
        report = _control_run(
            ControlConfig(interval_us=200.0, autoscale=True,
                          min_chips=2, max_chips=6, cooldown_us=500.0,
                          replace_plans=False),
            fleet_spec="M:2", rate_scale=2.5, requests=160,
            slos={"squeezenet": 6.0}, ft=FaultTolerance(max_retries=1),
            switch_cost=True)
        assert report.control["scale_ups"] >= 1
        # an autoscaled chip starts on COLD_PLAN: its first dispatch is a
        # plan switch even in a single-model run
        grown = report.per_chip[2:]
        assert any(row["plan_switches"] >= 1 for row in grown
                   if row["requests"] > 0)

    def test_idle_fleet_scales_down_within_bounds(self):
        report = _control_run(
            ControlConfig(interval_us=200.0, autoscale=True,
                          min_chips=1, max_chips=4, cooldown_us=500.0,
                          scale_down_util=0.5),
            fleet_spec="M:4", rate_scale=0.1, requests=80,
            ft=FaultTolerance(max_retries=1))
        control = report.control
        assert control["scale_downs"] >= 1
        assert control["final_chips"] >= 1
        assert _conserved(report)

    def test_rerunning_the_simulator_resets_the_fleet(self):
        simulators = []
        config = ControlConfig(interval_us=200.0, autoscale=True,
                               min_chips=2, max_chips=6, cooldown_us=500.0)
        first = _control_run(config, fleet_spec="M:2", rate_scale=2.5,
                             requests=160, slos={"squeezenet": 6.0},
                             ft=FaultTolerance(max_retries=1),
                             simulator_out=simulators)
        assert first.control["scale_ups"] >= 1
        traffic = PoissonTraffic("squeezenet", num_requests=160, seed=0,
                                 rate_rps=first.offered_rps)
        second = simulators[0].run(traffic.generate(),
                                   traffic_info=traffic.describe())
        # the autoscaled chips of the first run were truncated away
        assert second.control["base_chips"] == 2


# ----------------------------------------------------------------------
# Plan re-placement
# ----------------------------------------------------------------------
class TestReplacement:
    def test_quarantine_triggers_replacement(self):
        report = _control_run(
            ControlConfig(interval_us=200.0),
            faults=[parse_inject("chip_fail@1000:chip=0,until=20000")],
            ft=FaultTolerance(max_retries=2), switch_cost=True)
        control = report.control
        assert control["quarantines"] >= 1
        assert control["replacements"] >= 1
        assert control["replacement_ms"] > 0.0

    def test_replace_plans_off_suppresses_rounds(self):
        report = _control_run(
            ControlConfig(interval_us=200.0, replace_plans=False),
            faults=[parse_inject("chip_fail@1000:chip=0,until=20000")],
            ft=FaultTolerance(max_retries=2), switch_cost=True)
        assert report.control["quarantines"] >= 1
        assert report.control["replacements"] == 0
        assert report.control["replacement_ms"] == 0.0

    def test_replacement_without_switch_cost_is_free(self):
        # without switch-cost modelling there is no WR to pre-pay, so the
        # controller skips re-placement entirely
        report = _control_run(
            ControlConfig(interval_us=200.0),
            faults=[parse_inject("chip_fail@1000:chip=0,until=20000")],
            ft=FaultTolerance(max_retries=2), switch_cost=False)
        assert report.control["replacements"] == 0


# ----------------------------------------------------------------------
# Report shape, rendering, serialization
# ----------------------------------------------------------------------
class TestControlReport:
    def test_controller_off_keeps_legacy_shape(self):
        report = _control_run(None)
        assert report.control == {}
        assert "control" not in report.as_dict()

    def test_inactive_config_matches_no_config(self):
        off = _control_run(None)
        default = _control_run(ControlConfig())
        assert off.determinism_dict() == default.determinism_dict()
        assert "control" not in default.as_dict()

    def test_control_block_in_determinism_dict(self):
        report = _control_run(ControlConfig(interval_us=200.0))
        data = report.determinism_dict()
        assert data["control"]["ticks"] == report.control["ticks"]
        assert data["control"]["interval_us"] == 200.0

    def test_render_and_round_trip(self, tmp_path):
        from repro.serialization import dump_serving_report, load_result_dict
        from repro.sim.report import render_serving_report

        report = _control_run(
            ControlConfig(interval_us=200.0, hedge_after_pct=70.0,
                          autoscale=True, min_chips=2, max_chips=6,
                          cooldown_us=500.0),
            faults=[parse_inject("straggler@0:chip=0,factor=6")],
            ft=FaultTolerance(max_retries=1), policy="fifo",
            rate_scale=1.5, requests=160, slos={"squeezenet": 8.0},
            switch_cost=True)
        text = render_serving_report(report)
        assert "control plane" in text
        assert "quarantines" in text
        path = str(tmp_path / "control.json")
        dump_serving_report(report, path)
        loaded = load_result_dict(path)
        assert loaded == report.as_dict()
        assert loaded["control"]["ticks"] == report.control["ticks"]

    def test_self_healing_beats_uncontrolled_attainment(self):
        # the headline acceptance scenario: chip death + straggler under
        # load, identical traffic — the controller materially lifts SLO
        # attainment by routing around the sick chips and growing capacity
        kwargs = dict(
            fleet_spec="M:3", rate_scale=1.0, requests=200,
            faults=[parse_inject("chip_fail@1000:chip=0,until=25000"),
                    parse_inject("straggler@500:chip=1,factor=6")],
            ft=FaultTolerance(max_retries=2, timeout_us=30_000.0),
            slos={"squeezenet": 10.0},
        )
        plain = _control_run(None, **kwargs)
        healed = _control_run(
            ControlConfig(interval_us=200.0, hedge_after_pct=80.0,
                          autoscale=True, min_chips=2, max_chips=6,
                          cooldown_us=500.0, probation_us=5000.0),
            **kwargs)
        assert _conserved(plain) and _conserved(healed)
        assert healed.slo["squeezenet"]["attainment"] >= \
            plain.slo["squeezenet"]["attainment"] + 0.1
