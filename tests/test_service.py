"""Tests of the live observatory (:mod:`repro.serve.service`).

Four contracts: the broadcast hub never blocks a producer on a slow
subscriber (bounded queues, counted drops); ``/metrics`` emits valid
Prometheus text exposition (parsed back with a strict grammar check);
mid-run commands land at deterministic points in the simulator's event
order, are recorded applied-or-rejected, and stay out of the determinism
dict; and the service end to end is **hermetic** — an ephemeral port, a
tiny scenario, at least two live windows over a real WebSocket, the final
report, and a clean shutdown, all event-driven with no sleeps.
"""

import json
import re

import pytest

from repro.serve import (
    CommandQueue,
    ControlConfig,
    FaultTolerance,
    Fleet,
    PlanCache,
    PoissonTraffic,
    ServingSimulator,
    TelemetryConfig,
    fleet_capacity_rps,
)
from repro.serve.service import (
    BroadcastHub,
    ServerThread,
    WebSocketClient,
    render_prometheus,
    request_json,
    validate_spec,
)

BATCHES = (1, 2, 4)


# ----------------------------------------------------------------------
# broadcast hub: bounded fan-out
# ----------------------------------------------------------------------
class TestBroadcastHub:
    def test_fanout_preserves_order(self):
        hub = BroadcastHub(maxsize=8)
        a = hub.subscribe("t")
        b = hub.subscribe("t")
        for k in range(3):
            assert hub.publish("t", {"k": k}) == 2
        for subscription in (a, b):
            got = [subscription.queue.get_nowait() for _ in range(3)]
            assert [m["k"] for m in got] == [0, 1, 2]
        assert hub.publish("other", {}) == 0  # no subscribers, no error

    def test_slow_consumer_drops_are_counted_not_blocking(self):
        hub = BroadcastHub(maxsize=2)
        slow = hub.subscribe("t")
        fast = hub.subscribe("t")
        for k in range(5):
            hub.publish("t", {"k": k})
            fast.queue.get_nowait()  # fast keeps up; slow never reads
        # slow kept the 2 oldest messages and dropped the other 3
        assert slow.dropped == 3
        assert [slow.queue.get_nowait()["k"] for _ in range(2)] == [0, 1]
        assert fast.dropped == 0
        assert hub.stats()["dropped"] == 3  # live drops visible in stats
        hub.unsubscribe(slow)
        # the total survives the subscriber going away
        assert hub.dropped == 3
        assert hub.stats() == {"published": 5, "dropped": 3,
                               "subscribers": 1}

    def test_close_topic_delivers_sentinel(self):
        hub = BroadcastHub(maxsize=4)
        subscription = hub.subscribe("t")
        hub.publish("t", {"k": 0})
        hub.close_topic("t")
        assert subscription.queue.get_nowait() == {"k": 0}
        assert subscription.queue.get_nowait() is None

    def test_unsubscribe_twice_is_harmless(self):
        hub = BroadcastHub()
        subscription = hub.subscribe("t")
        hub.unsubscribe(subscription)
        hub.unsubscribe(subscription)
        assert hub.subscriber_count() == 0


# ----------------------------------------------------------------------
# Prometheus text exposition: strict grammar check
# ----------------------------------------------------------------------
_TYPE_LINE = re.compile(
    r"# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)\Z")
_SAMPLE_LINE = re.compile(
    r"([a-zA-Z_:][a-zA-Z0-9_:]*)"            # metric name
    r"(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*="      # optional label pairs
    r'"(?:[^"\\]|\\.)*",?)*)\})?'
    r" (-?(?:[0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?|\+Inf|NaN))\Z")


def parse_exposition(text):
    """Parse exposition text strictly; returns {family: (kind, samples)}
    where samples is a list of (name, labels-dict, float) tuples."""
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    current = None
    for line in text.splitlines():
        typed = _TYPE_LINE.match(line)
        if typed:
            name, kind = typed.groups()
            assert name not in families, f"duplicate TYPE for {name}"
            families[name] = (kind, [])
            current = name
            continue
        sampled = _SAMPLE_LINE.match(line)
        assert sampled, f"line outside the exposition grammar: {line!r}"
        name, raw_labels, value = sampled.groups()
        base = re.sub(r"_(bucket|sum|count)\Z", "", name)
        family = name if name in families else base
        assert family in families, f"sample before its TYPE: {line!r}"
        assert family == current, f"family interleaving at: {line!r}"
        labels = dict(re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]'
                                 r'|\\.)*)"', raw_labels or ""))
        families[family][1].append((name, labels, float(value)))
    return families


class TestPrometheusExposition:
    def _snapshot(self):
        return {
            "counters": {"arrivals": 12, "completions": 10},
            "gauges": {"fleet": {"chips": 2, "name": "M:2"},
                       "plan_cache": {"hits": 5, "size": 3}},
            "histograms": {
                "latency_ns": {"count": 4, "mean": 6.0, "max": 12.0,
                               "p50": 6.0, "p95": 12.0, "p99": 12.0,
                               "bins": {"2": 3, "3": 1}},
            },
        }

    def test_grammar_and_families(self):
        text = render_prometheus(
            {"s1": self._snapshot()},
            {"scenarios_completed": 1, "published": 7})
        families = parse_exposition(text)
        assert families["repro_serve_service_published"][0] == "gauge"
        kind, samples = families["repro_serve_events_total"]
        assert kind == "counter"
        assert ({label["event"] for _, label, _ in samples}
                == {"arrivals", "completions"})
        assert all(label["job"] == "s1" for _, label, _ in samples)

    def test_counter_families_end_in_total(self):
        text = render_prometheus({"s1": self._snapshot()}, {})
        for name, (kind, _) in parse_exposition(text).items():
            if kind == "counter":
                assert name.endswith("_total"), name

    def test_histogram_buckets_cumulative_and_consistent(self):
        text = render_prometheus({"s1": self._snapshot()}, {})
        _, samples = parse_exposition(text)["repro_serve_latency_ns"]
        buckets = [(label["le"], value) for name, label, value in samples
                   if name.endswith("_bucket")]
        # log2 bin b covers [2^b, 2^(b+1)): bins 2 and 3 -> le 8 and 16
        assert [b[0] for b in buckets] == ["8.0", "16.0", "+Inf"]
        counts = [b[1] for b in buckets]
        assert counts == sorted(counts)  # cumulative, monotone
        count = next(v for n, _, v in samples if n.endswith("_count"))
        assert counts[-1] == count == 4.0
        total = next(v for n, _, v in samples if n.endswith("_sum"))
        assert total == pytest.approx(6.0 * 4)  # mean * count

    def test_non_numeric_gauges_and_label_escapes(self):
        snapshot = {"gauges": {"fleet": {"spec": "M:2", "chips": 2}}}
        text = render_prometheus({'s"1\n': snapshot}, {})
        families = parse_exposition(text)
        _, samples = families["repro_serve_gauge"]
        # the string-valued gauge is skipped, the numeric one kept, and
        # the hostile job id arrives escaped but intact
        assert len(samples) == 1
        assert samples[0][1]["key"] == "chips"
        assert samples[0][1]["job"] == 's\\"1\\n'

    def test_empty_inputs_render_empty_exposition(self):
        assert render_prometheus({}, {}) == "\n"


# ----------------------------------------------------------------------
# scenario spec validation
# ----------------------------------------------------------------------
class TestScenarioSpec:
    def test_defaults_fill_in(self):
        spec = validate_spec({})
        assert spec.models == ["resnet18"]
        assert spec.traffic_kind == "poisson"
        # the observatory always streams: a default window applies
        assert spec.telemetry.timeline_interval_us > 0

    @pytest.mark.parametrize("raw, fragment", [
        ({"models": ["nosuchnet"]}, "unknown model"),
        ({"model": ["resnet18"]}, "unknown spec key"),
        ({"traffic": {"kind": "trace"}}, "not serveable"),
        ({"traffic": {"kind": "poisson", "rps": 10}}, "unknown traffic"),
        ({"traffic": {"requests": 0}}, "must be positive"),
        ({"batches": [0]}, "positive integers"),
        ({"slo": {"vgg16": 5.0}}, "slo names unknown model"),
        ({"control": {"autoscale": "4"}}, "MIN:MAX"),
        ({"control": {"hedge_pct": 90}}, "unknown control key"),
        ({"fault_tolerance": {"retries": 2}},
         "unknown fault_tolerance key"),
        ({"telemetry": {"trace_each": 5}}, "unknown telemetry key"),
        ({"inject": ["chip_fail@0:chip=9"]}, "chip"),
        ({"mode": "both"}, "mode must be"),
    ])
    def test_bad_specs_raise_presentable_errors(self, raw, fragment):
        with pytest.raises(ValueError, match=fragment):
            validate_spec(raw)

    def test_autoscale_string_expands(self):
        spec = validate_spec({"control": {"interval_us": 200,
                                          "autoscale": "1:3"}})
        assert spec.control.autoscale
        assert (spec.control.min_chips, spec.control.max_chips) == (1, 3)

    def test_closed_loop_knobs(self):
        spec = validate_spec({"traffic": {"kind": "closed", "clients": 6,
                                          "requests": 30}})
        assert spec.traffic_kwargs["clients"] == 6
        assert spec.traffic_kwargs["num_requests"] == 30


# ----------------------------------------------------------------------
# mid-run commands: deterministic application in the event order
# ----------------------------------------------------------------------
def _command_run(commands, control=False):
    """A small fault-aware run with ``commands`` pre-queued, so every
    command lands at the first event pop — a fixed, reproducible point."""
    model = "resnet18"
    fleet = Fleet.from_spec("M:2")
    cache = PlanCache(optimizer="dp")
    cache.warmup((model,), fleet.chip_names, BATCHES)
    rate = 0.8 * fleet_capacity_rps(cache, fleet, (model,), BATCHES)
    traffic = PoissonTraffic(model, num_requests=40, seed=5, rate_rps=rate)
    queue = CommandQueue()
    for command in commands:
        queue.put(command)
    simulator = ServingSimulator(
        fleet, cache, policy="latency", batch_sizes=BATCHES,
        max_wait_us=200.0,
        fault_tolerance=FaultTolerance(max_retries=2),
        control=(ControlConfig(interval_us=500.0) if control else None),
        telemetry=TelemetryConfig(timeline_interval_us=500.0),
    )
    report = simulator.run(traffic.generate(),
                           traffic_info=traffic.describe(),
                           commands=queue)
    return simulator, report


class TestMidRunCommands:
    def test_set_policy_applies_and_restores(self):
        simulator, report = _command_run([{"op": "set_policy",
                                           "policy": "fifo"}])
        (entry,) = report.commands
        assert entry["op"] == "set_policy"
        assert entry["status"] == "applied"
        assert entry["policy"] == "fifo"
        assert entry["t_ms"] >= 0.0
        # the construction-time policy is restored once the run ends
        assert report.policy == "latency"
        assert simulator.policy.name == "latency"

    def test_inject_fault_schedules_real_faults(self):
        _, report = _command_run(
            [{"op": "inject_fault", "spec": "chip_fail@100:chip=0"}])
        (entry,) = report.commands
        assert entry["status"] == "applied"
        assert entry["events"] >= 1
        assert report.failures >= 1  # the commanded fault actually struck

    def test_rejections_are_recorded_not_raised(self):
        _, report = _command_run([
            {"op": "autoscale_bounds", "min_chips": 1, "max_chips": 4},
            {"op": "set_policy", "policy": "nosuchpolicy"},
            {"op": "warp_time"},
            {"op": "inject_fault"},  # missing spec
        ])
        statuses = [entry["status"] for entry in report.commands]
        assert statuses == ["rejected"] * 4  # no control plane, bad args
        assert all("error" in entry for entry in report.commands)
        assert report.completed == report.num_requests  # run unharmed

    def test_autoscale_bounds_needs_and_updates_controller(self):
        simulator, report = _command_run(
            [{"op": "autoscale_bounds", "min_chips": 1, "max_chips": 2}],
            control=True)
        (entry,) = report.commands
        assert entry["status"] == "applied"
        assert (entry["min_chips"], entry["max_chips"]) == (1, 2)
        # the construction-time control config is restored after the run
        assert not simulator.control.autoscale

    def test_commands_block_in_dict_but_not_determinism(self):
        _, report = _command_run([{"op": "set_policy", "policy": "fifo"}])
        assert "commands" in report.as_dict()
        assert "commands" not in report.determinism_dict()
        _, plain = _command_run([])
        assert "commands" not in plain.as_dict()

    def test_commanded_run_with_same_schedule_is_reproducible(self):
        schedule = [{"op": "set_policy", "policy": "fifo"}]
        _, first = _command_run(schedule)
        _, second = _command_run(schedule)
        assert first.determinism_dict() == second.determinism_dict()
        assert first.as_dict()["commands"] == second.as_dict()["commands"]

    def test_drain_empties_fifo(self):
        queue = CommandQueue()
        queue.put({"op": "a"})
        queue.put({"op": "b"})
        assert [c["op"] for c in queue.drain()] == ["a", "b"]
        assert queue.drain() == []


# ----------------------------------------------------------------------
# the hermetic end-to-end smoke: real sockets, no sleeps
# ----------------------------------------------------------------------
#: tiny but multi-window: ~40 requests over 2 chips with a fine window
SMOKE_SPEC = {
    "models": ["resnet18"],
    "fleet": "M:2",
    "policy": "latency",
    "batches": [1, 2, 4],
    "seed": 7,
    "traffic": {"kind": "poisson", "requests": 40, "utilization": 0.8},
    "slo": {"resnet18": 12.0},
    "fault_tolerance": {"max_retries": 1},
    "telemetry": {"timeline_us": 300},
}


@pytest.fixture(scope="class")
def smoke(request):
    """One server + one streamed scenario, shared by the class below.

    Every wait is event-driven: the constructor returns once the port is
    bound, the WebSocket generator ends when the server closes the stream
    after the terminal report — no sleeps anywhere.
    """
    server = ServerThread(port=0)  # ephemeral port
    state = {"server": server, "host": server.host, "port": server.port}
    try:
        status, body = request_json(server.host, server.port, "POST",
                                    "/scenarios", SMOKE_SPEC)
        assert status == 201, body
        state["job_id"] = body["id"]
        client = WebSocketClient(server.host, server.port,
                                 f"/scenarios/{body['id']}/stream")
        state["messages"] = list(client.messages())
        client.close()
        yield state
    finally:
        server.stop()


@pytest.mark.usefixtures("smoke")
class TestServiceEndToEnd:
    def test_healthz(self, smoke):
        status, body = request_json(smoke["host"], smoke["port"], "GET",
                                    "/healthz")
        assert (status, body) == (200, {"ok": True})

    def test_stream_delivers_windows_then_terminal_report(self, smoke):
        kinds = [message["type"] for message in smoke["messages"]]
        assert kinds.count("window") >= 2
        assert kinds[-1] == "report"  # exactly one terminal message
        assert kinds.count("report") == 1
        assert all(message["job"] == smoke["job_id"]
                   for message in smoke["messages"])

    def test_streamed_windows_equal_report_timeline_byte_for_byte(
            self, smoke):
        windows = [message["data"] for message in smoke["messages"]
                   if message["type"] == "window"]
        report = smoke["messages"][-1]["data"]
        assert json.dumps(windows, sort_keys=True) == \
            json.dumps(report["timeline"], sort_keys=True)

    def test_report_endpoint_matches_streamed_report(self, smoke):
        status, body = request_json(
            smoke["host"], smoke["port"], "GET",
            f"/scenarios/{smoke['job_id']}/report")
        assert status == 200
        assert body["report"] == smoke["messages"][-1]["data"]
        assert body["report"]["completed"] > 0

    def test_status_and_listing(self, smoke):
        status, body = request_json(smoke["host"], smoke["port"], "GET",
                                    f"/scenarios/{smoke['job_id']}")
        assert status == 200
        assert body["state"] == "completed"
        assert body["windows"] >= 2
        status, body = request_json(smoke["host"], smoke["port"], "GET",
                                    "/scenarios")
        assert status == 200
        assert smoke["job_id"] in [job["id"] for job in body["scenarios"]]

    def test_rolling_timeline_endpoint(self, smoke):
        status, body = request_json(
            smoke["host"], smoke["port"], "GET",
            f"/scenarios/{smoke['job_id']}/timeline")
        assert status == 200
        report = smoke["messages"][-1]["data"]
        assert body["timeline"] == report["timeline"]

    def test_late_subscriber_replays_the_full_backlog(self, smoke):
        # the job is long done: a fresh WebSocket still sees every
        # window, every event and the terminal report, in order (hub
        # snapshots and status changes are live-only ephemera)
        client = WebSocketClient(smoke["host"], smoke["port"],
                                 f"/scenarios/{smoke['job_id']}/stream")
        replay = list(client.messages())
        client.close()
        durable = [m for m in smoke["messages"]
                   if m["type"] in ("window", "event", "report")]
        assert replay == durable
        assert replay[-1] == smoke["messages"][-1]

    def test_metrics_is_valid_exposition_with_job_data(self, smoke):
        status, text = request_json(smoke["host"], smoke["port"], "GET",
                                    "/metrics")
        assert status == 200
        families = parse_exposition(text)
        kind, samples = families["repro_serve_events_total"]
        assert kind == "counter"
        jobs = {label["job"] for _, label, _ in samples}
        assert smoke["job_id"] in jobs
        completions = next(
            value for _, label, value in samples
            if label["event"] == "completions"
            and label["job"] == smoke["job_id"])
        assert completions == 40.0
        # the latency histogram made it through as cumulative buckets
        _, hist = families["repro_serve_latency_ns"]
        assert any(name.endswith("_bucket") for name, _, _ in hist)
        _, service = families["repro_serve_service_scenarios_completed"]
        assert service[0][2] >= 1.0

    def test_commands_after_completion_conflict(self, smoke):
        status, body = request_json(
            smoke["host"], smoke["port"], "POST",
            f"/scenarios/{smoke['job_id']}/commands",
            {"op": "set_policy", "policy": "fifo"})
        assert status == 409

    def test_error_routes(self, smoke):
        host, port = smoke["host"], smoke["port"]
        assert request_json(host, port, "GET", "/nosuch")[0] == 404
        assert request_json(host, port, "GET", "/scenarios/zz")[0] == 404
        assert request_json(host, port, "DELETE", "/healthz")[0] == 405
        assert request_json(host, port, "PUT", "/scenarios")[0] == 405
        status, body = request_json(host, port, "POST", "/scenarios",
                                    {"models": ["nosuchnet"]})
        assert status == 400
        assert "unknown model" in body["error"]
        status, body = request_json(
            host, port, "POST",
            f"/scenarios/{smoke['job_id']}/commands", {"op": "warp"})
        assert status == 400
        assert "op must be one of" in body["error"]

    def test_bad_scenario_fails_job_not_service(self, smoke):
        # a spec that validates but cannot build: the job fails, the
        # service stays up, and the stream delivers the error terminally
        status, body = request_json(
            smoke["host"], smoke["port"], "POST", "/scenarios",
            dict(SMOKE_SPEC, fleet="M:1", control={"interval_us": 200,
                                                   "autoscale": "1:9"}))
        if status != 201:
            pytest.skip("autoscale bounds validated at submit")
        client = WebSocketClient(smoke["host"], smoke["port"],
                                 f"/scenarios/{body['id']}/stream")
        messages = list(client.messages())
        client.close()
        assert messages[-1]["type"] in ("report", "error")
        # whatever the outcome, the service still answers
        assert request_json(smoke["host"], smoke["port"], "GET",
                            "/healthz")[0] == 200
