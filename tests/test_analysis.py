"""Tests of the invariant linter (:mod:`repro.analysis`, ``repro lint``).

Every rule gets a paired good/bad fixture: the bad snippet fails without
the rule (each test asserts the specific rule id and line), the good
snippet pins the sanctioned idiom the rule must keep accepting.  On top
of the rules: inline suppression semantics, baseline round-trip and
staleness, the ``--format json`` schema, the ``--stats`` counters, and
the self-check — today's ``src/`` lints clean against the committed
baseline, which is the tier-1 teeth of the whole subsystem.
"""

import json
import os
import textwrap

import pytest

from repro.analysis import (
    ALL_RULES,
    Finding,
    find_baseline,
    iter_python_files,
    lint_file,
    lint_stats,
    load_baseline,
    path_matches,
    render_json,
    render_text,
    run_lint,
    save_baseline,
    scan_suppressions,
    select_rules,
)
from repro.analysis.rules.asyncsafety import BlockingAsyncRule
from repro.analysis.rules.envgate import EnvGateRule
from repro.analysis.rules.identity import IdentityKeyRule
from repro.analysis.rules.ordering import OrderedIterationRule
from repro.analysis.rules.purity import TelemetryPurityRule
from repro.analysis.rules.rng import UnseededRngRule
from repro.analysis.rules.sums import SequentialSumRule
from repro.analysis.rules.wallclock import WallClockRule

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint_snippet(tmp_path, rel_path, source, rules=ALL_RULES):
    """Write ``source`` at ``tmp_path/rel_path`` and lint that one file."""
    path = tmp_path / rel_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_file(str(path), rel_path, rules)


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------

class TestWallClockRule:
    def test_bad_time_time_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/sim/x.py", """\
            import time
            def stamp():
                return time.time()
            """, [WallClockRule])
        assert rule_ids(active) == ["wall-clock"]
        assert active[0].line == 3

    def test_bad_aliased_perf_counter_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/sim/x.py", """\
            from time import perf_counter as pc
            t = pc()
            """, [WallClockRule])
        assert rule_ids(active) == ["wall-clock"]

    def test_bad_datetime_now_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/sim/x.py", """\
            import datetime
            stamp = datetime.datetime.now()
            """, [WallClockRule])
        assert rule_ids(active) == ["wall-clock"]

    def test_good_simulated_time_clean(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/sim/x.py", """\
            def advance(clock, dt):
                return clock + dt
            """, [WallClockRule])
        assert active == []

    def test_benchmarks_excluded(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "benchmarks/run_bench.py", """\
            import time
            t0 = time.perf_counter()
            """, [WallClockRule])
        assert active == []


# ----------------------------------------------------------------------
# unseeded-rng
# ----------------------------------------------------------------------

class TestUnseededRngRule:
    def test_bad_global_numpy_draw_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            import numpy as np
            x = np.random.rand(3)
            """, [UnseededRngRule])
        assert rule_ids(active) == ["unseeded-rng"]

    def test_bad_unseeded_default_rng_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            import numpy as np
            rng = np.random.default_rng()
            """, [UnseededRngRule])
        assert rule_ids(active) == ["unseeded-rng"]

    def test_bad_stdlib_random_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            import random
            x = random.random()
            """, [UnseededRngRule])
        assert rule_ids(active) == ["unseeded-rng"]

    def test_good_seeded_default_rng_clean(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            import numpy as np
            rng = np.random.default_rng(123)
            seq = np.random.SeedSequence(7)
            r = np.random.Generator(np.random.PCG64(seq))
            """, [UnseededRngRule])
        assert active == []

    def test_good_generator_argument_draw_clean(self, tmp_path):
        # draws from a passed-in generator are the sanctioned idiom
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            def mutate(genome, rng):
                return rng.random() < 0.5
            """, [UnseededRngRule])
        assert active == []


# ----------------------------------------------------------------------
# ordered-iteration
# ----------------------------------------------------------------------

class TestOrderedIterationRule:
    def test_bad_set_literal_loop_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/x.py", """\
            for chip in {1, 2, 3}:
                print(chip)
            """, [OrderedIterationRule])
        assert rule_ids(active) == ["ordered-iteration"]

    def test_bad_set_call_comprehension_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/search/x.py", """\
            def collect(items):
                return [x for x in set(items)]
            """, [OrderedIterationRule])
        assert rule_ids(active) == ["ordered-iteration"]

    def test_bad_keys_iteration_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/perf/x.py", """\
            def walk(table):
                for k in table.keys():
                    print(k)
            """, [OrderedIterationRule])
        assert rule_ids(active) == ["ordered-iteration"]

    def test_good_sorted_iteration_clean(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/x.py", """\
            def drain(inflight, table):
                for req in sorted(inflight):
                    print(req)
                for k in table:
                    print(k)
            """, [OrderedIterationRule])
        assert active == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            for chip in {1, 2, 3}:
                print(chip)
            """, [OrderedIterationRule])
        assert active == []


# ----------------------------------------------------------------------
# identity-key
# ----------------------------------------------------------------------

class TestIdentityKeyRule:
    def test_bad_id_in_sort_key_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/sim/x.py", """\
            def order(events):
                return sorted(events, key=lambda e: id(e))
            """, [IdentityKeyRule])
        assert rule_ids(active) == ["identity-key"]

    def test_bad_hash_in_heap_tuple_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/sim/x.py", """\
            import heapq
            def push(heap, event):
                heapq.heappush(heap, (event.at, hash(event), event))
            """, [IdentityKeyRule])
        assert rule_ids(active) == ["identity-key"]

    def test_bad_id_in_list_sort_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/sim/x.py", """\
            def order(events):
                events.sort(key=lambda e: (e.at, id(e)))
            """, [IdentityKeyRule])
        assert rule_ids(active) == ["identity-key"]

    def test_good_stable_field_key_clean(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/sim/x.py", """\
            import heapq
            def push(heap, event):
                heapq.heappush(heap, (event.at, event.chip_index, event))
            def order(events):
                return sorted(events, key=lambda e: e.chip_index)
            """, [IdentityKeyRule])
        assert active == []

    def test_good_id_outside_ordering_clean(self, tmp_path):
        # id() as a cache key is fine — only ordering positions are flagged
        active, _ = lint_snippet(tmp_path, "repro/sim/x.py", """\
            def memo(cache, node):
                cache[id(node)] = node
            """, [IdentityKeyRule])
        assert active == []


# ----------------------------------------------------------------------
# sequential-sum
# ----------------------------------------------------------------------

class TestSequentialSumRule:
    def test_bad_np_sum_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            import numpy as np
            def fitness(parts):
                return np.sum(parts)
            """, [SequentialSumRule])
        assert rule_ids(active) == ["sequential-sum"]

    def test_bad_method_sum_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/perf/x.py", """\
            def total(spans):
                return spans.sum()
            """, [SequentialSumRule])
        assert rule_ids(active) == ["sequential-sum"]

    def test_bad_fsum_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/search/x.py", """\
            import math
            def total(parts):
                return math.fsum(parts)
            """, [SequentialSumRule])
        assert rule_ids(active) == ["sequential-sum"]

    def test_good_int_wrapped_count_clean(self, tmp_path):
        # the house idiom: int(...) documents "this is a count"
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            def live(mask):
                return int(mask.sum())
            """, [SequentialSumRule])
        assert active == []

    def test_good_python_sum_loop_clean(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            def fitness(parts):
                total = 0.0
                for part in parts:
                    total += part
                return total
            """, [SequentialSumRule])
        assert active == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/x.py", """\
            import numpy as np
            total = np.sum([1.0, 2.0])
            """, [SequentialSumRule])
        assert active == []


# ----------------------------------------------------------------------
# telemetry-purity
# ----------------------------------------------------------------------

class TestTelemetryPurityRule:
    def test_bad_foreign_attribute_write_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            def observe(sim):
                sim.finished = True
            """, [TelemetryPurityRule])
        assert rule_ids(active) == ["telemetry-purity"]
        assert "'sim'" in active[0].message

    def test_bad_foreign_subscript_write_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/telemetry.py", """\
            def record(fleet):
                fleet.slots[0] = None
            """, [TelemetryPurityRule])
        assert rule_ids(active) == ["telemetry-purity"]

    def test_bad_foreign_annotated_type_flagged(self, tmp_path):
        # annotated with a type from *outside* the service package: foreign
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            from repro.serve.simulator import ServingSimulator
            def poke(sim: ServingSimulator):
                sim.now = 0.0
            """, [TelemetryPurityRule])
        assert rule_ids(active) == ["telemetry-purity"]

    def test_good_self_state_clean(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            class Tracker:
                def observe(self, sim):
                    self.last = sim.now
            """, [TelemetryPurityRule])
        assert active == []

    def test_good_rebound_local_copy_clean(self, tmp_path):
        # the copy idiom: rebinding the parameter makes it own state
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            def enrich(block):
                block = dict(block)
                block["extra"] = 1
                return block
            """, [TelemetryPurityRule])
        assert active == []

    def test_good_own_module_class_clean(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            class Job:
                pass
            def advance(job: Job):
                job.state = "running"
            """, [TelemetryPurityRule])
        assert active == []

    def test_good_service_package_class_clean(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            from repro.serve.service.broadcast import Subscription
            def drop(subscription: Subscription):
                subscription.dropped = 0
            """, [TelemetryPurityRule])
        assert active == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/fleet.py", """\
            def place(fleet):
                fleet.plan = None
            """, [TelemetryPurityRule])
        assert active == []


# ----------------------------------------------------------------------
# blocking-async
# ----------------------------------------------------------------------

class TestBlockingAsyncRule:
    def test_bad_time_sleep_in_coroutine_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            import time
            async def handler():
                time.sleep(1)
            """, [BlockingAsyncRule])
        assert rule_ids(active) == ["blocking-async"]

    def test_bad_bare_queue_get_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            async def pump(q):
                item = q.get()
            """, [BlockingAsyncRule])
        assert rule_ids(active) == ["blocking-async"]

    def test_bad_open_in_coroutine_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            async def dump(path):
                with open(path) as handle:
                    return handle.read()
            """, [BlockingAsyncRule])
        assert rule_ids(active) == ["blocking-async"]

    def test_good_awaited_get_clean(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            async def pump(q):
                item = await q.get()
            """, [BlockingAsyncRule])
        assert active == []

    def test_good_scheduled_get_clean(self, tmp_path):
        # coroutine handed to ensure_future, not called blocking
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            import asyncio
            async def pump(subscription):
                getter = asyncio.ensure_future(subscription.get())
                await getter
            """, [BlockingAsyncRule])
        assert active == []

    def test_good_sync_function_ignored(self, tmp_path):
        # worker threads are allowed to block; only coroutines are scoped
        active, _ = lint_snippet(tmp_path, "repro/serve/service/x.py", """\
            import time
            def worker(q):
                time.sleep(1)
                return q.get()
            """, [BlockingAsyncRule])
        assert active == []


# ----------------------------------------------------------------------
# env-gate
# ----------------------------------------------------------------------

class TestEnvGateRule:
    def test_bad_getenv_outside_envflags_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            import os
            quick = os.getenv("REPRO_BENCH_QUICK")
            """, [EnvGateRule])
        assert rule_ids(active) == ["env-gate"]
        assert "REPRO_BENCH_QUICK" in active[0].message

    def test_bad_environ_subscript_flagged(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            import os
            quick = os.environ["REPRO_BENCH_QUICK"]
            """, [EnvGateRule])
        assert rule_ids(active) == ["env-gate"]

    def test_envflags_module_may_read(self, tmp_path):
        (tmp_path / "ROADMAP.md").write_text(
            "| `REPRO_DEMO` | off | demo flag |\n")
        active, _ = lint_snippet(tmp_path, "src/repro/envflags.py", """\
            import os
            def demo():
                return os.environ.get("REPRO_DEMO", "0")
            """, [EnvGateRule])
        assert active == []

    def test_undocumented_flag_in_envflags_flagged(self, tmp_path):
        (tmp_path / "ROADMAP.md").write_text(
            "| `REPRO_DEMO` | off | demo flag |\n")
        active, _ = lint_snippet(tmp_path, "src/repro/envflags.py", """\
            import os
            def rogue():
                return os.environ.get("REPRO_UNDOCUMENTED", "0")
            """, [EnvGateRule])
        assert rule_ids(active) == ["env-gate"]
        assert "REPRO_UNDOCUMENTED" in active[0].message

    def test_repo_envflags_matches_roadmap_table(self):
        # the live doc-sync check against the real ROADMAP.md
        from repro.analysis.rules.envgate import roadmap_env_table
        from repro.envflags import REGISTERED_NAMES
        documented = roadmap_env_table(REPO_ROOT)
        assert documented is not None
        missing = set(REGISTERED_NAMES) - documented
        assert not missing, f"flags undocumented in ROADMAP.md: {missing}"


# ----------------------------------------------------------------------
# engine: scoping, suppression, parse errors, file iteration
# ----------------------------------------------------------------------

class TestEngine:
    def test_path_matches_directory_and_file_patterns(self):
        assert path_matches("src/repro/serve/fleet.py", ["repro/serve"])
        assert path_matches("repro/serve/service/x.py", ["repro/serve"])
        assert not path_matches("src/repro/core/ga.py", ["repro/serve"])
        assert path_matches("src/repro/serve/telemetry.py",
                            ["repro/serve/telemetry.py"])
        assert not path_matches("src/repro/serve/fleet.py",
                                ["repro/serve/telemetry.py"])

    def test_line_suppression(self, tmp_path):
        active, suppressed = lint_snippet(tmp_path, "repro/core/x.py", """\
            import numpy as np
            rng = np.random.default_rng()  # repro-lint: disable=unseeded-rng
            """, [UnseededRngRule])
        assert active == []
        assert rule_ids(suppressed) == ["unseeded-rng"]

    def test_line_suppression_is_rule_specific(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py", """\
            import numpy as np
            rng = np.random.default_rng()  # repro-lint: disable=wall-clock
            """, [UnseededRngRule])
        assert rule_ids(active) == ["unseeded-rng"]

    def test_file_suppression(self, tmp_path):
        active, suppressed = lint_snippet(tmp_path, "repro/core/x.py", """\
            # repro-lint: disable-file=unseeded-rng
            import numpy as np
            a = np.random.default_rng()
            b = np.random.default_rng()
            """, [UnseededRngRule])
        assert active == []
        assert len(suppressed) == 2

    def test_disable_all_suppression(self, tmp_path):
        active, suppressed = lint_snippet(tmp_path, "repro/core/x.py", """\
            import time
            t = time.time()  # repro-lint: disable=all
            """, [WallClockRule])
        assert active == []
        assert rule_ids(suppressed) == ["wall-clock"]

    def test_scan_suppressions(self):
        per_line, file_level = scan_suppressions(
            "# repro-lint: disable-file=wall-clock\n"
            "x = 1  # repro-lint: disable=unseeded-rng,env-gate\n")
        assert file_level == {"wall-clock"}
        assert per_line == {2: {"unseeded-rng", "env-gate"}}

    def test_parse_error_reported(self, tmp_path):
        active, _ = lint_snippet(tmp_path, "repro/core/x.py",
                                 "def broken(:\n", ALL_RULES)
        assert rule_ids(active) == ["parse-error"]

    def test_iter_python_files_sorted_and_deduped(self, tmp_path):
        for name in ("b.py", "a.py", "c.txt"):
            (tmp_path / name).write_text("x = 1\n")
        sub = tmp_path / "__pycache__"
        sub.mkdir()
        (sub / "a.cpython-311.pyc.py").write_text("x = 1\n")
        files = list(iter_python_files([str(tmp_path), str(tmp_path / "a.py")]))
        assert files == [str(tmp_path / "a.py"), str(tmp_path / "b.py")]

    def test_select_rules_unknown_id_raises(self):
        with pytest.raises(ValueError):
            select_rules(["no-such-rule"])
        (selected,) = select_rules(["wall-clock"])
        assert selected is WallClockRule


# ----------------------------------------------------------------------
# baseline round-trip
# ----------------------------------------------------------------------

class TestBaseline:
    def _seed_file(self, tmp_path):
        path = tmp_path / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text("import numpy as np\n"
                        "a = np.random.default_rng()\n"
                        "b = np.random.default_rng()\n")
        return path

    def test_round_trip_consumes_findings(self, tmp_path):
        self._seed_file(tmp_path)
        first = run_lint([str(tmp_path)], [UnseededRngRule], root=str(tmp_path))
        assert len(first.reported) == 2

        baseline_path = tmp_path / "lint_baseline.json"
        save_baseline(str(baseline_path), first.reported)
        loaded = load_baseline(str(baseline_path))
        assert sum(loaded.values()) == 2

        second = run_lint([str(tmp_path)], [UnseededRngRule],
                          root=str(tmp_path), baseline=loaded)
        assert second.reported == []
        assert len(second.baselined) == 2
        assert second.stale_baseline == []

    def test_baseline_tolerates_line_drift(self, tmp_path):
        path = self._seed_file(tmp_path)
        first = run_lint([str(tmp_path)], [UnseededRngRule], root=str(tmp_path))
        baseline_path = tmp_path / "lint_baseline.json"
        save_baseline(str(baseline_path), first.reported)

        # unrelated edit above the findings shifts every line number
        path.write_text("import numpy as np\n\n\n"
                        "a = np.random.default_rng()\n"
                        "b = np.random.default_rng()\n")
        again = run_lint([str(tmp_path)], [UnseededRngRule],
                         root=str(tmp_path),
                         baseline=load_baseline(str(baseline_path)))
        assert again.reported == []
        assert len(again.baselined) == 2

    def test_stale_entries_surface(self, tmp_path):
        path = self._seed_file(tmp_path)
        first = run_lint([str(tmp_path)], [UnseededRngRule], root=str(tmp_path))
        baseline_path = tmp_path / "lint_baseline.json"
        save_baseline(str(baseline_path), first.reported)

        path.write_text("import numpy as np\n"
                        "a = np.random.default_rng(0)\n"
                        "b = np.random.default_rng(1)\n")  # both fixed
        again = run_lint([str(tmp_path)], [UnseededRngRule],
                         root=str(tmp_path),
                         baseline=load_baseline(str(baseline_path)))
        assert again.reported == []
        assert again.baselined == []
        assert len(again.stale_baseline) == 1  # one key, count 2 unconsumed

    def test_new_finding_still_reports_past_baseline(self, tmp_path):
        self._seed_file(tmp_path)
        first = run_lint([str(tmp_path)], [UnseededRngRule], root=str(tmp_path))
        baseline_path = tmp_path / "lint_baseline.json"
        # grandfather only ONE of the two identical findings
        save_baseline(str(baseline_path), first.reported[:1])
        again = run_lint([str(tmp_path)], [UnseededRngRule],
                         root=str(tmp_path),
                         baseline=load_baseline(str(baseline_path)))
        assert len(again.baselined) == 1
        assert len(again.reported) == 1

    def test_find_baseline_walks_up(self, tmp_path):
        (tmp_path / "lint_baseline.json").write_text(
            json.dumps({"version": 1, "findings": []}))
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        assert find_baseline(str(nested)) == str(tmp_path / "lint_baseline.json")
        assert load_baseline(find_baseline(str(nested))) == {}

    def test_load_rejects_wrong_version(self, tmp_path):
        bad = tmp_path / "lint_baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(str(bad))


# ----------------------------------------------------------------------
# reporting: text, JSON schema, stats table
# ----------------------------------------------------------------------

class TestReporting:
    def _run(self, tmp_path):
        path = tmp_path / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "import numpy as np\n"
            "a = np.random.default_rng()\n"
            "b = np.random.default_rng()  # repro-lint: disable=unseeded-rng\n")
        return run_lint([str(tmp_path)], ALL_RULES, root=str(tmp_path))

    def test_render_text_format(self, tmp_path):
        text = render_text(self._run(tmp_path))
        assert "repro/core/x.py:2: [unseeded-rng]" in text
        assert "1 finding(s) in 1 file(s) (0 baselined, 1 suppressed inline)" \
            in text

    def test_render_json_schema(self, tmp_path):
        payload = json.loads(render_json(self._run(tmp_path)))
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert set(payload) == {"version", "files", "findings", "baselined",
                                "suppressed", "stale_baseline", "stats"}
        (finding,) = payload["findings"]
        assert set(finding) == {"file", "line", "rule", "message"}
        assert finding["rule"] == "unseeded-rng"
        assert finding["file"] == "repro/core/x.py"
        assert payload["stats"]["unseeded-rng.reported"] == 1
        assert payload["stats"]["total.suppressed"] == 1

    def test_stats_rows_and_dict(self, tmp_path):
        stats = lint_stats(self._run(tmp_path), ALL_RULES)
        # fixed row set: every rule prints a row even at zero findings
        assert [row["rule"] for row in stats.rows] == \
            [cls.rule_id for cls in ALL_RULES]
        by_rule = {row["rule"]: row for row in stats.rows}
        assert by_rule["unseeded-rng"] == {
            "rule": "unseeded-rng", "findings": 2, "baselined": 0,
            "suppressed": 1, "reported": 1}
        flat = stats.as_dict()
        assert flat["total.findings"] == 2
        rendered = stats.render()
        assert "unseeded-rng" in rendered and "total" in rendered

    def test_findings_are_deterministically_ordered(self, tmp_path):
        run = self._run(tmp_path)
        assert run.reported == sorted(run.reported)
        assert isinstance(run.reported[0], Finding)


# ----------------------------------------------------------------------
# the teeth: today's src/ lints clean (tier-1)
# ----------------------------------------------------------------------

class TestRepoIsClean:
    def test_src_lints_clean_against_committed_baseline(self):
        src = os.path.join(REPO_ROOT, "src")
        baseline = load_baseline(
            os.path.join(REPO_ROOT, "lint_baseline.json"))
        run = run_lint([src], ALL_RULES, root=REPO_ROOT, baseline=baseline)
        assert run.files > 50
        assert run.reported == [], render_text(run)
        # the committed baseline must not hold stale (already-fixed) entries
        assert run.stale_baseline == []
