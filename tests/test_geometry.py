"""Tests for repro.mapping.geometry: weight-matrix to crossbar tiling."""

import math

import pytest

from repro.graph import GraphBuilder
from repro.hardware.crossbar import CrossbarConfig
from repro.mapping.geometry import layer_geometry


def node_for(layer_builder):
    """Build a minimal graph around a single conv/linear layer and return its node."""
    return layer_builder


def build_conv_node(in_c, out_c, k, size=32, stride=1, padding=0, groups=1):
    b = GraphBuilder()
    b.add_input(in_c, size, size)
    b.add_conv("layer", in_c, out_c, k, stride=stride, padding=padding, groups=groups)
    return b.build().node("layer")


def build_linear_node(in_f, out_f):
    b = GraphBuilder()
    b.add_input(1, 1, in_f)
    b.add_flatten()
    b.add_linear("layer", in_f, out_f)
    return b.build().node("layer")


XBAR = CrossbarConfig()


class TestDenseGeometry:
    def test_small_conv_fits_one_crossbar(self):
        node = build_conv_node(3, 16, 3, size=8, padding=1)
        geom = layer_geometry(node, XBAR)
        assert geom.rows == 27
        assert geom.cols == 16
        assert geom.crossbars_per_copy == 1

    def test_conv_tiling_rows(self):
        # 64*9 = 576 rows -> 3 row tiles; 64 cols -> 1 col tile
        node = build_conv_node(64, 64, 3, size=16, padding=1)
        geom = layer_geometry(node, XBAR)
        assert geom.row_tiles == 3
        assert geom.col_tiles == 1
        assert geom.crossbars_per_copy == 3

    def test_conv_tiling_cols(self):
        # 3*9=27 rows -> 1 row tile; 128 cols -> 2 col tiles
        node = build_conv_node(3, 128, 3, size=16, padding=1)
        geom = layer_geometry(node, XBAR)
        assert geom.col_tiles == 2
        assert geom.crossbars_per_copy == 2

    def test_linear_tiling(self):
        node = build_linear_node(512, 1000)
        geom = layer_geometry(node, XBAR)
        assert geom.row_tiles == 2
        assert geom.col_tiles == math.ceil(1000 / 64)
        assert geom.crossbars_per_copy == 2 * 16

    def test_vgg_fc1_tiling(self):
        node = build_linear_node(25088, 4096)
        geom = layer_geometry(node, XBAR)
        assert geom.row_tiles == 98
        assert geom.col_tiles == 64
        assert geom.crossbars_per_copy == 98 * 64

    def test_windows_conv(self):
        node = build_conv_node(3, 16, 3, size=32, padding=1)
        geom = layer_geometry(node, XBAR)
        assert geom.windows == 32 * 32

    def test_windows_linear(self):
        geom = layer_geometry(build_linear_node(128, 64), XBAR)
        assert geom.windows == 1

    def test_weight_bytes_excludes_bias(self):
        node = build_conv_node(3, 16, 3, size=8, padding=1)
        geom = layer_geometry(node, XBAR)
        assert geom.weight_bytes == (3 * 9 * 16 * 4 + 7) // 8

    def test_macs(self):
        node = build_conv_node(3, 16, 3, size=8, padding=1)
        geom = layer_geometry(node, XBAR)
        assert geom.macs == 8 * 8 * 27 * 16

    def test_total_mvms(self):
        node = build_conv_node(64, 64, 3, size=16, padding=1)
        geom = layer_geometry(node, XBAR)
        assert geom.total_mvms == geom.windows * geom.crossbars_per_copy

    def test_non_crossbar_layer_rejected(self):
        b = GraphBuilder()
        b.add_input(3, 8, 8)
        b.add_relu(name="relu")
        with pytest.raises(ValueError):
            layer_geometry(b.graph.node("relu"), XBAR)


class TestGroupedGeometry:
    def test_depthwise_blocks_share_crossbars(self):
        # depthwise 3x3 over 64 channels: 9 rows x 1 col per group.
        node = build_conv_node(64, 64, 3, size=16, padding=1, groups=64)
        geom = layer_geometry(node, XBAR)
        # 28 groups fit per crossbar row-wise (256//9), 64 col-wise; min=28
        assert geom.crossbars_per_copy == math.ceil(64 / 28)
        assert geom.groups == 64

    def test_grouped_conv_weight_count(self):
        node = build_conv_node(32, 64, 3, size=16, padding=1, groups=4)
        geom = layer_geometry(node, XBAR)
        assert geom.weights_per_copy == (32 // 4) * 9 * (64 // 4) * 4

    def test_large_group_blocks_tile_densely(self):
        # each group block is 512*9=4608 rows x 16 cols -> needs per-group tiling
        node = build_conv_node(1024, 32, 3, size=8, padding=1, groups=2)
        geom = layer_geometry(node, XBAR)
        per_group = math.ceil(512 * 9 / 256) * math.ceil(16 / 64)
        assert geom.crossbars_per_copy == per_group * 2
