"""Tests for the span-table evaluation engine (repro.perf)."""

import pytest

from repro.core.baselines import greedy_partition
from repro.core.fitness import FitnessEvaluator
from repro.core.ga import CompassGA, GAConfig
from repro.hardware.dram import DRAMConfig, LPDDR3_8GB
from repro.perf import SpanTable, SpanTableStats, span_table_for


@pytest.fixture
def table(small_cnn_decomposition):
    return SpanTable(small_cnn_decomposition)


class TestSpanTable:
    def test_profile_cached_and_counted(self, table):
        first = table.profile(0, 2)
        again = table.profile(0, 2)
        assert first is again
        stats = table.stats
        assert stats.profiles_computed == 1
        assert stats.profile_hits == 1
        assert table.num_spans == 1

    def test_estimate_cached_per_batch(self, table):
        one = table.estimate(0, 2, 1)
        same = table.estimate(0, 2, 1)
        other_batch = table.estimate(0, 2, 8)
        assert one is same
        assert other_batch is not one
        assert other_batch.batch_size == 8
        stats = table.stats
        assert stats.estimates_computed == 2
        assert stats.estimate_hits == 1
        assert table.num_estimates == 2

    def test_latency_matches_estimate_and_is_counted(self, table):
        latency = table.latency_ns(0, 2, 4)
        assert latency == table.estimate(0, 2, 4).latency_ns
        stats = table.stats
        assert stats.latencies_computed + stats.latency_hits >= 1

    def test_estimate_group(self, table, small_cnn_decomposition):
        group = greedy_partition(small_cnn_decomposition)
        estimates = table.estimate_group(group, 2)
        assert len(estimates) == group.num_partitions
        assert all(e.batch_size == 2 for e in estimates)

    def test_precompute_fills_all_valid_spans(self, small_cnn_decomposition):
        from repro.core.validity import ValidityMap

        table = SpanTable(small_cnn_decomposition)
        validity = ValidityMap(small_cnn_decomposition)
        count = table.precompute(validity, batch_sizes=(1,))
        expected = sum(
            validity.max_end(s) - s for s in range(small_cnn_decomposition.num_units)
        )
        assert count == expected
        assert table.num_spans == expected
        # everything is now a hit
        before = table.stats.profile_hits
        table.profile(0, 1)
        assert table.stats.profile_hits == before + 1

    def test_stats_as_dict_keys(self, table):
        table.latency_ns(0, 1, 1)
        data = table.stats.as_dict()
        for key in ("profiles_computed", "profile_hits", "profile_hit_rate",
                    "estimates_computed", "estimate_hits", "estimate_hit_rate",
                    "latencies_computed", "latency_hits", "latency_hit_rate"):
            assert key in data

    def test_hit_rates(self):
        stats = SpanTableStats(profiles_computed=1, profile_hits=3,
                               estimates_computed=2, estimate_hits=2)
        assert stats.profile_hit_rate == pytest.approx(0.75)
        assert stats.estimate_hit_rate == pytest.approx(0.5)
        assert SpanTableStats().profile_hit_rate == 0.0


class TestRegistry:
    def test_shared_per_decomposition(self, small_cnn_decomposition):
        a = span_table_for(small_cnn_decomposition)
        b = span_table_for(small_cnn_decomposition)
        assert a is b

    def test_distinct_per_dram_config(self, small_cnn_decomposition):
        default = span_table_for(small_cnn_decomposition, LPDDR3_8GB)
        other = span_table_for(
            small_cnn_decomposition, DRAMConfig(name="other", num_channels=2)
        )
        assert default is not other

    def test_fitness_evaluator_uses_shared_table(self, small_cnn_decomposition):
        evaluator = FitnessEvaluator(small_cnn_decomposition, batch_size=2)
        assert evaluator.span_table is span_table_for(small_cnn_decomposition)
        group = greedy_partition(small_cnn_decomposition)
        evaluator.evaluate(group)
        assert evaluator.cache_size == group.num_partitions
        assert evaluator.span_stats  # engine engaged

    def test_fitness_evaluator_naive_path(self, small_cnn_decomposition):
        evaluator = FitnessEvaluator(
            small_cnn_decomposition, batch_size=2, use_span_table=False
        )
        assert evaluator.span_table is None
        group = greedy_partition(small_cnn_decomposition)
        evaluator.evaluate(group)
        assert evaluator.cache_size == group.num_partitions
        assert evaluator.span_stats == {}


class TestGAStats:
    def test_ga_reports_dedup_and_span_stats(self, small_cnn_decomposition):
        config = GAConfig(population_size=10, generations=4, n_select=3, n_mutate=7, seed=5)
        evaluator = FitnessEvaluator(small_cnn_decomposition, batch_size=2)
        result = CompassGA(small_cnn_decomposition, evaluator, config).run()
        assert result.evaluations == result.unique_evaluations + result.dedup_hits
        assert result.unique_evaluations >= 1
        assert 0.0 <= result.dedup_hit_rate <= 1.0
        assert result.span_stats
        lookups = (result.span_stats["latencies_computed"]
                   + result.span_stats["latency_hits"])
        assert lookups > 0
