"""Tests for fault injection and fault-tolerant serving (:mod:`repro.serve.faults`).

Covers the declarative fault surface (``parse_inject``/``materialize``), the
:class:`FaultTolerance` knobs, and the simulator's survival machinery: chip
failure + retry, stragglers, degraded DRAM re-pricing, timeouts, admission
control, SLO-driven degradation, and the request-conservation invariant.
Fault-free bit-identity against the pre-fault simulator is pinned separately
in ``tests/test_serve.py``.
"""

import dataclasses

import pytest

from repro.core.fitness import FitnessMode
from repro.hardware.dram import LPDDR3_8GB
from repro.serve import (
    ClosedLoopTraffic,
    CompiledPlan,
    FaultEvent,
    FaultTolerance,
    Fleet,
    PlanCache,
    PlanCacheStats,
    PlanKey,
    PoissonTraffic,
    Request,
    ServingSimulator,
    degraded_dram,
    faults_enabled,
    fleet_capacity_rps,
    materialize,
    parse_inject,
    retry_request,
)
from repro.serve.faults import (
    ACTION_DRAM,
    ACTION_FAIL,
    ACTION_RECOVER,
    ACTION_STRAGGLE,
)

BATCHES = (1, 2, 4, 8, 16)


class _ModelStubCache:
    """Hand-built plans keyed by (model, chip, batch) — for event-order tests.

    Duck-types the slice of :class:`PlanCache` the simulator consumes, like
    ``test_serve._StubPlanCache`` but model-aware, so two models can have
    different latency profiles on the same chip class.
    """

    def __init__(self, latencies, energy_pj=1000.0):
        self.optimizer = "stub"
        self.mode = FitnessMode.LATENCY
        self._plans = {}
        for (model, chip, batch), latency in latencies.items():
            key = PlanKey(model=model, chip=chip, dram=LPDDR3_8GB, batch=batch,
                          mode=FitnessMode.LATENCY, optimizer="stub")
            self._plans[(model, chip, batch)] = CompiledPlan(
                key=key, boundaries=(0,), num_partitions=1,
                latency_ns=float(latency), energy_pj=energy_pj,
                weight_replace_ns=0.0, fill_ns=float(latency),
                bottleneck_ns=0.0, best_fitness=float(latency),
                exact=True, evaluations=0,
            )

    def get(self, model, chip, batch):
        return self._plans[(model, chip, batch)]

    @property
    def stats(self):
        return PlanCacheStats()


def _fault_run(faults=None, ft=None, fleet_spec="S:2", model="squeezenet",
               requests=60, seed=0, policy="latency", max_wait_us=100.0,
               rate_scale=0.7, cache=None, slos=None, switch_cost=False):
    cache = cache if cache is not None else PlanCache(optimizer="dp")
    fleet = Fleet.from_spec(fleet_spec)
    cache.warmup([model], fleet.chip_names, BATCHES)
    rate = rate_scale * fleet_capacity_rps(cache, fleet, (model,), BATCHES)
    traffic = PoissonTraffic(model, num_requests=requests, seed=seed,
                             rate_rps=rate)
    simulator = ServingSimulator(fleet, cache, policy=policy,
                                 batch_sizes=BATCHES, max_wait_us=max_wait_us,
                                 switch_cost=switch_cost, slos=slos,
                                 faults=faults, fault_tolerance=ft)
    return simulator.run(traffic.generate(), traffic_info=traffic.describe())


# ----------------------------------------------------------------------
# --inject parsing and event validation
# ----------------------------------------------------------------------
class TestParseInject:
    def test_chip_fail_window(self):
        event = parse_inject("chip_fail@500:chip=0,until=1500")
        assert event.kind == "chip_fail"
        assert event.at_us == 500.0
        assert event.chip == 0
        assert event.until_us == 1500.0

    def test_straggler_factor(self):
        event = parse_inject("straggler@200:chip=1,factor=2.5,until=900")
        assert event.kind == "straggler"
        assert event.chip == 1
        assert event.factor == 2.5

    def test_chaos(self):
        event = parse_inject("chaos@0:seed=7,count=3,mtbf_us=3000,mttr_us=500")
        assert event.kind == "chaos"
        assert event.seed == 7
        assert event.count == 3
        assert event.mtbf_us == 3000.0
        assert event.mttr_us == 500.0
        assert event.chip == -1  # drawn uniformly

    @pytest.mark.parametrize("spec", [
        "chip_fail",                          # no @time
        "@500:chip=0",                        # no kind
        "chip_fail@soon:chip=0",              # time not a number
        "chip_fail@500:chip",                 # not key=value
        "chip_fail@500:chip=zero",            # value not a number
        "chip_fail@500:color=red",            # unknown key
        "bogus@500:chip=0",                   # unknown kind
        "chip_fail@500",                      # missing chip=
        "chip_fail@-5:chip=0",                # negative time
        "chip_fail@500:chip=0,until=100",     # window ends before it starts
        "straggler@500:chip=0,factor=0",      # non-positive factor
        "chaos@0:seed=7",                     # chaos without count/mtbf/mttr
        "chaos@0:count=3,mtbf_us=0,mttr_us=5",
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_inject(spec)

    def test_error_messages_are_actionable(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_inject("bogus@500:chip=0")
        with pytest.raises(ValueError, match="unknown key"):
            parse_inject("chip_fail@500:color=red")
        with pytest.raises(ValueError, match="not a number"):
            parse_inject("chip_fail@soon:chip=0")


# ----------------------------------------------------------------------
# Schedule materialisation
# ----------------------------------------------------------------------
class TestMaterialize:
    def test_window_becomes_recover_entry(self):
        schedule = materialize(
            [parse_inject("chip_fail@500:chip=1,until=1500")], num_chips=2)
        assert schedule == [(500.0, ACTION_FAIL, 1, 1.0),
                            (1500.0, ACTION_RECOVER, 1, 1.0)]

    def test_straggler_and_dram_windows_restore(self):
        schedule = materialize(
            [parse_inject("straggler@100:chip=0,factor=3,until=200"),
             parse_inject("dram_degrade@150:chip=0,factor=2,until=400")],
            num_chips=1)
        assert schedule == [
            (100.0, ACTION_STRAGGLE, 0, 3.0),
            (150.0, ACTION_DRAM, 0, 2.0),
            (200.0, ACTION_STRAGGLE, 0, 1.0),
            (400.0, ACTION_DRAM, 0, 1.0),
        ]

    def test_sorted_by_time_then_chip(self):
        schedule = materialize(
            [parse_inject("chip_fail@500:chip=1"),
             parse_inject("chip_fail@500:chip=0"),
             parse_inject("chip_fail@100:chip=1")], num_chips=2)
        assert [(t, c) for t, _, c, _ in schedule] == [
            (100.0, 1), (500.0, 0), (500.0, 1)]

    def test_chip_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            materialize([parse_inject("chip_fail@500:chip=9")], num_chips=2)

    def test_chaos_is_seed_deterministic(self):
        events = [parse_inject("chaos@0:seed=7,count=3,mtbf_us=3000,mttr_us=500")]
        first = materialize(events, num_chips=4)
        second = materialize(events, num_chips=4)
        assert first == second
        # every drawn failure pairs with its recovery
        assert len(first) == 6
        assert sorted(a for _, a, _, _ in first) == \
            [ACTION_FAIL] * 3 + [ACTION_RECOVER] * 3
        other = materialize(
            [parse_inject("chaos@0:seed=8,count=3,mtbf_us=3000,mttr_us=500")],
            num_chips=4)
        assert other != first

    def test_chaos_respects_pinned_chip(self):
        schedule = materialize(
            [parse_inject("chaos@0:seed=7,count=4,mtbf_us=100,mttr_us=10,chip=1")],
            num_chips=3)
        assert {chip for _, _, chip, _ in schedule} == {1}


# ----------------------------------------------------------------------
# FaultTolerance knobs
# ----------------------------------------------------------------------
class TestFaultTolerance:
    def test_defaults_inactive(self):
        assert not FaultTolerance().active

    @pytest.mark.parametrize("kwargs", [
        {"timeout_us": 1.0}, {"max_retries": 1}, {"shed_queue_depth": 4},
        {"shed_wait_us": 10.0}, {"degrade_below": 0.9},
    ])
    def test_any_knob_activates(self, kwargs):
        assert FaultTolerance(**kwargs).active

    @pytest.mark.parametrize("kwargs", [
        {"timeout_us": -1.0}, {"max_retries": -1}, {"retry_backoff_us": -1.0},
        {"shed_queue_depth": -1}, {"shed_wait_us": -1.0},
        {"degrade_below": -0.1}, {"degrade_below": 1.5},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultTolerance(**kwargs)

    def test_backoff_doubles_per_attempt(self):
        ft = FaultTolerance(retry_backoff_us=50.0)
        assert ft.backoff_ns(0) == 50_000.0
        assert ft.backoff_ns(1) == 100_000.0
        assert ft.backoff_ns(2) == 200_000.0

    def test_retry_request_preserves_identity(self):
        request = Request(request_id=7, model="squeezenet", arrival_ns=100.0)
        retried = retry_request(request, 5_000.0)
        assert retried.request_id == 7
        assert retried.model == "squeezenet"
        assert retried.arrival_ns == 5_000.0
        assert retried.attempt == 1
        assert retry_request(retried, 9_000.0).attempt == 2


# ----------------------------------------------------------------------
# Chip failure and retry
# ----------------------------------------------------------------------
class TestChipFailure:
    FAULTS = [parse_inject("chip_fail@300:chip=0,until=3000")]

    def test_retries_complete_every_request(self):
        report = _fault_run(faults=self.FAULTS, ft=FaultTolerance(max_retries=2))
        assert report.fault_tolerance
        assert report.failures == 1
        assert report.lost == 0
        assert report.completed == report.num_requests == 60
        assert report.retries >= 1
        assert report.lost_work_ms > 0.0
        assert report.availability < 1.0
        row = report.per_chip[0]
        assert row["failures"] == 1
        assert row["downtime_ms"] > 0.0

    def test_fifo_without_retry_loses_riders(self):
        # the acceptance scenario: same failure, no retry budget — the
        # batch in flight when the chip dies takes its riders down with it
        report = _fault_run(faults=self.FAULTS, policy="fifo")
        assert report.failures == 1
        assert report.lost >= 1
        assert report.completed < report.num_requests
        assert report.completed + report.lost == report.num_requests
        assert report.per_chip[0]["lost_requests"] == report.lost

    def test_failure_at_start_halves_availability(self):
        # chip 0 is down before anything is dispatched (fault orders before
        # the same-instant arrival) and never recovers: the survivor serves
        # everything and fleet availability sits at ~1/2
        report = _fault_run(faults=[parse_inject("chip_fail@0:chip=0")],
                            ft=FaultTolerance(max_retries=1))
        assert report.completed == report.num_requests == 60
        assert report.lost == 0
        assert report.per_chip[0]["requests"] == 0
        assert report.per_chip[0]["downtime_ms"] == \
            pytest.approx(report.makespan_ms)
        assert 0.45 <= report.availability <= 0.55

    def test_fixed_seed_fault_scenario_replays_identically(self):
        first = _fault_run(faults=self.FAULTS, ft=FaultTolerance(max_retries=2))
        second = _fault_run(faults=self.FAULTS, ft=FaultTolerance(max_retries=2))
        assert first.determinism_dict() == second.determinism_dict()

    def test_chaos_run_replays_identically(self):
        faults = [parse_inject("chaos@0:seed=7,count=2,mtbf_us=3000,mttr_us=500")]
        ft = FaultTolerance(max_retries=2)
        first = _fault_run(faults=faults, ft=ft)
        second = _fault_run(faults=faults, ft=ft)
        assert first.determinism_dict() == second.determinism_dict()
        assert first.failures >= 1
        other = _fault_run(
            faults=[parse_inject("chaos@0:seed=8,count=2,mtbf_us=3000,mttr_us=500")],
            ft=ft)
        assert other.determinism_dict() != first.determinism_dict()

    def test_closed_loop_clients_survive_failure(self):
        # a failure mid-run must not deadlock the client population: lost
        # riders retry, and their eventual completion re-arms the client
        cache = PlanCache(optimizer="dp")
        fleet = Fleet.from_spec("S:2")
        cache.warmup(["squeezenet"], fleet.chip_names, BATCHES)
        traffic = ClosedLoopTraffic("squeezenet", num_requests=30, seed=5,
                                    clients=3, concurrency=1,
                                    mean_think_s=0.0002)
        simulator = ServingSimulator(
            fleet, cache, policy="latency", batch_sizes=BATCHES,
            max_wait_us=100.0, switch_cost=False,
            faults=[parse_inject("chip_fail@200:chip=0,until=2000")],
            fault_tolerance=FaultTolerance(max_retries=2),
        )
        report = simulator.run(traffic)
        assert report.completed == report.num_requests == 30
        assert report.traffic["traffic"] == "closed"

    def test_out_of_range_chip_fails_at_construction(self):
        cache = PlanCache(optimizer="dp")
        with pytest.raises(ValueError, match="out of range"):
            ServingSimulator(Fleet.homogeneous("S"), cache,
                             faults=[parse_inject("chip_fail@100:chip=5")])


# ----------------------------------------------------------------------
# Stragglers and degraded DRAM
# ----------------------------------------------------------------------
class TestSlowdownFaults:
    def test_straggler_raises_latency(self):
        slow = _fault_run(fleet_spec="S:1",
                          faults=[parse_inject("straggler@0:chip=0,factor=2")])
        clean = _fault_run(fleet_spec="S:1")
        assert slow.failures == 0
        assert slow.availability == 1.0
        assert slow.latency_ms["mean"] > clean.latency_ms["mean"]
        assert slow.completed == clean.completed == 60

    def test_straggler_window_restores_speed(self):
        forever = _fault_run(fleet_spec="S:1",
                             faults=[parse_inject("straggler@0:chip=0,factor=4")])
        windowed = _fault_run(
            fleet_spec="S:1",
            faults=[parse_inject("straggler@0:chip=0,factor=4,until=500")])
        assert windowed.latency_ms["mean"] < forever.latency_ms["mean"]

    def test_degraded_dram_config_scales_timings(self):
        degraded = degraded_dram(LPDDR3_8GB, 2.0)
        assert degraded.name == LPDDR3_8GB.name + "@x2"
        assert degraded.clock_ns == 2 * LPDDR3_8GB.clock_ns
        assert degraded.t_cas_ns == 2 * LPDDR3_8GB.t_cas_ns
        assert degraded.capacity_bytes == LPDDR3_8GB.capacity_bytes
        # factor 1 is the identity, not a new config (and a new cache key)
        assert degraded_dram(LPDDR3_8GB, 1.0) is LPDDR3_8GB
        with pytest.raises(ValueError):
            degraded_dram(LPDDR3_8GB, 0.0)

    def test_degraded_dram_reprices_plan_through_cache(self):
        cache = PlanCache(optimizer="dp")
        base = cache.get("lenet5", "S", 1)
        slow = cache.get("lenet5", "S", 1, dram=degraded_dram(LPDDR3_8GB, 4.0))
        assert slow.key != base.key
        assert slow.key.dram.name.endswith("@x4")
        # slower DRAM means slower weight loads: the recompiled plan's
        # latency must reflect it
        assert slow.latency_ns > base.latency_ns

    def test_dram_fault_slows_serving(self):
        slow = _fault_run(
            fleet_spec="S:1",
            faults=[parse_inject("dram_degrade@0:chip=0,factor=4")])
        clean = _fault_run(fleet_spec="S:1")
        assert slow.latency_ms["mean"] > clean.latency_ms["mean"]
        assert slow.completed == 60


# ----------------------------------------------------------------------
# Timeouts, shedding, degradation
# ----------------------------------------------------------------------
class TestOverloadControl:
    def test_timeouts_account_every_request(self):
        report = _fault_run(fleet_spec="S:1", rate_scale=3.0,
                            ft=FaultTolerance(timeout_us=1000.0))
        assert report.timeouts > 0
        assert report.completed + report.timeouts == report.num_requests

    def test_timed_out_requests_retry_first(self):
        no_retry = _fault_run(fleet_spec="S:1", rate_scale=3.0,
                              ft=FaultTolerance(timeout_us=1000.0))
        with_retry = _fault_run(
            fleet_spec="S:1", rate_scale=3.0,
            ft=FaultTolerance(timeout_us=1000.0, max_retries=3))
        assert with_retry.retries > 0
        assert with_retry.completed + with_retry.timeouts == \
            with_retry.num_requests
        # a retry budget can only improve on abandoning outright
        assert with_retry.completed >= no_retry.completed

    def test_queue_depth_shedding(self):
        report = _fault_run(fleet_spec="S:1", rate_scale=3.0,
                            ft=FaultTolerance(shed_queue_depth=4))
        assert report.shed > 0
        assert report.completed + report.shed == report.num_requests
        # admission control bounds the backlog it polices
        assert report.queue_depth["max"] <= 4

    def test_wait_budget_shedding(self):
        report = _fault_run(fleet_spec="S:1", rate_scale=3.0,
                            ft=FaultTolerance(shed_wait_us=200.0))
        assert report.shed > 0
        assert report.completed + report.shed == report.num_requests

    def test_all_chips_down_sheds_everything(self):
        report = _fault_run(fleet_spec="S:1",
                            faults=[parse_inject("chip_fail@0:chip=0")],
                            ft=FaultTolerance(shed_wait_us=500.0))
        assert report.completed == 0
        assert report.shed == report.num_requests == 60
        assert report.availability < 0.1

    def test_conservation_under_combined_faults(self):
        # every offered request has exactly one fate
        report = _fault_run(
            fleet_spec="S:1", rate_scale=2.5,
            faults=[parse_inject("chip_fail@500:chip=0,until=1500")],
            ft=FaultTolerance(timeout_us=1500.0, max_retries=1,
                              shed_queue_depth=8))
        assert report.completed + report.shed + report.timeouts + \
            report.lost == report.num_requests
        assert min(report.completed, report.shed) >= 0

    def test_slo_degradation_bypasses_batching(self):
        report = _fault_run(fleet_spec="S:1", max_wait_us=500.0,
                            slos={"squeezenet": 1e-6},
                            ft=FaultTolerance(degrade_below=0.9))
        # a picosecond target is never attained: after the first completion
        # the model is behind SLO and dispatches degrade to latency-optimal
        assert report.degraded_dispatches > 0
        assert report.completed == report.num_requests == 60


# ----------------------------------------------------------------------
# Downtime accounting: outage windows clamp to the simulation horizon
# ----------------------------------------------------------------------
class TestDowntimeClamp:
    def test_recovery_past_horizon_clamps_downtime(self):
        # the recovery is scheduled long after the last request completes:
        # the naive (recover - fail) charge would dwarf the makespan, but
        # a chip can never be down for longer than the run existed
        report = _fault_run(
            faults=[parse_inject("chip_fail@500:chip=0,until=10000000")],
            ft=FaultTolerance(max_retries=2))
        assert report.completed == report.num_requests
        row = report.per_chip[0]
        assert row["downtime_ms"] > 0.0
        assert row["downtime_ms"] <= report.makespan_ms
        assert 0.0 <= report.availability <= 1.0

    def test_downtime_never_exceeds_wall_time(self):
        # chaos schedules can also straddle the horizon; the invariant
        # holds for every chip whatever the window mix
        report = _fault_run(
            faults=[parse_inject(
                "chaos@0:seed=3,count=4,mtbf_us=2000,mttr_us=8000")],
            ft=FaultTolerance(max_retries=3, shed_wait_us=4000.0))
        for row in report.per_chip:
            assert 0.0 <= row["downtime_ms"] <= report.makespan_ms

    def test_within_horizon_windows_sum_exactly(self):
        # both outage windows close before the run ends: downtime is the
        # plain sum of the scripted windows, untouched by the clamp
        report = _fault_run(
            faults=[parse_inject("chip_fail@300:chip=0,until=800"),
                    parse_inject("chip_fail@2000:chip=0,until=2600")],
            ft=FaultTolerance(max_retries=2))
        assert report.per_chip[0]["downtime_ms"] == pytest.approx(1.1)
        assert report.per_chip[0]["failures"] == 2


# ----------------------------------------------------------------------
# Retry-aware queue priority
# ----------------------------------------------------------------------
class TestRetryPriority:
    SCENARIO = dict(fleet_spec="S:1", rate_scale=2.0, policy="fifo",
                    faults=[parse_inject("chip_fail@300:chip=0,until=2500")])

    def test_defaults_off(self):
        assert not FaultTolerance().retry_priority
        # the knob alone doesn't make the config active: it only changes
        # how retries (granted by other knobs) are ordered
        assert not FaultTolerance(retry_priority=True).active

    def test_final_attempt_jumps_the_queue(self):
        # a single chip fails mid-backlog and recovers into a full queue:
        # plain FIFO re-queues the retried requests behind fresh arrivals
        # and their timeout clocks (started at first arrival) expire in
        # line; priority ordering serves final attempts first, so more of
        # them complete instead of being abandoned
        ft = FaultTolerance(timeout_us=1500.0, max_retries=2)
        plain = _fault_run(ft=ft, **self.SCENARIO)
        prio = _fault_run(ft=dataclasses.replace(ft, retry_priority=True),
                          **self.SCENARIO)
        abandoned_plain = plain.timeouts + plain.lost
        abandoned_prio = prio.timeouts + prio.lost
        assert abandoned_prio < abandoned_plain
        assert prio.completed > plain.completed
        for report in (plain, prio):
            assert report.completed + report.shed + report.timeouts + \
                report.lost == report.num_requests

    def test_priority_run_replays_identically(self):
        ft = FaultTolerance(timeout_us=1500.0, max_retries=2,
                            retry_priority=True)
        first = _fault_run(ft=ft, **self.SCENARIO)
        second = _fault_run(ft=ft, **self.SCENARIO)
        assert first.determinism_dict() == second.determinism_dict()


# ----------------------------------------------------------------------
# Same-instant determinism: chip-id tie-break for chip-bound events
# ----------------------------------------------------------------------
class TestEventTieBreak:
    def test_same_instant_frees_resolve_by_chip_id(self):
        # Regression: two chips free at the same instant with one queued
        # request.  Model "a" routes to M#1 first (faster there), model "b"
        # then takes S#0; both dispatch at t=0 and free at t=100µs — but
        # M#1's chip-free event was PUSHED first.  The total order must
        # resolve the tie by chip id (S#0 first), not by heap insertion
        # order, so the waiting request lands on S#0 deterministically.
        cache = _ModelStubCache({
            ("a", "S", 1): 150_000.0, ("a", "M", 1): 100_000.0,
            ("b", "S", 1): 100_000.0, ("b", "M", 1): 100_000.0,
        })
        fleet = Fleet.from_spec("S:1,M:1")
        requests = [
            Request(request_id=0, model="a", arrival_ns=0.0),
            Request(request_id=1, model="b", arrival_ns=0.0),
            Request(request_id=2, model="b", arrival_ns=50_000.0),
        ]
        simulator = ServingSimulator(
            fleet, cache, policy="latency", batch_sizes=(1,),
            max_wait_us=0.0, switch_cost=False,
            # any active knob forces the fault-aware path, where chips are
            # redispatched at their chip-free event — the order-sensitive case
            fault_tolerance=FaultTolerance(max_retries=1),
        )
        report = simulator.run(requests, traffic_info={"traffic": "unit"})
        assert report.completed == 3
        assert report.per_chip[0]["chip"] == "S#0"
        assert report.per_chip[0]["requests"] == 2
        assert report.per_chip[1]["requests"] == 1


# ----------------------------------------------------------------------
# Environment gate and report shape
# ----------------------------------------------------------------------
class TestFaultGateAndReport:
    def test_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_FAULTS", raising=False)
        assert faults_enabled()
        monkeypatch.setenv("REPRO_SERVE_FAULTS", "1")
        assert faults_enabled()
        monkeypatch.setenv("REPRO_SERVE_FAULTS", "0")
        assert not faults_enabled()

    def test_env_gate_drops_injection(self, monkeypatch):
        # REPRO_SERVE_FAULTS=0 is the fault-free twin of a scenario: the
        # injected events vanish and the run is bit-identical to one that
        # never specified them (including the legacy report shape)
        monkeypatch.setenv("REPRO_SERVE_FAULTS", "0")
        gated = _fault_run(faults=[parse_inject("chip_fail@300:chip=0")])
        monkeypatch.delenv("REPRO_SERVE_FAULTS")
        clean = _fault_run()
        assert gated.determinism_dict() == clean.determinism_dict()
        assert not gated.fault_tolerance
        assert "faults" not in gated.as_dict()

    def test_fault_free_report_keeps_legacy_shape(self):
        report = _fault_run()
        data = report.as_dict()
        assert "faults" not in data
        assert all("downtime_ms" not in row for row in data["per_chip"])

    def test_fault_report_renders_and_round_trips(self, tmp_path):
        from repro.serialization import dump_serving_report, load_result_dict
        from repro.sim.report import render_serving_report

        report = _fault_run(faults=[parse_inject("chip_fail@300:chip=0,until=3000")],
                            ft=FaultTolerance(max_retries=2))
        text = render_serving_report(report)
        assert "chip failures" in text
        assert "availability" in text
        assert "downtime_ms" in text
        path = str(tmp_path / "faults.json")
        dump_serving_report(report, path)
        loaded = load_result_dict(path)
        assert loaded == report.as_dict()
        assert loaded["faults"]["failures"] == 1
        assert loaded["faults"]["availability"] == report.availability
        assert "downtime_ms" in loaded["per_chip"][0]

    def test_fault_event_is_frozen(self):
        event = parse_inject("chip_fail@500:chip=0")
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.chip = 1
