"""Shared fixtures for the test suite.

Most tests run on small models (LeNet-5 or a hand-built CNN) and either the
paper's Chip-S or a deliberately tiny chip so that decomposition produces
several partition units quickly.  The heavyweight paper networks are
session-scoped fixtures so they are built only once.
"""

from __future__ import annotations

import pytest

from repro.core.decomposition import decompose_model
from repro.graph import GraphBuilder
from repro.hardware import CHIP_L, CHIP_M, CHIP_S
from repro.hardware.chip import ChipConfig, InterconnectConfig
from repro.hardware.core import CoreConfig
from repro.hardware.crossbar import CrossbarConfig
from repro.models import build_model


# ----------------------------------------------------------------------
# hardware fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def chip_s() -> ChipConfig:
    """Paper Chip-S (16 cores x 9 crossbars, 1.125 MB)."""
    return CHIP_S


@pytest.fixture(scope="session")
def chip_m() -> ChipConfig:
    """Paper Chip-M (16 cores x 16 crossbars, 2.0 MB)."""
    return CHIP_M


@pytest.fixture(scope="session")
def chip_l() -> ChipConfig:
    """Paper Chip-L (36 cores x 16 crossbars, 4.5 MB)."""
    return CHIP_L


@pytest.fixture(scope="session")
def tiny_chip() -> ChipConfig:
    """A deliberately tiny chip (4 cores x 2 crossbars = 64 KiB).

    Small enough that even LeNet-5 and the hand-built CNN need several
    partitions, which exercises the partitioning machinery cheaply.
    """
    return ChipConfig(
        name="tiny",
        num_cores=4,
        core=CoreConfig(crossbars_per_core=2, crossbar=CrossbarConfig()),
        interconnect=InterconnectConfig(),
    )


# ----------------------------------------------------------------------
# model fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def lenet_graph():
    """LeNet-5 graph (tiny, fast to decompose)."""
    return build_model("lenet5")


@pytest.fixture(scope="session")
def small_cnn_graph():
    """A hand-built 4-conv CNN with a residual connection and a classifier."""
    b = GraphBuilder("small_cnn")
    b.add_input(3, 32, 32)
    b.add_conv("conv1", 3, 16, kernel_size=3, padding=1)
    b.add_relu(name="relu1")
    trunk = b.add_conv("conv2", 16, 16, kernel_size=3, padding=1)
    b.add_relu(name="relu2")
    b.add_conv("conv3", 16, 16, kernel_size=3, padding=1)
    b.add_add(name="res_add", inputs=[b.current, trunk])
    b.add_relu(name="relu3")
    b.add_maxpool(2, 2, name="pool")
    b.add_conv("conv4", 16, 32, kernel_size=3, padding=1)
    b.add_relu(name="relu4")
    b.add_global_avgpool(name="gap")
    b.add_flatten(name="flatten")
    b.add_linear("fc", 32, 10)
    b.add_softmax(name="softmax")
    return b.build()


@pytest.fixture(scope="session")
def squeezenet_graph():
    """SqueezeNet v1.1 graph (the paper's smallest benchmark)."""
    return build_model("squeezenet")


@pytest.fixture(scope="session")
def resnet18_graph():
    """ResNet18 graph (the paper's mid-size benchmark)."""
    return build_model("resnet18")


@pytest.fixture(scope="session")
def vgg16_graph():
    """VGG16 graph (the paper's largest benchmark)."""
    return build_model("vgg16")


# ----------------------------------------------------------------------
# decomposition fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def small_cnn_decomposition(small_cnn_graph, tiny_chip):
    """Small CNN decomposed for the tiny chip (several units, several layers)."""
    return decompose_model(small_cnn_graph, tiny_chip)


@pytest.fixture(scope="session")
def squeezenet_decomposition_s(squeezenet_graph, chip_s):
    """SqueezeNet decomposed for Chip-S (fits fully on chip)."""
    return decompose_model(squeezenet_graph, chip_s)


@pytest.fixture(scope="session")
def resnet18_decomposition_m(resnet18_graph, chip_m):
    """ResNet18 decomposed for Chip-M (needs several partitions)."""
    return decompose_model(resnet18_graph, chip_m)
