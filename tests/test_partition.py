"""Tests for repro.core.partition: Partition, PartitionGroup and IO analysis."""

import pytest

from repro.core.partition import Partition, PartitionGroup
from repro.core.validity import ValidityMap


class TestPartition:
    def test_invalid_span_rejected(self, small_cnn_decomposition):
        with pytest.raises(ValueError):
            Partition(small_cnn_decomposition, 2, 2)
        with pytest.raises(ValueError):
            Partition(small_cnn_decomposition, -1, 2)
        with pytest.raises(ValueError):
            Partition(small_cnn_decomposition, 0, small_cnn_decomposition.num_units + 1)

    def test_units_and_sizes(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        p = Partition(d, 0, 2)
        assert p.num_units == 2
        assert p.weight_bytes == d.span_weight_bytes(0, 2)
        assert p.crossbars == d.span_crossbars(0, 2)

    def test_layer_names_ordered_unique(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        p = Partition(d, 0, d.num_units)
        names = p.layer_names()
        assert names == list(dict.fromkeys(names))
        assert set(names) == set(d.crossbar_layers)

    def test_layer_fraction_full_partition(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        p = Partition(d, 0, d.num_units)
        for layer in p.layer_names():
            assert p.layer_fraction(layer) == pytest.approx(1.0)

    def test_layer_fraction_partial(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        # find a layer with >= 2 units and take only its first unit
        for layer in d.crossbar_layers:
            start, end = d.layer_unit_ranges[layer]
            if end - start >= 2:
                p = Partition(d, start, start + 1)
                assert 0.0 < p.layer_fraction(layer) < 1.0
                break
        else:
            pytest.skip("no multi-unit layer in this decomposition")

    def test_layer_fraction_absent_layer(self, small_cnn_decomposition):
        p = Partition(small_cnn_decomposition, 0, 1)
        assert p.layer_fraction("not_a_layer") == 0.0

    def test_owned_nodes_include_attached(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        p = Partition(d, 0, d.num_units)
        owned = p.owned_nodes()
        assert "relu1" in owned
        assert "res_add" in owned
        assert "input" not in owned

    def test_str(self, small_cnn_decomposition):
        assert "P[0:1]" in str(Partition(small_cnn_decomposition, 0, 1))


class TestPartitionIO:
    def test_whole_model_partition_io(self, small_cnn_decomposition):
        """A single partition holding everything loads the input, stores the output."""
        d = small_cnn_decomposition
        p = Partition(d, 0, d.num_units)
        io = p.io()
        assert io.num_entries == 1
        assert io.entries[0][0] == "input"
        assert io.num_exits == 1
        assert io.load_bytes > 0
        assert io.store_bytes > 0

    def test_middle_partition_loads_predecessor(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        vm = ValidityMap(d)
        end = vm.max_end(0)
        if end >= d.num_units:
            pytest.skip("model fits in one partition")
        first = Partition(d, 0, end)
        second = Partition(d, end, min(vm.max_end(end), d.num_units))
        # the second partition must load at least one feature map from DRAM
        assert second.io().load_bytes > 0
        # the first partition must store at least one feature map for later use
        assert first.io().store_bytes > 0

    def test_residual_crossing_creates_multiple_entries(self, resnet18_graph, chip_m):
        """Cutting inside a residual block yields more than one entry node."""
        from repro.core.decomposition import decompose_model

        d = decompose_model(resnet18_graph, chip_m)
        # find the unit index of a block's second conv (conv2 of layer1_0): a cut
        # right before it separates the add's two operands
        target = "layer1_0_conv2"
        start, _ = d.layer_unit_ranges[target]
        partition = Partition(d, start, d.layer_unit_ranges["layer1_1_conv1"][0])
        io = partition.io()
        assert io.num_entries >= 2

    def test_store_bytes_scaled_by_layer_fraction(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        for layer in d.crossbar_layers:
            start, end = d.layer_unit_ranges[layer]
            if end - start >= 2:
                whole = Partition(d, start, end).io()
                half = Partition(d, start, start + (end - start) // 2).io()
                whole_store = dict(whole.exits).get(layer)
                half_store = dict(half.exits).get(layer)
                if whole_store and half_store:
                    assert half_store < whole_store
                    return
        pytest.skip("no suitable split found")

    def test_io_counts_each_source_once(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        p = Partition(d, 0, d.num_units)
        sources = [name for name, _ in p.io().entries]
        assert len(sources) == len(set(sources))


class TestPartitionGroup:
    def test_from_boundaries_valid(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        group = PartitionGroup.from_boundaries(d, [1, d.num_units])
        assert group.num_partitions == 2
        assert group.spans() == [(0, 1), (1, d.num_units)]

    def test_single_partition_group(self, squeezenet_decomposition_s):
        group = PartitionGroup.single_partition(squeezenet_decomposition_s)
        assert group.num_partitions == 1

    def test_boundaries_must_increase(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        with pytest.raises(ValueError):
            PartitionGroup.from_boundaries(d, [2, 2, d.num_units])

    def test_boundaries_must_cover_model(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        with pytest.raises(ValueError):
            PartitionGroup.from_boundaries(d, [d.num_units - 1])

    def test_empty_boundaries_rejected(self, small_cnn_decomposition):
        with pytest.raises(ValueError):
            PartitionGroup.from_boundaries(small_cnn_decomposition, [])

    def test_partitions_materialise_spans(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        mid = d.num_units // 2
        group = PartitionGroup.from_boundaries(d, [mid, d.num_units])
        parts = group.partitions()
        assert parts[0].start == 0 and parts[0].end == mid
        assert parts[1].start == mid and parts[1].end == d.num_units

    def test_partition_accessor(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        mid = d.num_units // 2
        group = PartitionGroup.from_boundaries(d, [mid, d.num_units])
        assert group.partition(1).start == mid

    def test_total_weight_bytes_preserved(self, resnet18_decomposition_m):
        """Partitioning never changes the total weight footprint."""
        d = resnet18_decomposition_m
        mid = d.num_units // 3
        group = PartitionGroup.from_boundaries(d, [mid, 2 * mid, d.num_units])
        assert group.total_weight_bytes() == d.total_weight_bytes()

    def test_more_partitions_more_dram_feature_traffic(self, resnet18_decomposition_m):
        """Splitting finer can only add DRAM boundary traffic (Sec. IV-B1)."""
        d = resnet18_decomposition_m
        vm = ValidityMap(d)
        coarse_bounds = []
        start = 0
        while start < d.num_units:
            end = vm.max_end(start)
            coarse_bounds.append(end)
            start = end
        coarse = PartitionGroup.from_boundaries(d, coarse_bounds)
        fine = PartitionGroup.from_boundaries(d, list(range(1, d.num_units + 1)))
        assert fine.total_dram_feature_bytes() >= coarse.total_dram_feature_bytes()

    def test_is_valid_against_crossbar_budget(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        fine = PartitionGroup.from_boundaries(d, list(range(1, d.num_units + 1)))
        assert fine.is_valid(d.chip.total_crossbars)
        assert not PartitionGroup.from_boundaries(d, [d.num_units]).is_valid(
            d.chip.total_crossbars
        )

    def test_signature_hashable(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        g = PartitionGroup.from_boundaries(d, [d.num_units])
        assert hash(g.signature()) == hash((d.num_units,))

    def test_str(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        assert "partitions" in str(PartitionGroup.from_boundaries(d, [d.num_units]))
