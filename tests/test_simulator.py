"""Tests for the whole-model execution simulator."""

import pytest

from repro.core.baselines import greedy_partition, layerwise_partition
from repro.isa.scheduler import InstructionScheduler
from repro.onchip.plan import build_partition_plan
from repro.sim.report import render_execution_report
from repro.sim.simulator import ExecutionSimulator


@pytest.fixture(scope="module")
def simulated(resnet18_decomposition_m, chip_m):
    d = resnet18_decomposition_m
    simulator = ExecutionSimulator(chip_m, batch_size=4)
    group = greedy_partition(d)
    report = simulator.simulate(group, model_name="resnet18", scheme="greedy")
    return d, group, report


class TestExecutionReport:
    def test_basic_fields(self, simulated):
        _, group, report = simulated
        assert report.model_name == "resnet18"
        assert report.chip_name == "M"
        assert report.scheme == "greedy"
        assert report.batch_size == 4
        assert report.num_partitions == group.num_partitions

    def test_totals_are_sums_over_partitions(self, simulated):
        _, _, report = simulated
        assert report.total_latency_ns == pytest.approx(
            sum(e.latency_ns for e in report.estimates)
        )
        assert report.total_energy_pj == pytest.approx(
            sum(e.energy_pj for e in report.estimates)
        )

    def test_throughput_consistent_with_latency(self, simulated):
        _, _, report = simulated
        expected = report.batch_size / (report.total_latency_ns * 1e-9)
        assert report.throughput == pytest.approx(expected)

    def test_partition_latency_fractions_sum_to_one(self, simulated):
        _, _, report = simulated
        assert sum(report.partition_latency_fractions()) == pytest.approx(1.0)

    def test_energy_breakdown_aggregates(self, simulated):
        _, _, report = simulated
        breakdown = report.energy_breakdown
        assert breakdown.total_pj == pytest.approx(report.total_energy_pj)

    def test_weight_traffic_covers_model(self, simulated):
        d, _, report = simulated
        assert report.weight_traffic_bytes() >= d.total_weight_bytes() * 0.99

    def test_feature_traffic_scales_with_batch(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        group = greedy_partition(d)
        small = ExecutionSimulator(chip_m, batch_size=1).simulate(group)
        large = ExecutionSimulator(chip_m, batch_size=8).simulate(group)
        assert large.feature_traffic_bytes() == 8 * small.feature_traffic_bytes()

    def test_summary_row_keys(self, simulated):
        _, _, report = simulated
        row = report.summary_row()
        assert {"model", "chip", "scheme", "batch", "partitions", "latency_ms",
                "throughput_ips", "energy_per_inf_mj", "edp_mj_ms"} <= set(row)

    def test_render_report_text(self, simulated):
        _, _, report = simulated
        text = render_execution_report(report)
        assert "resnet18" in text
        assert "throughput" in text
        assert "per-partition latency" in text


class TestSimulatorOptions:
    def test_plans_can_be_supplied(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        group = greedy_partition(d)
        plans = [build_partition_plan(p, chip_m) for p in group.partitions()]
        report = ExecutionSimulator(chip_m, batch_size=2).simulate(group, plans=plans)
        assert report.num_partitions == len(plans)

    def test_plan_count_mismatch_rejected(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        group = greedy_partition(d)
        plans = [build_partition_plan(group.partition(0), chip_m)]
        if group.num_partitions == 1:
            pytest.skip("needs more than one partition")
        with pytest.raises(ValueError):
            ExecutionSimulator(chip_m, batch_size=2).simulate(group, plans=plans)

    def test_dram_trace_replay_populates_stats(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        group = greedy_partition(d)
        plans = [build_partition_plan(p, chip_m) for p in group.partitions()]
        schedule = InstructionScheduler(chip_m, batch_size=2).schedule_model(plans)
        report = ExecutionSimulator(chip_m, batch_size=2).simulate(
            group, plans=plans, dram_trace=schedule.dram_trace()
        )
        assert report.dram_stats is not None
        assert report.dram_stats.num_requests == len(schedule.dram_trace())
        assert report.dram_stats.energy_pj > 0
        assert "DRAM trace" in render_execution_report(report)

    def test_invalid_batch(self, chip_m):
        with pytest.raises(ValueError):
            ExecutionSimulator(chip_m, batch_size=0)

    def test_scheme_comparison_on_same_model(self, resnet18_decomposition_m, chip_m):
        """Different partitionings of the same model yield different reports."""
        d = resnet18_decomposition_m
        sim = ExecutionSimulator(chip_m, batch_size=8)
        greedy_report = sim.simulate(greedy_partition(d), scheme="greedy")
        layerwise_report = sim.simulate(layerwise_partition(d), scheme="layerwise")
        assert greedy_report.total_latency_ns != pytest.approx(
            layerwise_report.total_latency_ns
        )
