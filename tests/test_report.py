"""Tests for the plain-text table formatter."""

from repro.sim.report import format_table


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_header_and_rows(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "1" in lines[2]
        assert "y" in lines[3]

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0].split()
        assert header == ["c", "a"]
        assert "b" not in text.splitlines()[0]

    def test_float_formatting(self):
        rows = [{"v": 3.14159}]
        text = format_table(rows, float_format="{:.2f}")
        assert "3.14" in text
        assert "3.14159" not in text

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 5}]
        text = format_table(rows, columns=["a", "b"])
        assert text  # does not raise

    def test_alignment_widths(self):
        rows = [{"name": "x", "value": 1}, {"name": "longer_name", "value": 22}]
        lines = format_table(rows).splitlines()
        assert len(lines[2]) == len(lines[3]) or abs(len(lines[2]) - len(lines[3])) <= 1
