"""Tests for repro.core.decomposition: model -> partition units."""

import pytest

from repro.core.decomposition import DecompositionError, decompose_model
from repro.hardware import CHIP_L, CHIP_M, CHIP_S


class TestUnitInvariants:
    def test_units_cover_all_crossbar_layers(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        layers_with_units = {u.layer_name for u in d.units}
        assert layers_with_units == set(d.crossbar_layers)

    def test_unit_indices_sequential(self, small_cnn_decomposition):
        for i, unit in enumerate(small_cnn_decomposition.units):
            assert unit.index == i

    def test_units_fit_single_core(self, small_cnn_decomposition):
        core_capacity = small_cnn_decomposition.chip.core.weight_capacity_bytes
        for unit in small_cnn_decomposition.units:
            assert unit.weight_bytes <= core_capacity
            assert unit.crossbars <= small_cnn_decomposition.chip.core.crossbars_per_core

    def test_unit_columns_partition_layer(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        for layer in d.crossbar_layers:
            units = d.units_of_layer(layer)
            # column ranges are contiguous and non-overlapping
            assert units[0].col_start == 0
            for prev, cur in zip(units, units[1:]):
                assert cur.col_start == prev.col_end
            geom = d.geometries[layer]
            assert units[-1].col_end == geom.cols * geom.groups

    def test_unit_weight_bytes_sum_close_to_layer(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        for layer in d.crossbar_layers:
            geom = d.geometries[layer]
            layer_bytes = geom.weight_bytes
            unit_bytes = sum(u.weight_bytes for u in d.units_of_layer(layer))
            # units are sized from per-column byte counts, so rounding can add
            # at most one byte per output column
            assert layer_bytes <= unit_bytes <= layer_bytes + geom.cols * geom.groups

    def test_units_share_layer_windows(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        for layer in d.crossbar_layers:
            windows = {u.windows for u in d.units_of_layer(layer)}
            assert len(windows) == 1

    def test_layer_of_unit(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        assert d.layer_of_unit(0) == d.units[0].layer_name


class TestChipDependence:
    def test_smaller_chip_more_units(self, vgg16_graph):
        units_s = decompose_model(vgg16_graph, CHIP_S).num_units
        units_l = decompose_model(vgg16_graph, CHIP_L).num_units
        assert units_s > units_l

    def test_squeezenet_fits_fully_on_s(self, squeezenet_decomposition_s):
        assert squeezenet_decomposition_s.fits_fully_on_chip()

    def test_resnet18_does_not_fit_on_m(self, resnet18_decomposition_m):
        assert not resnet18_decomposition_m.fits_fully_on_chip()

    def test_vgg16_does_not_fit_on_l(self, vgg16_graph):
        assert not decompose_model(vgg16_graph, CHIP_L).fits_fully_on_chip()

    def test_span_helpers(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        n = d.num_units
        assert d.span_weight_bytes(0, n) == d.total_weight_bytes()
        assert d.span_crossbars(0, 0) == 0
        assert d.span_weight_bytes(0, 1) == d.units[0].weight_bytes


class TestAttachments:
    def test_attachments_keyed_by_crossbar_layers(self, small_cnn_decomposition):
        d = small_cnn_decomposition
        assert set(d.attachments) == set(d.crossbar_layers)

    def test_every_non_crossbar_layer_attached(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        attached = {n for names in d.attachments.values() for n in names}
        non_crossbar = {
            n.name for n in d.graph.nodes()
            if not n.layer.is_crossbar_mapped and n.kind.value != "input"
        }
        assert attached == non_crossbar


class TestErrors:
    def test_weight_bits_must_match_crossbar(self, squeezenet_graph):
        with pytest.raises(DecompositionError):
            decompose_model(squeezenet_graph, CHIP_S, weight_bits=8)

    def test_model_without_crossbar_layers(self):
        from repro.graph import GraphBuilder

        b = GraphBuilder("no_weights")
        b.add_input(3, 8, 8)
        b.add_relu()
        b.add_maxpool(2, 2)
        with pytest.raises(DecompositionError):
            decompose_model(b.graph, CHIP_S)
