"""Equivalence of the span-table + span-matrix engines with the naive path.

The performance layer (:mod:`repro.perf`, prefix-sum span queries, the
single-layer I/O template, the batched replication allocator, the
round-robin/multiset core-mapping fast paths, the latency-only slim
profile and the dense span matrix) must be *exact*: every optimisation is
a memoisation or an algebraic restructuring, never an approximation.  These
tests pin that down:

* per-span ``PartitionEstimate``s from the span table are bit-identical to
  naive per-call estimation;
* the latency-only slim profile replays the full profile's latency fields
  bit for bit, including its lean max-core-crossbars computation;
* dense span-matrix gathers equal the scalar table lookups;
* partition I/O matches a direct, graph-based reference implementation of
  the Sec. III-B3 entry/exit analysis;
* prefix-sum span aggregates match direct summation over units;
* fixed-seed GA runs produce bit-identical results (best group, fitness
  history, full ``GenerationRecord`` contents, dedup accounting) across the
  naive, span-table and span-matrix paths, in latency and EDP mode and for
  multiple batch sizes.
"""

import numpy as np
import pytest

from repro.core.decomposition import decompose_model
from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.core.ga import CompassGA, GAConfig
from repro.core.partition import Partition, PartitionGroup
from repro.core.validity import ValidityMap
from repro.hardware.config import get_chip_config
from repro.mapping.core_mapping import map_tiles_to_cores, max_core_crossbars_only
from repro.mapping.replication import ReplicationPlan, replication_factor_list
from repro.models import build_model
from repro.onchip.estimator import PartitionEstimator
from repro.perf import span_matrix_for, span_table_for
from repro.sim.simulator import ExecutionSimulator


MODELS = [("lenet5", "S"), ("alexnet", "S")]


@pytest.fixture(scope="module", params=MODELS, ids=[f"{m}-{c}" for m, c in MODELS])
def decomposed(request):
    model, chip_name = request.param
    graph = build_model(model)
    chip = get_chip_config(chip_name)
    decomposition = decompose_model(graph, chip)
    return decomposition, ValidityMap(decomposition)


def random_spans(decomposition, validity, count, seed=0):
    rng = np.random.default_rng(seed)
    spans = []
    for _ in range(count):
        start = int(rng.integers(0, decomposition.num_units))
        end = int(rng.integers(start + 1, validity.max_end(start) + 1))
        spans.append((start, end))
    return spans


def estimates_equal(a, b) -> bool:
    """Bit-exact comparison of two PartitionEstimates."""
    return (
        a.batch_size == b.batch_size
        and a.io.entries == b.io.entries
        and a.io.exits == b.io.exits
        and a.stage_latency_ns == b.stage_latency_ns
        and all(
            getattr(a.latency, f) == getattr(b.latency, f)
            for f in ("weight_load_ns", "weight_write_ns", "weight_replace_ns",
                      "input_load_ns", "compute_ns", "output_store_ns", "pipeline_ns")
        )
        and a.energy.as_dict() == b.energy.as_dict()
    )


class TestSpanTableEquivalence:
    def test_estimates_bit_identical_to_naive(self, decomposed):
        decomposition, validity = decomposed
        table = span_table_for(decomposition)
        naive = PartitionEstimator(decomposition.chip)
        for batch in (1, 16):
            for start, end in random_spans(decomposition, validity, 40):
                fast = table.estimate(start, end, batch)
                reference = naive.estimate(
                    Partition(decomposition, start, end), batch_size=batch
                )
                assert estimates_equal(fast, reference), (start, end, batch)

    def test_latency_scalar_matches_estimate(self, decomposed):
        decomposition, validity = decomposed
        table = span_table_for(decomposition)
        for start, end in random_spans(decomposition, validity, 40, seed=1):
            for batch in (1, 4, 16):
                assert table.latency_ns(start, end, batch) == (
                    table.estimate(start, end, batch).latency_ns
                )

    def test_span_aggregates_match_direct_sums(self, decomposed):
        decomposition, validity = decomposed
        units = decomposition.units
        for start, end in random_spans(decomposition, validity, 60, seed=2):
            assert decomposition.span_weight_bytes(start, end) == sum(
                u.weight_bytes for u in units[start:end]
            )
            assert decomposition.span_crossbars(start, end) == sum(
                u.crossbars for u in units[start:end]
            )
            partition = Partition(decomposition, start, end)
            for layer in partition.layer_names():
                owned = sum(u.cols for u in units[start:end] if u.layer_name == layer)
                total = sum(u.cols for u in decomposition.units_of_layer(layer))
                assert partition.layer_fraction(layer) == owned / total


class TestSlimProfileEquivalence:
    def test_slim_profile_matches_full_profile(self, decomposed):
        """The latency-only replay reproduces the full profile bit for bit."""
        decomposition, validity = decomposed
        estimator = PartitionEstimator(decomposition.chip)
        for start, end in random_spans(decomposition, validity, 60, seed=4):
            full = estimator.profile(Partition(decomposition, start, end))
            slim = estimator.slim_profile(Partition(decomposition, start, end))
            assert slim == (
                full.weight_replace_ns, full.fill_ns, full.bottleneck_ns
            ), (start, end)

    def test_max_core_crossbars_only_matches_mapper(self, decomposed):
        """The lean multiset packer equals the full mapper's occupancy."""
        decomposition, validity = decomposed
        index = decomposition.index
        ranges = decomposition.layer_unit_ranges
        geometries = decomposition.geometries
        chip = decomposition.chip
        for start, end in random_spans(decomposition, validity, 60, seed=5):
            partition = Partition(decomposition, start, end)
            names = partition.layer_names()
            windows, copies = [], []
            for layer in names:
                layer_start, layer_end = ranges[layer]
                lo, hi = max(layer_start, start), min(layer_end, end)
                copies.append(index.crossbar_prefix[hi] - index.crossbar_prefix[lo])
                windows.append(geometries[layer].windows)
            factors = replication_factor_list(names, windows, copies, chip.total_crossbars)
            plan = ReplicationPlan(factors=dict(zip(names, factors)))
            reference = map_tiles_to_cores(names, copies, plan, chip).max_core_crossbars
            assert max_core_crossbars_only(names, copies, factors, chip) == reference

    def test_max_core_crossbars_only_random_geometries(self):
        """Multiset replay fuzz against the full mapper on synthetic inputs."""

        class _Core:
            pass

        class _Chip:
            pass

        rng = np.random.default_rng(6)
        for _ in range(300):
            n = int(rng.integers(1, 7))
            names = [f"layer{i}" for i in range(n)]
            copies = [int(rng.integers(0, 40)) for _ in range(n)]
            factors = [int(rng.integers(1, 9)) for _ in range(n)]
            chip = _Chip()
            chip.num_cores = int(rng.integers(1, 33))
            chip.core = _Core()
            chip.core.crossbars_per_core = int(rng.integers(1, 33))
            plan = ReplicationPlan(factors=dict(zip(names, factors)))
            try:
                expected = map_tiles_to_cores(names, copies, plan, chip).max_core_crossbars
                expected_error = None
            except ValueError:
                expected, expected_error = None, ValueError
            if expected_error is None:
                assert max_core_crossbars_only(names, copies, factors, chip) == expected
            else:
                with pytest.raises(ValueError):
                    max_core_crossbars_only(names, copies, factors, chip)


class TestSpanMatrixEquivalence:
    def test_gathered_latencies_match_scalar_lookups(self, decomposed):
        decomposition, validity = decomposed
        matrix = span_matrix_for(decomposition)
        table = span_table_for(decomposition)
        spans = random_spans(decomposition, validity, 50, seed=7)
        starts = np.asarray([s for s, _ in spans], dtype=np.int64)
        ends = np.asarray([e for _, e in spans], dtype=np.int64)
        for batch in (1, 4, 16):
            gathered = matrix.gather_latency(starts, ends, batch)
            scalar = [table.latency_ns(s, e, batch) for s, e in spans]
            assert gathered.tolist() == scalar

    def test_gathered_energy_matches_estimates(self, decomposed):
        decomposition, validity = decomposed
        matrix = span_matrix_for(decomposition)
        table = span_table_for(decomposition)
        spans = random_spans(decomposition, validity, 30, seed=8)
        starts = np.asarray([s for s, _ in spans], dtype=np.int64)
        ends = np.asarray([e for _, e in spans], dtype=np.int64)
        for batch in (1, 16):
            energy, latency = matrix.gather_energy_latency(starts, ends, batch)
            for i, (s, e) in enumerate(spans):
                estimate = table.estimate(s, e, batch)
                assert energy[i] == estimate.energy_pj, (s, e, batch)
                assert latency[i] == estimate.latency_ns, (s, e, batch)

    def test_evaluate_many_matches_per_group_evaluate(self, decomposed):
        decomposition, validity = decomposed
        rng = np.random.default_rng(9)
        groups = [
            PartitionGroup.from_boundaries(
                decomposition, validity.random_partition_boundaries(rng)
            )
            for _ in range(20)
        ]
        for mode in (FitnessMode.LATENCY, FitnessMode.EDP):
            vectorized = FitnessEvaluator(
                decomposition, batch_size=8, mode=mode, use_span_matrix=True
            )
            scalar = FitnessEvaluator(
                decomposition, batch_size=8, mode=mode, use_span_matrix=False
            )
            batch_evals = vectorized.evaluate_many(groups)
            for group, evaluation in zip(groups, batch_evals):
                reference = scalar.evaluate(group)
                assert evaluation.partition_fitness == reference.partition_fitness
                assert evaluation.fitness == reference.fitness

    def test_matrix_lookups_counted_in_stats(self, decomposed):
        """Dense-path activity must show up in the shared table's counters."""
        decomposition, validity = decomposed
        matrix = span_matrix_for(decomposition)
        table = span_table_for(decomposition)
        spans = random_spans(decomposition, validity, 25, seed=10)
        starts = np.asarray([s for s, _ in spans], dtype=np.int64)
        ends = np.asarray([e for _, e in spans], dtype=np.int64)
        before = table.stats
        matrix.gather_latency(starts, ends, 4)
        middle = table.stats
        assert middle.matrix_requests - before.matrix_requests == len(spans)
        # a repeated gather is served entirely from the matrix, and the served
        # lookups are folded into the latency hit counters too
        matrix.gather_latency(starts, ends, 4)
        after = table.stats
        assert after.matrix_hits - middle.matrix_hits == len(spans)
        assert after.matrix_fills == middle.matrix_fills
        assert after.latency_hits - middle.latency_hits == len(spans)
        assert after.as_dict()["matrix_hit_rate"] > 0


class TestPartitionIOReference:
    def test_io_matches_graph_reference(self, decomposed):
        """Partition.io() equals a direct graph-traversal reference.

        The reference is a straight port of the specification (entry: input
        edge whose producer is outside or partially owned; exit: node output
        consumed outside or partially owned), computed from the graph with
        no prefix sums, templates or caches.
        """
        decomposition, validity = decomposed
        graph = decomposition.graph
        bits = decomposition.activation_bits

        def reference_io(partition):
            owned = set(partition.layer_names())
            for layer in partition.layer_names():
                owned.update(decomposition.attachments.get(layer, []))

            def fraction(name):
                node = graph.node(name)
                if not node.layer.is_crossbar_mapped:
                    return 0.0
                owned_cols = sum(
                    u.cols for u in decomposition.units[partition.start:partition.end]
                    if u.layer_name == name
                )
                total = sum(u.cols for u in decomposition.units_of_layer(name)) \
                    if name in decomposition.layer_unit_ranges else 0
                return owned_cols / total if total else 0.0

            def partially_owned(name):
                node = graph.node(name)
                return node.layer.is_crossbar_mapped and fraction(name) < 1.0

            entries = {}
            for name in sorted(owned):
                node = graph.node(name)
                for src in node.inputs:
                    full = graph.node(src).output_shape.size_bytes(bits)
                    if src not in owned:
                        size = full
                    elif partially_owned(src) and node.layer.is_crossbar_mapped:
                        size = max(1, int(round(full * (1.0 - fraction(src)))))
                    else:
                        continue
                    entries[src] = max(entries.get(src, 0), size)
            exits = {}
            for name in sorted(owned):
                node = graph.node(name)
                outside = any(
                    succ not in owned or partially_owned(succ) for succ in node.outputs
                )
                if not (not node.outputs or outside):
                    continue
                size = node.output_shape.size_bytes(bits)
                if node.layer.is_crossbar_mapped:
                    size = int(round(size * fraction(name)))
                exits[name] = max(size, 1)
            return tuple(sorted(entries.items())), tuple(sorted(exits.items()))

        for start, end in random_spans(decomposition, validity, 60, seed=3):
            partition = Partition(decomposition, start, end)
            io = partition.io()
            ref_entries, ref_exits = reference_io(partition)
            assert io.entries == ref_entries, (start, end)
            assert io.exits == ref_exits, (start, end)


class TestGAEquivalence:
    """Naive, span-table and span-matrix GA paths are bit-identical.

    Parametrised over fitness mode and batch size (on top of the module's
    model/chip fixture), covering the issue contract: ≥2 models, ≥2 batch
    sizes, latency and EDP.  Every ``GenerationRecord`` field is compared,
    along with the dedup accounting — the three paths must walk the exact
    same search trajectory and report it identically.
    """

    CONFIG = GAConfig(population_size=12, generations=5, n_select=4, n_mutate=8, seed=11)

    def _run(self, decomposition, batch_size, mode, use_span_table, use_span_matrix=False):
        evaluator = FitnessEvaluator(
            decomposition, batch_size=batch_size, mode=mode,
            use_span_table=use_span_table, use_span_matrix=use_span_matrix,
        )
        return CompassGA(decomposition, evaluator, self.CONFIG).run()

    @staticmethod
    def _assert_identical(result, reference):
        assert result.best_group.boundaries == reference.best_group.boundaries
        assert result.best_fitness == reference.best_fitness
        assert result.generations_run == reference.generations_run
        assert result.evaluations == reference.evaluations
        assert result.unique_evaluations == reference.unique_evaluations
        assert result.dedup_hits == reference.dedup_hits
        assert len(result.history) == len(reference.history)
        for record, expected in zip(result.history, reference.history):
            assert record.generation == expected.generation
            assert record.best_fitness == expected.best_fitness
            assert record.mean_fitness == expected.mean_fitness
            assert record.fitnesses == expected.fitnesses
            assert record.num_partitions == expected.num_partitions
            assert record.selected_mask == expected.selected_mask

    @pytest.mark.parametrize("mode", [FitnessMode.LATENCY, FitnessMode.EDP],
                             ids=["latency", "edp"])
    @pytest.mark.parametrize("batch_size", [4, 16])
    def test_fixed_seed_ga_identical_across_all_paths(self, decomposed, mode, batch_size):
        decomposition, _ = decomposed
        naive = self._run(decomposition, batch_size, mode, use_span_table=False)
        table = self._run(decomposition, batch_size, mode, use_span_table=True)
        dense = self._run(decomposition, batch_size, mode,
                          use_span_table=True, use_span_matrix=True)
        self._assert_identical(table, naive)
        self._assert_identical(dense, naive)
        # the dense run actually engaged the matrix engine
        assert dense.span_stats["matrix_fills"] + dense.span_stats["matrix_hits"] > 0


class TestSimulatorEquivalence:
    def test_simulator_table_path_matches_explicit_plans(self, decomposed):
        decomposition, validity = decomposed
        from repro.core.baselines import greedy_partition
        from repro.onchip.plan import build_partition_plan

        group = greedy_partition(decomposition, validity)

        plans = [build_partition_plan(p, decomposition.chip) for p in group.partitions()]
        simulator = ExecutionSimulator(decomposition.chip, batch_size=4)
        via_plans = simulator.simulate(group, plans=plans)
        via_table = simulator.simulate(group)
        assert via_plans.total_latency_ns == via_table.total_latency_ns
        assert via_plans.total_energy_pj == via_table.total_energy_pj
        assert via_plans.partition_latencies_ns() == via_table.partition_latencies_ns()
