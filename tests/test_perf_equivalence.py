"""Equivalence of the span-table engine with the naive estimation path.

The performance layer (:mod:`repro.perf`, prefix-sum span queries, the
single-layer I/O template, the batched replication allocator and the
round-robin core-mapping fast path) must be *exact*: every optimisation is
a memoisation or an algebraic restructuring, never an approximation.  These
tests pin that down:

* per-span ``PartitionEstimate``s from the span table are bit-identical to
  naive per-call estimation;
* partition I/O matches a direct, graph-based reference implementation of
  the Sec. III-B3 entry/exit analysis;
* prefix-sum span aggregates match direct summation over units;
* a fixed-seed GA run produces identical results with and without the
  span table.
"""

import numpy as np
import pytest

from repro.core.decomposition import decompose_model
from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.core.ga import CompassGA, GAConfig
from repro.core.partition import Partition, PartitionGroup
from repro.core.validity import ValidityMap
from repro.hardware.config import get_chip_config
from repro.models import build_model
from repro.onchip.estimator import PartitionEstimator
from repro.perf import span_table_for
from repro.sim.simulator import ExecutionSimulator


MODELS = [("lenet5", "S"), ("alexnet", "S")]


@pytest.fixture(scope="module", params=MODELS, ids=[f"{m}-{c}" for m, c in MODELS])
def decomposed(request):
    model, chip_name = request.param
    graph = build_model(model)
    chip = get_chip_config(chip_name)
    decomposition = decompose_model(graph, chip)
    return decomposition, ValidityMap(decomposition)


def random_spans(decomposition, validity, count, seed=0):
    rng = np.random.default_rng(seed)
    spans = []
    for _ in range(count):
        start = int(rng.integers(0, decomposition.num_units))
        end = int(rng.integers(start + 1, validity.max_end(start) + 1))
        spans.append((start, end))
    return spans


def estimates_equal(a, b) -> bool:
    """Bit-exact comparison of two PartitionEstimates."""
    return (
        a.batch_size == b.batch_size
        and a.io.entries == b.io.entries
        and a.io.exits == b.io.exits
        and a.stage_latency_ns == b.stage_latency_ns
        and all(
            getattr(a.latency, f) == getattr(b.latency, f)
            for f in ("weight_load_ns", "weight_write_ns", "weight_replace_ns",
                      "input_load_ns", "compute_ns", "output_store_ns", "pipeline_ns")
        )
        and a.energy.as_dict() == b.energy.as_dict()
    )


class TestSpanTableEquivalence:
    def test_estimates_bit_identical_to_naive(self, decomposed):
        decomposition, validity = decomposed
        table = span_table_for(decomposition)
        naive = PartitionEstimator(decomposition.chip)
        for batch in (1, 16):
            for start, end in random_spans(decomposition, validity, 40):
                fast = table.estimate(start, end, batch)
                reference = naive.estimate(
                    Partition(decomposition, start, end), batch_size=batch
                )
                assert estimates_equal(fast, reference), (start, end, batch)

    def test_latency_scalar_matches_estimate(self, decomposed):
        decomposition, validity = decomposed
        table = span_table_for(decomposition)
        for start, end in random_spans(decomposition, validity, 40, seed=1):
            for batch in (1, 4, 16):
                assert table.latency_ns(start, end, batch) == (
                    table.estimate(start, end, batch).latency_ns
                )

    def test_span_aggregates_match_direct_sums(self, decomposed):
        decomposition, validity = decomposed
        units = decomposition.units
        for start, end in random_spans(decomposition, validity, 60, seed=2):
            assert decomposition.span_weight_bytes(start, end) == sum(
                u.weight_bytes for u in units[start:end]
            )
            assert decomposition.span_crossbars(start, end) == sum(
                u.crossbars for u in units[start:end]
            )
            partition = Partition(decomposition, start, end)
            for layer in partition.layer_names():
                owned = sum(u.cols for u in units[start:end] if u.layer_name == layer)
                total = sum(u.cols for u in decomposition.units_of_layer(layer))
                assert partition.layer_fraction(layer) == owned / total


class TestPartitionIOReference:
    def test_io_matches_graph_reference(self, decomposed):
        """Partition.io() equals a direct graph-traversal reference.

        The reference is a straight port of the specification (entry: input
        edge whose producer is outside or partially owned; exit: node output
        consumed outside or partially owned), computed from the graph with
        no prefix sums, templates or caches.
        """
        decomposition, validity = decomposed
        graph = decomposition.graph
        bits = decomposition.activation_bits

        def reference_io(partition):
            owned = set(partition.layer_names())
            for layer in partition.layer_names():
                owned.update(decomposition.attachments.get(layer, []))

            def fraction(name):
                node = graph.node(name)
                if not node.layer.is_crossbar_mapped:
                    return 0.0
                owned_cols = sum(
                    u.cols for u in decomposition.units[partition.start:partition.end]
                    if u.layer_name == name
                )
                total = sum(u.cols for u in decomposition.units_of_layer(name)) \
                    if name in decomposition.layer_unit_ranges else 0
                return owned_cols / total if total else 0.0

            def partially_owned(name):
                node = graph.node(name)
                return node.layer.is_crossbar_mapped and fraction(name) < 1.0

            entries = {}
            for name in sorted(owned):
                node = graph.node(name)
                for src in node.inputs:
                    full = graph.node(src).output_shape.size_bytes(bits)
                    if src not in owned:
                        size = full
                    elif partially_owned(src) and node.layer.is_crossbar_mapped:
                        size = max(1, int(round(full * (1.0 - fraction(src)))))
                    else:
                        continue
                    entries[src] = max(entries.get(src, 0), size)
            exits = {}
            for name in sorted(owned):
                node = graph.node(name)
                outside = any(
                    succ not in owned or partially_owned(succ) for succ in node.outputs
                )
                if not (not node.outputs or outside):
                    continue
                size = node.output_shape.size_bytes(bits)
                if node.layer.is_crossbar_mapped:
                    size = int(round(size * fraction(name)))
                exits[name] = max(size, 1)
            return tuple(sorted(entries.items())), tuple(sorted(exits.items()))

        for start, end in random_spans(decomposition, validity, 60, seed=3):
            partition = Partition(decomposition, start, end)
            io = partition.io()
            ref_entries, ref_exits = reference_io(partition)
            assert io.entries == ref_entries, (start, end)
            assert io.exits == ref_exits, (start, end)


class TestGAEquivalence:
    CONFIG = GAConfig(population_size=12, generations=5, n_select=4, n_mutate=8, seed=11)

    def _run(self, decomposition, use_span_table, mode=FitnessMode.LATENCY):
        evaluator = FitnessEvaluator(
            decomposition, batch_size=4, mode=mode, use_span_table=use_span_table
        )
        return CompassGA(decomposition, evaluator, self.CONFIG).run()

    def test_fixed_seed_ga_identical_with_and_without_table(self, decomposed):
        decomposition, _ = decomposed
        fast = self._run(decomposition, use_span_table=True)
        naive = self._run(decomposition, use_span_table=False)
        assert fast.best_group.boundaries == naive.best_group.boundaries
        assert fast.best_fitness == naive.best_fitness
        assert [r.best_fitness for r in fast.history] == [
            r.best_fitness for r in naive.history
        ]
        assert [r.mean_fitness for r in fast.history] == [
            r.mean_fitness for r in naive.history
        ]
        assert [r.fitnesses for r in fast.history] == [r.fitnesses for r in naive.history]

    def test_edp_mode_identical_with_and_without_table(self, decomposed):
        decomposition, _ = decomposed
        fast = self._run(decomposition, use_span_table=True, mode=FitnessMode.EDP)
        naive = self._run(decomposition, use_span_table=False, mode=FitnessMode.EDP)
        assert fast.best_group.boundaries == naive.best_group.boundaries
        assert fast.best_fitness == naive.best_fitness


class TestSimulatorEquivalence:
    def test_simulator_table_path_matches_explicit_plans(self, decomposed):
        decomposition, validity = decomposed
        from repro.core.baselines import greedy_partition
        from repro.onchip.plan import build_partition_plan

        group = greedy_partition(decomposition, validity)

        plans = [build_partition_plan(p, decomposition.chip) for p in group.partitions()]
        simulator = ExecutionSimulator(decomposition.chip, batch_size=4)
        via_plans = simulator.simulate(group, plans=plans)
        via_table = simulator.simulate(group)
        assert via_plans.total_latency_ns == via_table.total_latency_ns
        assert via_plans.total_energy_pj == via_table.total_energy_pj
        assert via_plans.partition_latencies_ns() == via_table.partition_latencies_ns()
