"""Tests for the instruction scheduler."""

import pytest

from repro.core.baselines import greedy_partition, layerwise_partition
from repro.isa.instructions import Opcode
from repro.isa.scheduler import InstructionScheduler
from repro.onchip.plan import build_partition_plan


@pytest.fixture(scope="module")
def scheduled_partition(resnet18_decomposition_m, chip_m):
    d = resnet18_decomposition_m
    group = greedy_partition(d)
    plan = build_partition_plan(group.partition(0), chip_m)
    scheduler = InstructionScheduler(chip_m, batch_size=2)
    return d, plan, scheduler.schedule_partition(plan, partition_index=0)


class TestPartitionSchedule:
    def test_programs_only_for_active_cores(self, scheduled_partition, chip_m):
        _, plan, schedule = scheduled_partition
        assert schedule.programs
        assert set(schedule.programs) <= set(range(chip_m.num_cores))
        for core_id, program in schedule.programs.items():
            assert program.core_id == core_id
            assert len(program) > 0

    def test_weight_prologue_on_every_mapped_core(self, scheduled_partition):
        _, plan, schedule = scheduled_partition
        mapped_cores = {a.core_id for a in plan.core_mapping.assignments if a.entries}
        for core_id in mapped_cores:
            opcodes = [inst.opcode for inst in schedule.programs[core_id]]
            assert Opcode.LOAD_WEIGHT in opcodes
            assert Opcode.WRITE_WEIGHT in opcodes

    def test_write_weight_tiles_match_mapping(self, scheduled_partition):
        _, plan, schedule = scheduled_partition
        written = schedule.count_by_opcode()[Opcode.WRITE_WEIGHT]
        assert written == plan.crossbars_used

    def test_mvmul_present_for_every_slice(self, scheduled_partition):
        _, plan, schedule = scheduled_partition
        mvm_layers = {
            inst.layer
            for program in schedule.programs.values()
            for inst in program
            if inst.opcode is Opcode.MVMUL
        }
        assert mvm_layers == {s.layer_name for s in plan.slices}

    def test_entry_loads_and_exit_stores_per_sample(self, scheduled_partition):
        _, plan, schedule = scheduled_partition
        io = plan.partition.io()
        counts = schedule.count_by_opcode()
        batch = 2
        assert counts.get(Opcode.LOAD_DATA, 0) == batch * io.num_entries
        assert counts.get(Opcode.STORE_DATA, 0) == batch * io.num_exits

    def test_dram_trace_matches_memory_instructions(self, scheduled_partition):
        _, plan, schedule = scheduled_partition
        trace_reads = sum(1 for r in schedule.dram_trace if not r.is_write)
        trace_writes = sum(1 for r in schedule.dram_trace if r.is_write)
        counts = schedule.count_by_opcode()
        assert trace_writes == counts.get(Opcode.STORE_DATA, 0)
        assert trace_reads == counts.get(Opcode.LOAD_DATA, 0) + sum(
            1
            for program in schedule.programs.values()
            for inst in program
            if inst.opcode is Opcode.LOAD_WEIGHT
        )

    def test_trace_times_non_decreasing(self, scheduled_partition):
        _, _, schedule = scheduled_partition
        times = [r.issue_time_ns for r in schedule.dram_trace]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_send_recv_paired(self, scheduled_partition):
        _, _, schedule = scheduled_partition
        counts = schedule.count_by_opcode()
        assert counts.get(Opcode.SEND, 0) == counts.get(Opcode.RECV, 0)

    def test_local_memory_stats_reported(self, scheduled_partition):
        _, _, schedule = scheduled_partition
        assert set(schedule.local_memory_peak) == set(schedule.programs)
        assert all(v >= 0 for v in schedule.local_memory_peak.values())
        assert all(v >= 0 for v in schedule.local_memory_overflow.values())

    def test_total_instructions_positive(self, scheduled_partition):
        _, _, schedule = scheduled_partition
        assert schedule.total_instructions > 0


class TestModelSchedule:
    def test_schedule_model_all_partitions(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        group = layerwise_partition(d)
        plans = [build_partition_plan(p, chip_m) for p in group.partitions()]
        scheduler = InstructionScheduler(chip_m, batch_size=1)
        model_schedule = scheduler.schedule_model(plans)
        assert len(model_schedule.partitions) == group.num_partitions
        assert model_schedule.total_instructions == sum(
            s.total_instructions for s in model_schedule.partitions
        )

    def test_model_trace_sorted(self, resnet18_decomposition_m, chip_m):
        d = resnet18_decomposition_m
        group = greedy_partition(d)
        plans = [build_partition_plan(p, chip_m) for p in group.partitions()]
        schedule = InstructionScheduler(chip_m, batch_size=1).schedule_model(plans)
        trace = schedule.dram_trace()
        times = [r.issue_time_ns for r in trace]
        assert times == sorted(times)

    def test_weight_bytes_in_trace_cover_model(self, resnet18_decomposition_m, chip_m):
        """Every partition's weights are loaded from DRAM at least once."""
        d = resnet18_decomposition_m
        group = greedy_partition(d)
        plans = [build_partition_plan(p, chip_m) for p in group.partitions()]
        schedule = InstructionScheduler(chip_m, batch_size=1).schedule_model(plans)
        weight_bytes = sum(
            r.size_bytes for r in schedule.dram_trace() if r.tag.startswith("weight:")
        )
        assert weight_bytes >= d.total_weight_bytes()

    def test_invalid_batch(self, chip_m):
        with pytest.raises(ValueError):
            InstructionScheduler(chip_m, batch_size=0)
