"""Tests for the benchmark record diff (``benchmarks/compare_bench.py``).

The regression gate (``scripts/check_bench_regression.py``) builds on
``compare()``; the key contract tested here is that benchmark keys present
in only one record never fail the diff — new headliners (like the
partition-search DP/gap benchmarks) must be comparable against committed
``BENCH_<date>.json`` baselines that predate them.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

from compare_bench import compare, load_means  # noqa: E402


def write_record(path, means, cpu_brand="TestCPU", cpu_count=8):
    """Write a minimal pytest-benchmark JSON record."""
    record = {
        "machine_info": {"cpu": {"brand_raw": cpu_brand, "count": cpu_count}},
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ],
    }
    path.write_text(json.dumps(record))
    return str(path)


class TestLoadMeans:
    def test_reads_means_and_profile(self, tmp_path):
        path = write_record(tmp_path / "a.json", {"bench_a": 1.5, "bench_b": 0.25})
        means, profile = load_means(path)
        assert means == {"bench_a": 1.5, "bench_b": 0.25}
        assert profile == {"brand": "TestCPU", "count": 8}

    def test_tolerates_missing_stats(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps({
            "machine_info": {"cpu": {}},
            "benchmarks": [
                {"fullname": "ok", "stats": {"mean": 1.0}},
                {"fullname": "broken", "stats": None},
                {"fullname": "empty", "stats": {}},
            ],
        }))
        means, _ = load_means(str(path))
        assert means == {"ok": 1.0}


class TestCompareTolerance:
    def test_key_only_in_new_record_passes(self, tmp_path, capsys):
        """A new headliner absent from the baseline must not fail the diff."""
        old = write_record(tmp_path / "old.json", {"fig6": 1.0})
        new = write_record(tmp_path / "new.json", {"fig6": 1.0, "dp_optimal": 0.5})
        assert compare(old, new, fail_above_pct=20.0) == 0
        out = capsys.readouterr().out
        assert "dp_optimal" in out
        assert "REGRESSION" not in out

    def test_key_only_in_old_record_passes(self, tmp_path):
        old = write_record(tmp_path / "old.json", {"fig6": 1.0, "retired": 2.0})
        new = write_record(tmp_path / "new.json", {"fig6": 1.0})
        assert compare(old, new, fail_above_pct=20.0) == 0

    def test_disjoint_records_pass(self, tmp_path, capsys):
        old = write_record(tmp_path / "old.json", {"fig6": 1.0})
        new = write_record(tmp_path / "new.json", {"dp_optimal": 0.5})
        assert compare(old, new, fail_above_pct=20.0) == 0
        assert "no benchmarks in common" in capsys.readouterr().out

    def test_common_regression_still_fails(self, tmp_path, capsys):
        old = write_record(tmp_path / "old.json", {"fig6": 1.0, "only_old": 3.0})
        new = write_record(tmp_path / "new.json", {"fig6": 2.0, "only_new": 0.1})
        assert compare(old, new, fail_above_pct=20.0) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_improvement_passes(self, tmp_path):
        old = write_record(tmp_path / "old.json", {"fig6": 2.0})
        new = write_record(tmp_path / "new.json", {"fig6": 1.0})
        assert compare(old, new, fail_above_pct=20.0) == 0

    def test_machine_profile_mismatch_warns(self, tmp_path, capsys):
        old = write_record(tmp_path / "old.json", {"fig6": 1.0}, cpu_brand="A")
        new = write_record(tmp_path / "new.json", {"fig6": 1.0}, cpu_brand="B")
        assert compare(old, new, fail_above_pct=20.0) == 0
        assert "machine profiles differ" in capsys.readouterr().out
