"""Tests for repro.graph.layers: layer constructors, weights, shape inference."""

import pytest

from repro.graph.layers import (
    Layer,
    LayerKind,
    ShapeInferenceError,
    make_add,
    make_avgpool,
    make_batchnorm,
    make_concat,
    make_conv2d,
    make_dropout,
    make_flatten,
    make_global_avgpool,
    make_input,
    make_linear,
    make_maxpool,
    make_relu,
    make_softmax,
)
from repro.graph.tensor import TensorShape


class TestClassification:
    def test_conv_is_crossbar_mapped(self):
        assert make_conv2d("c", 3, 8, 3).is_crossbar_mapped

    def test_linear_is_crossbar_mapped(self):
        assert make_linear("l", 16, 8).is_crossbar_mapped

    def test_relu_is_not_crossbar_mapped(self):
        assert not make_relu("r").is_crossbar_mapped

    def test_relu_is_vfu_op(self):
        assert make_relu("r").is_vfu_op

    def test_pool_is_vfu_op(self):
        assert make_maxpool("p", 2).is_vfu_op
        assert make_avgpool("p2", 2).is_vfu_op

    def test_conv_is_not_vfu_op(self):
        assert not make_conv2d("c", 3, 8, 3).is_vfu_op

    def test_batchnorm_has_weights_but_not_crossbar(self):
        bn = make_batchnorm("bn", 32)
        assert bn.has_weights
        assert not bn.is_crossbar_mapped

    def test_dropout_flatten_have_no_weights(self):
        assert not make_dropout("d").has_weights
        assert not make_flatten("f").has_weights


class TestWeightCounts:
    def test_conv_weight_count_with_bias(self):
        conv = make_conv2d("c", in_channels=3, out_channels=64, kernel_size=3)
        assert conv.weight_count() == 64 * 3 * 9 + 64

    def test_conv_weight_count_without_bias(self):
        conv = make_conv2d("c", 3, 64, 3, bias=False)
        assert conv.weight_count() == 64 * 3 * 9

    def test_grouped_conv_weight_count(self):
        conv = make_conv2d("c", 32, 32, 3, bias=False, groups=32)
        assert conv.weight_count() == 32 * 1 * 9

    def test_linear_weight_count(self):
        fc = make_linear("fc", 512, 1000)
        assert fc.weight_count() == 512 * 1000 + 1000

    def test_linear_weight_count_no_bias(self):
        fc = make_linear("fc", 512, 1000, bias=False)
        assert fc.weight_count() == 512 * 1000

    def test_batchnorm_weight_count(self):
        assert make_batchnorm("bn", 64).weight_count() == 128

    def test_relu_weight_count_zero(self):
        assert make_relu("r").weight_count() == 0

    def test_weight_bytes_4bit(self):
        fc = make_linear("fc", 100, 10, bias=False)
        assert fc.weight_bytes(4) == 500

    def test_weight_bytes_rounds_up(self):
        fc = make_linear("fc", 3, 3, bias=False)  # 9 weights * 4 bits = 36 bits
        assert fc.weight_bytes(4) == 5

    def test_conv_groups_must_divide_channels(self):
        with pytest.raises(ValueError):
            make_conv2d("c", 10, 12, 3, groups=4)


class TestMatrixGeometry:
    def test_conv_matrix_rows_cols(self):
        conv = make_conv2d("c", 64, 128, 3)
        assert conv.matrix_rows() == 64 * 9
        assert conv.matrix_cols() == 128

    def test_depthwise_matrix_rows(self):
        conv = make_conv2d("c", 64, 64, 3, groups=64)
        assert conv.matrix_rows() == 9

    def test_linear_matrix_rows_cols(self):
        fc = make_linear("fc", 4096, 1000)
        assert fc.matrix_rows() == 4096
        assert fc.matrix_cols() == 1000

    def test_relu_matrix_dims_zero(self):
        assert make_relu("r").matrix_rows() == 0
        assert make_relu("r").matrix_cols() == 0


class TestShapeInference:
    def test_input_shape(self):
        layer = make_input("in", 3, 224, 224)
        assert layer.infer_output_shape([]) == TensorShape.chw(3, 224, 224)

    def test_conv_same_padding(self):
        conv = make_conv2d("c", 3, 64, 3, stride=1, padding=1)
        out = conv.infer_output_shape([TensorShape.chw(3, 32, 32)])
        assert out == TensorShape.chw(64, 32, 32)

    def test_conv_stride_two(self):
        conv = make_conv2d("c", 3, 64, 7, stride=2, padding=3)
        out = conv.infer_output_shape([TensorShape.chw(3, 224, 224)])
        assert out == TensorShape.chw(64, 112, 112)

    def test_conv_no_padding(self):
        conv = make_conv2d("c", 1, 6, 5)
        out = conv.infer_output_shape([TensorShape.chw(1, 32, 32)])
        assert out == TensorShape.chw(6, 28, 28)

    def test_conv_channel_mismatch(self):
        conv = make_conv2d("c", 3, 8, 3)
        with pytest.raises(ShapeInferenceError):
            conv.infer_output_shape([TensorShape.chw(4, 32, 32)])

    def test_conv_rejects_flat_input(self):
        conv = make_conv2d("c", 3, 8, 3)
        with pytest.raises(ShapeInferenceError):
            conv.infer_output_shape([TensorShape.flat(100)])

    def test_conv_rejects_multiple_inputs(self):
        conv = make_conv2d("c", 3, 8, 3)
        shape = TensorShape.chw(3, 8, 8)
        with pytest.raises(ShapeInferenceError):
            conv.infer_output_shape([shape, shape])

    def test_conv_too_small_input(self):
        conv = make_conv2d("c", 3, 8, 7)
        with pytest.raises(ShapeInferenceError):
            conv.infer_output_shape([TensorShape.chw(3, 4, 4)])

    def test_linear(self):
        fc = make_linear("fc", 100, 10)
        assert fc.infer_output_shape([TensorShape.flat(100)]) == TensorShape.flat(10)

    def test_linear_accepts_unflattened_input_of_right_size(self):
        fc = make_linear("fc", 64, 10)
        assert fc.infer_output_shape([TensorShape.chw(4, 4, 4)]) == TensorShape.flat(10)

    def test_linear_feature_mismatch(self):
        fc = make_linear("fc", 100, 10)
        with pytest.raises(ShapeInferenceError):
            fc.infer_output_shape([TensorShape.flat(99)])

    def test_maxpool(self):
        pool = make_maxpool("p", 2, 2)
        out = pool.infer_output_shape([TensorShape.chw(64, 32, 32)])
        assert out == TensorShape.chw(64, 16, 16)

    def test_maxpool_with_padding(self):
        pool = make_maxpool("p", 3, 2, padding=1)
        out = pool.infer_output_shape([TensorShape.chw(64, 112, 112)])
        assert out == TensorShape.chw(64, 56, 56)

    def test_maxpool_stride_defaults_to_kernel(self):
        pool = make_maxpool("p", 2)
        out = pool.infer_output_shape([TensorShape.chw(8, 8, 8)])
        assert out == TensorShape.chw(8, 4, 4)

    def test_global_avgpool(self):
        gap = make_global_avgpool("gap")
        out = gap.infer_output_shape([TensorShape.chw(512, 7, 7)])
        assert out == TensorShape.chw(512, 1, 1)

    def test_relu_preserves_shape(self):
        relu = make_relu("r")
        shape = TensorShape.chw(64, 56, 56)
        assert relu.infer_output_shape([shape]) == shape

    def test_batchnorm_preserves_shape(self):
        bn = make_batchnorm("bn", 64)
        shape = TensorShape.chw(64, 56, 56)
        assert bn.infer_output_shape([shape]) == shape

    def test_add_requires_matching_shapes(self):
        add = make_add("a")
        shape = TensorShape.chw(64, 56, 56)
        assert add.infer_output_shape([shape, shape]) == shape
        with pytest.raises(ShapeInferenceError):
            add.infer_output_shape([shape, TensorShape.chw(64, 28, 28)])

    def test_add_requires_two_inputs(self):
        with pytest.raises(ShapeInferenceError):
            make_add("a").infer_output_shape([TensorShape.chw(1, 2, 2)])

    def test_concat_sums_channels(self):
        concat = make_concat("c")
        a = TensorShape.chw(64, 28, 28)
        b = TensorShape.chw(32, 28, 28)
        assert concat.infer_output_shape([a, b]) == TensorShape.chw(96, 28, 28)

    def test_concat_rejects_spatial_mismatch(self):
        concat = make_concat("c")
        with pytest.raises(ShapeInferenceError):
            concat.infer_output_shape([TensorShape.chw(8, 28, 28), TensorShape.chw(8, 14, 14)])

    def test_flatten(self):
        flat = make_flatten("f")
        assert flat.infer_output_shape([TensorShape.chw(512, 7, 7)]) == TensorShape.flat(25088)

    def test_dropout_softmax_preserve_shape(self):
        shape = TensorShape.flat(1000)
        assert make_dropout("d").infer_output_shape([shape]) == shape
        assert make_softmax("s").infer_output_shape([shape]) == shape

    def test_layer_with_no_inputs_fails(self):
        with pytest.raises(ShapeInferenceError):
            make_relu("r").infer_output_shape([])


class TestExecutionGeometry:
    def test_conv_num_windows(self):
        conv = make_conv2d("c", 3, 8, 3, padding=1)
        out = conv.infer_output_shape([TensorShape.chw(3, 32, 32)])
        assert conv.num_windows(out) == 32 * 32

    def test_linear_num_windows_is_one(self):
        fc = make_linear("fc", 100, 10)
        assert fc.num_windows(TensorShape.flat(10)) == 1

    def test_relu_num_windows_zero(self):
        assert make_relu("r").num_windows(TensorShape.flat(10)) == 0

    def test_vfu_elements(self):
        relu = make_relu("r")
        assert relu.vfu_elements(TensorShape.chw(4, 4, 4)) == 64
        conv = make_conv2d("c", 3, 8, 3)
        assert conv.vfu_elements(TensorShape.chw(8, 4, 4)) == 0

    def test_str_contains_name_and_kind(self):
        text = str(make_conv2d("conv1", 3, 8, 3))
        assert "conv1" in text
        assert "conv2d" in text
