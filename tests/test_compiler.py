"""Tests for the end-to-end CompassCompiler driver."""

import pytest

from repro.core.compiler import CompassCompiler, CompilerOptions, compile_model
from repro.core.fitness import FitnessMode
from repro.core.ga import GAConfig
from repro.hardware import CHIP_M, CHIP_S

TINY_GA = GAConfig(population_size=10, generations=4, n_select=3, n_mutate=7,
                   early_stop_patience=3, seed=0)


class TestOptions:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            CompilerOptions(scheme="random")

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            CompilerOptions(batch_size=0)

    def test_defaults(self):
        options = CompilerOptions()
        assert options.scheme == "compass"
        assert options.weight_bits == 4
        assert options.fitness_mode is FitnessMode.LATENCY


class TestBaselineCompilation:
    @pytest.mark.parametrize("scheme", ["greedy", "layerwise"])
    def test_baseline_compile_squeezenet(self, squeezenet_graph, scheme):
        result = compile_model(squeezenet_graph, CHIP_S, scheme=scheme, batch_size=2)
        assert result.supported
        assert result.num_partitions >= 1
        assert result.report.throughput > 0
        assert result.schedule is not None
        assert result.ga_result is None

    def test_group_covers_all_units(self, resnet18_graph):
        result = compile_model(resnet18_graph, CHIP_M, scheme="greedy", batch_size=1,
                               generate_instructions=False)
        assert result.group.boundaries[-1] == result.decomposition.num_units

    def test_plans_match_partitions(self, resnet18_graph):
        result = compile_model(resnet18_graph, CHIP_M, scheme="greedy", batch_size=1,
                               generate_instructions=False)
        assert len(result.plans) == result.num_partitions

    def test_summary_text(self, squeezenet_graph):
        result = compile_model(squeezenet_graph, CHIP_S, scheme="greedy", batch_size=2)
        text = result.summary()
        assert "partitions" in text
        assert "throughput" in text
        assert "Chip-S" in text

    def test_instruction_generation_toggle(self, squeezenet_graph):
        with_instr = compile_model(squeezenet_graph, CHIP_S, scheme="greedy", batch_size=1)
        without = compile_model(squeezenet_graph, CHIP_S, scheme="greedy", batch_size=1,
                                generate_instructions=False)
        assert with_instr.schedule is not None
        assert without.schedule is None

    def test_dram_trace_simulation_option(self, squeezenet_graph):
        result = compile_model(squeezenet_graph, CHIP_S, scheme="greedy", batch_size=1,
                               simulate_dram_trace=True)
        assert result.report.dram_stats is not None


class TestCompassCompilation:
    def test_compass_compile_resnet18(self, resnet18_graph):
        result = compile_model(resnet18_graph, CHIP_M, scheme="compass", batch_size=4,
                               ga_config=TINY_GA, generate_instructions=False)
        assert result.supported
        assert result.ga_result is not None
        assert result.group.is_valid(CHIP_M.total_crossbars)

    def test_compass_beats_baselines_on_resnet18(self, resnet18_graph):
        """The paper's headline: COMPASS >= greedy and layerwise throughput."""
        kwargs = dict(batch_size=8, generate_instructions=False)
        compass = compile_model(resnet18_graph, CHIP_M, scheme="compass",
                                ga_config=TINY_GA, **kwargs)
        greedy = compile_model(resnet18_graph, CHIP_M, scheme="greedy", **kwargs)
        layerwise = compile_model(resnet18_graph, CHIP_M, scheme="layerwise", **kwargs)
        assert compass.throughput >= greedy.throughput * 0.999
        assert compass.throughput >= layerwise.throughput * 0.999

    def test_edp_fitness_mode(self, resnet18_graph):
        result = compile_model(resnet18_graph, CHIP_M, scheme="compass", batch_size=4,
                               ga_config=TINY_GA, fitness_mode=FitnessMode.EDP,
                               generate_instructions=False)
        assert result.supported
        assert result.edp_per_inference > 0

    def test_compiler_reusable_across_models(self, squeezenet_graph, lenet_graph):
        compiler = CompassCompiler(CHIP_S, CompilerOptions(scheme="greedy", batch_size=1,
                                                           generate_instructions=False))
        first = compiler.compile(squeezenet_graph)
        second = compiler.compile(lenet_graph)
        assert first.graph.name != second.graph.name
        assert first.report.throughput != second.report.throughput

    def test_throughput_increases_with_batch(self, resnet18_graph):
        """Fig. 6: batching amortises weight replacement."""
        small = compile_model(resnet18_graph, CHIP_M, scheme="greedy", batch_size=1,
                              generate_instructions=False)
        large = compile_model(resnet18_graph, CHIP_M, scheme="greedy", batch_size=16,
                              generate_instructions=False)
        assert large.throughput > small.throughput
