"""Tests for repro.sim.metrics."""

import math

import pytest

from repro.sim.metrics import (
    edp_mj_ms,
    energy_per_inference_mj,
    geometric_mean,
    speedup,
    throughput_inferences_per_sec,
)


class TestThroughput:
    def test_one_inference_per_ms(self):
        assert throughput_inferences_per_sec(1, 1e6) == pytest.approx(1000.0)

    def test_batch_scales_throughput(self):
        assert throughput_inferences_per_sec(16, 1e6) == pytest.approx(16_000.0)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            throughput_inferences_per_sec(1, 0)


class TestEnergy:
    def test_energy_per_inference(self):
        # 2e9 pJ over 2 inferences = 1e9 pJ = 1 mJ each
        assert energy_per_inference_mj(2e9, 2) == pytest.approx(1.0)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            energy_per_inference_mj(1.0, 0)

    def test_edp(self):
        # 1 mJ per inference, 1 ms per inference -> EDP 1 mJ*ms
        assert edp_mj_ms(total_energy_pj=1e9, total_latency_ns=1e6, batch_size=1) == pytest.approx(1.0)

    def test_edp_batch_amortisation(self):
        single = edp_mj_ms(1e9, 1e6, 1)
        batched = edp_mj_ms(1e9, 1e6, 4)  # same totals spread over 4 samples
        assert batched == pytest.approx(single / 16)


class TestSpeedup:
    def test_speedup(self):
        assert speedup(2.0, 1.0) == pytest.approx(2.0)
        assert speedup(1.0, 2.0) == pytest.approx(0.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_matches_math(self):
        values = [1.2, 3.4, 5.6, 7.8]
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert geometric_mean(values) == pytest.approx(expected)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
