"""Tests for repro.graph.traversal."""

import pytest

from repro.graph import GraphBuilder
from repro.graph.traversal import (
    ancestors,
    attach_non_crossbar_layers,
    crossbar_layer_order,
    descendants,
    producing_crossbar_layer,
    reverse_topological_order,
    topological_order,
)


@pytest.fixture()
def residual_graph():
    b = GraphBuilder("residual")
    b.add_input(4, 8, 8)
    trunk = b.add_conv("conv1", 4, 4, 3, padding=1)
    b.add_relu(name="relu1")
    b.add_conv("conv2", 4, 4, 3, padding=1)
    b.add_add(name="add", inputs=[b.current, trunk])
    b.add_relu(name="relu2")
    b.add_flatten(name="flat")
    b.add_linear("fc", 4 * 8 * 8, 10)
    return b.build()


class TestTopologicalOrder:
    def test_order_respects_dependencies(self, residual_graph):
        order = topological_order(residual_graph)
        assert order.index("conv1") < order.index("conv2")
        assert order.index("conv2") < order.index("add")
        assert order.index("add") < order.index("fc")

    def test_all_nodes_present(self, residual_graph):
        assert set(topological_order(residual_graph)) == set(residual_graph.node_names())

    def test_reverse_order(self, residual_graph):
        assert reverse_topological_order(residual_graph) == list(
            reversed(topological_order(residual_graph))
        )

    def test_paper_model_order(self, resnet18_graph):
        order = topological_order(resnet18_graph)
        assert len(order) == len(resnet18_graph)
        assert order[0] == "input"


class TestAncestorsDescendants:
    def test_ancestors(self, residual_graph):
        assert ancestors(residual_graph, "add") == {"input", "conv1", "relu1", "conv2"}

    def test_descendants(self, residual_graph):
        assert "fc" in descendants(residual_graph, "conv1")
        assert descendants(residual_graph, "fc") == set()

    def test_input_has_no_ancestors(self, residual_graph):
        assert ancestors(residual_graph, "input") == set()


class TestCrossbarLayerOrder:
    def test_only_conv_linear(self, residual_graph):
        assert crossbar_layer_order(residual_graph) == ["conv1", "conv2", "fc"]

    def test_resnet18_count(self, resnet18_graph):
        layers = crossbar_layer_order(resnet18_graph)
        # 20 convs (incl. 3 downsample 1x1) + 1 fc = 21
        assert len(layers) == 21
        assert layers[0] == "conv1"
        assert layers[-1] == "fc"

    def test_vgg16_count(self, vgg16_graph):
        assert len(crossbar_layer_order(vgg16_graph)) == 16


class TestProducingCrossbarLayer:
    def test_direct_consumer(self, residual_graph):
        assert producing_crossbar_layer(residual_graph, "relu1") == "conv1"

    def test_crossbar_layer_is_its_own_producer(self, residual_graph):
        assert producing_crossbar_layer(residual_graph, "conv2") == "conv2"

    def test_join_picks_latest_producer(self, residual_graph):
        # the add joins conv1 (skip) and conv2 (trunk); conv2 is later in topo order
        assert producing_crossbar_layer(residual_graph, "add") == "conv2"

    def test_chain_through_non_crossbar(self, residual_graph):
        assert producing_crossbar_layer(residual_graph, "flat") == "conv2"

    def test_input_has_no_producer(self, residual_graph):
        with pytest.raises(ValueError):
            producing_crossbar_layer(residual_graph, "input")


class TestAttachment:
    def test_every_non_crossbar_node_attached_once(self, residual_graph):
        attachment = attach_non_crossbar_layers(residual_graph)
        attached = [n for nodes in attachment.values() for n in nodes]
        non_crossbar = [
            n.name
            for n in residual_graph.nodes()
            if not n.layer.is_crossbar_mapped and n.kind.value != "input"
        ]
        assert sorted(attached) == sorted(non_crossbar)

    def test_attachment_keys_are_crossbar_layers(self, residual_graph):
        attachment = attach_non_crossbar_layers(residual_graph)
        assert set(attachment) == {"conv1", "conv2", "fc"}

    def test_add_attached_to_conv2(self, residual_graph):
        attachment = attach_non_crossbar_layers(residual_graph)
        assert "add" in attachment["conv2"]
        assert "relu1" in attachment["conv1"]

    def test_resnet18_attachment_total(self, resnet18_graph):
        attachment = attach_non_crossbar_layers(resnet18_graph)
        attached = [n for nodes in attachment.values() for n in nodes]
        non_crossbar = [
            n.name
            for n in resnet18_graph.nodes()
            if not n.layer.is_crossbar_mapped and n.kind.value != "input"
        ]
        assert len(attached) == len(non_crossbar)
