"""Tests for graph (de)serialization."""

import json

import pytest

from repro.graph.serialize import graph_from_dict, graph_to_dict, load_graph, save_graph


class TestRoundTrip:
    def test_small_cnn_round_trip(self, small_cnn_graph):
        data = graph_to_dict(small_cnn_graph)
        rebuilt = graph_from_dict(data)
        assert rebuilt.name == small_cnn_graph.name
        assert rebuilt.node_names() == small_cnn_graph.node_names()
        for name in small_cnn_graph.node_names():
            assert rebuilt.node(name).output_shape == small_cnn_graph.node(name).output_shape
            assert rebuilt.node(name).inputs == small_cnn_graph.node(name).inputs

    def test_paper_models_round_trip(self, resnet18_graph, squeezenet_graph):
        for graph in (resnet18_graph, squeezenet_graph):
            rebuilt = graph_from_dict(graph_to_dict(graph))
            assert rebuilt.total_weight_count() == graph.total_weight_count()
            assert len(rebuilt) == len(graph)

    def test_dict_is_json_serialisable(self, lenet_graph):
        json.dumps(graph_to_dict(lenet_graph))

    def test_file_round_trip(self, lenet_graph, tmp_path):
        path = tmp_path / "lenet.json"
        save_graph(lenet_graph, str(path))
        rebuilt = load_graph(str(path))
        assert rebuilt.node_names() == lenet_graph.node_names()


class TestErrors:
    def test_missing_nodes_key(self):
        with pytest.raises(ValueError):
            graph_from_dict({"name": "x"})

    def test_unknown_kind(self):
        data = {"name": "x", "nodes": [{"name": "in", "kind": "hologram", "attrs": {}, "inputs": []}]}
        with pytest.raises(ValueError, match="unknown layer kind"):
            graph_from_dict(data)

    def test_inconsistent_shapes_rejected(self, lenet_graph):
        data = graph_to_dict(lenet_graph)
        # corrupt a conv layer's channel count so shape inference fails on load
        for node in data["nodes"]:
            if node["kind"] == "conv2d":
                node["attrs"]["in_channels"] += 1
                break
        with pytest.raises(Exception):
            graph_from_dict(data)

    def test_compiles_after_round_trip(self, squeezenet_graph):
        from repro.core.compiler import compile_model
        from repro.hardware import CHIP_S

        rebuilt = graph_from_dict(graph_to_dict(squeezenet_graph))
        result = compile_model(rebuilt, CHIP_S, scheme="greedy", batch_size=1,
                               generate_instructions=False)
        assert result.throughput > 0
