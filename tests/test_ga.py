"""Tests for the COMPASS genetic algorithm (Algorithm 1)."""

import pytest

from repro.core.baselines import greedy_partition, layerwise_partition
from repro.core.fitness import FitnessEvaluator
from repro.core.ga import CompassGA, GAConfig
from repro.core.validity import ValidityMap


SMALL_GA = GAConfig(population_size=12, generations=5, n_select=4, n_mutate=8,
                    early_stop_patience=10, seed=0)


@pytest.fixture(scope="module")
def ga_result(resnet18_decomposition_m):
    d = resnet18_decomposition_m
    evaluator = FitnessEvaluator(d, batch_size=8)
    ga = CompassGA(d, evaluator, SMALL_GA)
    return d, evaluator, ga.run()


class TestGAConfig:
    def test_paper_defaults(self):
        config = GAConfig()
        assert config.population_size == 100
        assert config.generations == 30
        assert config.n_select == 20
        assert config.n_mutate == 80

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=0)
        with pytest.raises(ValueError):
            GAConfig(n_select=0)
        with pytest.raises(ValueError):
            GAConfig(n_select=200, population_size=100)
        with pytest.raises(ValueError):
            GAConfig(n_mutate=-1)


class TestGARun:
    def test_result_group_is_valid(self, ga_result):
        d, _, result = ga_result
        assert result.best_group.boundaries[-1] == d.num_units
        assert result.best_group.is_valid(d.chip.total_crossbars)

    def test_history_recorded(self, ga_result):
        _, _, result = ga_result
        assert 1 <= len(result.history) <= SMALL_GA.generations
        assert result.generations_run == len(result.history)
        for record in result.history:
            assert len(record.fitnesses) >= SMALL_GA.n_select
            assert len(record.fitnesses) == len(record.num_partitions)
            assert len(record.fitnesses) == len(record.selected_mask)

    def test_best_fitness_never_increases(self, ga_result):
        """Fig. 10: elitist selection keeps the best fitness monotone."""
        _, _, result = ga_result
        best = [record.best_fitness for record in result.history]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(best, best[1:]))

    def test_final_best_at_least_as_good_as_initial(self, ga_result):
        _, _, result = ga_result
        assert result.best_fitness <= result.history[0].best_fitness * (1 + 1e-9)

    def test_best_evaluation_matches_group(self, ga_result):
        _, _, result = ga_result
        assert result.best_evaluation.group.boundaries == result.best_group.boundaries

    def test_evaluation_count_positive(self, ga_result):
        _, _, result = ga_result
        assert result.evaluations >= SMALL_GA.population_size

    def test_ga_beats_or_matches_baselines(self, ga_result):
        """The headline claim: COMPASS finds a partitioning no worse than either baseline."""
        d, evaluator, result = ga_result
        greedy_fitness = evaluator.evaluate(greedy_partition(d)).fitness
        layerwise_fitness = evaluator.evaluate(layerwise_partition(d)).fitness
        assert result.best_fitness <= greedy_fitness * 1.001
        assert result.best_fitness <= layerwise_fitness * 1.001

    def test_deterministic_given_seed(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        config = GAConfig(population_size=8, generations=3, n_select=3, n_mutate=5, seed=7)
        r1 = CompassGA(d, FitnessEvaluator(d, batch_size=4), config).run()
        r2 = CompassGA(d, FitnessEvaluator(d, batch_size=4), config).run()
        assert r1.best_group.boundaries == r2.best_group.boundaries
        assert r1.best_fitness == pytest.approx(r2.best_fitness)

    def test_different_seeds_explore_differently(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        base = dict(population_size=8, generations=3, n_select=3, n_mutate=5)
        r1 = CompassGA(d, FitnessEvaluator(d, batch_size=4), GAConfig(seed=1, **base)).run()
        r2 = CompassGA(d, FitnessEvaluator(d, batch_size=4), GAConfig(seed=2, **base)).run()
        # not required to differ, but their initial populations should
        assert r1.history[0].fitnesses != r2.history[0].fitnesses


class TestEarlyStopping:
    def test_early_stop_limits_generations(self, squeezenet_decomposition_s):
        """On a model that fits on chip the optimum is found immediately."""
        d = squeezenet_decomposition_s
        config = GAConfig(population_size=8, generations=25, n_select=3, n_mutate=5,
                          early_stop_patience=2, seed=0)
        result = CompassGA(d, FitnessEvaluator(d, batch_size=4), config).run()
        assert result.generations_run < 25

    def test_fully_fitting_model_prefers_few_partitions(self, squeezenet_decomposition_s):
        d = squeezenet_decomposition_s
        config = GAConfig(population_size=16, generations=8, n_select=4, n_mutate=12, seed=0)
        result = CompassGA(d, FitnessEvaluator(d, batch_size=8), config).run()
        # SqueezeNet fits on chip: the GA should not shatter it into dozens of partitions
        assert result.best_group.num_partitions <= 6
