"""Tests for repro.graph.graph: DAG construction, validation and statistics."""

import pytest

from repro.graph.graph import Graph, GraphValidationError
from repro.graph.layers import (
    LayerKind,
    make_add,
    make_conv2d,
    make_flatten,
    make_input,
    make_linear,
    make_relu,
)
from repro.graph.tensor import TensorShape


def build_linear_chain() -> Graph:
    g = Graph("chain")
    g.add_layer(make_input("in", 3, 8, 8))
    g.add_layer(make_conv2d("conv", 3, 4, 3, padding=1), inputs=["in"])
    g.add_layer(make_relu("relu"), inputs=["conv"])
    g.add_layer(make_flatten("flat"), inputs=["relu"])
    g.add_layer(make_linear("fc", 4 * 8 * 8, 10), inputs=["flat"])
    return g


class TestConstruction:
    def test_add_layers_and_len(self):
        g = build_linear_chain()
        assert len(g) == 5

    def test_duplicate_name_rejected(self):
        g = Graph()
        g.add_layer(make_input("in", 3, 8, 8))
        with pytest.raises(GraphValidationError):
            g.add_layer(make_input("in", 3, 8, 8))

    def test_unknown_input_rejected(self):
        g = Graph()
        g.add_layer(make_input("in", 3, 8, 8))
        with pytest.raises(GraphValidationError):
            g.add_layer(make_relu("r"), inputs=["nope"])

    def test_non_input_needs_inputs(self):
        g = Graph()
        with pytest.raises(GraphValidationError):
            g.add_layer(make_relu("r"), inputs=[])

    def test_input_cannot_have_inputs(self):
        g = Graph()
        g.add_layer(make_input("a", 1, 4, 4))
        with pytest.raises(GraphValidationError):
            g.add_layer(make_input("b", 1, 4, 4), inputs=["a"])

    def test_shape_inference_runs_on_insert(self):
        g = build_linear_chain()
        assert g.node("conv").output_shape == TensorShape.chw(4, 8, 8)
        assert g.node("fc").output_shape == TensorShape.flat(10)

    def test_contains(self):
        g = build_linear_chain()
        assert "conv" in g
        assert "missing" not in g

    def test_unknown_node_lookup(self):
        g = build_linear_chain()
        with pytest.raises(GraphValidationError):
            g.node("missing")


class TestConnectivity:
    def test_predecessors_successors(self):
        g = build_linear_chain()
        assert [n.name for n in g.predecessors("relu")] == ["conv"]
        assert [n.name for n in g.successors("conv")] == ["relu"]

    def test_input_output_nodes(self):
        g = build_linear_chain()
        assert [n.name for n in g.input_nodes()] == ["in"]
        assert [n.name for n in g.output_nodes()] == ["fc"]

    def test_branching_graph_outputs(self):
        g = Graph("branch")
        g.add_layer(make_input("in", 4, 8, 8))
        g.add_layer(make_conv2d("a", 4, 4, 3, padding=1), inputs=["in"])
        g.add_layer(make_conv2d("b", 4, 4, 3, padding=1), inputs=["in"])
        g.add_layer(make_add("sum"), inputs=["a", "b"])
        assert [n.name for n in g.output_nodes()] == ["sum"]
        assert {n.name for n in g.predecessors("sum")} == {"a", "b"}

    def test_crossbar_nodes(self):
        g = build_linear_chain()
        assert [n.name for n in g.crossbar_nodes()] == ["conv", "fc"]

    def test_iteration_order_is_topological(self):
        g = build_linear_chain()
        assert [n.name for n in g] == ["in", "conv", "relu", "flat", "fc"]


class TestStatistics:
    def test_total_weight_count(self):
        g = build_linear_chain()
        conv_weights = 4 * 3 * 9 + 4
        fc_weights = 256 * 10 + 10
        assert g.total_weight_count() == conv_weights + fc_weights

    def test_weight_bytes_split_by_kind(self):
        g = build_linear_chain()
        assert g.conv_weight_bytes(8) == 4 * 3 * 9 + 4
        assert g.linear_weight_bytes(8) == 256 * 10 + 10
        assert g.crossbar_weight_bytes(8) == g.conv_weight_bytes(8) + g.linear_weight_bytes(8)

    def test_total_macs(self):
        g = build_linear_chain()
        conv_macs = (8 * 8) * (3 * 9) * 4
        fc_macs = 256 * 10
        assert g.total_macs() == conv_macs + fc_macs

    def test_summary_mentions_layers(self):
        text = build_linear_chain().summary()
        assert "conv" in text
        assert "total weights" in text


class TestValidation:
    def test_valid_graph_passes(self):
        build_linear_chain().validate()

    def test_empty_graph_fails(self):
        with pytest.raises(GraphValidationError):
            Graph().validate()

    def test_graph_without_input_fails(self):
        g = Graph()
        # sneak in a node list without an input by constructing only an input
        # and checking that a graph of a single non-input cannot even be built
        with pytest.raises(GraphValidationError):
            g.add_layer(make_relu("r"), inputs=["x"])

    def test_paper_models_validate(self, squeezenet_graph, resnet18_graph, vgg16_graph):
        squeezenet_graph.validate()
        resnet18_graph.validate()
        vgg16_graph.validate()
