"""Tests for the trace-driven LPDDR3 DRAM model."""

import pytest

from repro.hardware.dram import DRAMConfig, DRAMModel, DRAMRequest, DRAMStats, LPDDR3_8GB


class TestConfig:
    def test_default_is_lpddr3_8gb(self):
        assert LPDDR3_8GB.capacity_bytes == 8 * 1024 ** 3
        assert "LPDDR3" in LPDDR3_8GB.name

    def test_bytes_per_burst(self):
        # 32-bit bus, burst length 8 -> 32 bytes
        assert LPDDR3_8GB.bytes_per_burst == 32

    def test_peak_bandwidth_reasonable(self):
        # LPDDR3-1600 x32 peak is 6.4 GB/s = 6.4 bytes/ns
        assert LPDDR3_8GB.peak_bandwidth_bytes_per_ns == pytest.approx(6.4, rel=0.01)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            DRAMConfig(num_banks=0)
        with pytest.raises(ValueError):
            DRAMConfig(row_size_bytes=0)


class TestRequest:
    def test_valid_request(self):
        r = DRAMRequest(issue_time_ns=0.0, address=0, size_bytes=64, is_write=False)
        assert r.size_bytes == 64

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DRAMRequest(0.0, 0, 0, False)

    def test_invalid_address(self):
        with pytest.raises(ValueError):
            DRAMRequest(0.0, -4, 64, False)


class TestAccessTiming:
    def test_single_read_latency_includes_activation(self):
        model = DRAMModel()
        stats = DRAMStats()
        done = model.access(DRAMRequest(0.0, 0, 32, False), stats)
        cfg = model.config
        assert done >= cfg.t_rcd_ns + cfg.t_cas_ns
        assert stats.row_misses == 1
        assert stats.row_hits == 0

    def test_second_access_same_row_hits(self):
        model = DRAMModel()
        stats = DRAMStats()
        model.access(DRAMRequest(0.0, 0, 32, False), stats)
        model.access(DRAMRequest(1000.0, 32, 32, False), stats)
        assert stats.row_hits == 1

    def test_access_different_row_same_bank_misses(self):
        model = DRAMModel()
        cfg = model.config
        stats = DRAMStats()
        model.access(DRAMRequest(0.0, 0, 32, False), stats)
        # jump one full row * channels * banks to land in the same bank, new row
        stride = cfg.row_size_bytes * cfg.num_channels * cfg.num_banks
        model.access(DRAMRequest(1000.0, stride, 32, False), stats)
        assert stats.row_misses == 2

    def test_large_request_split_into_bursts(self):
        model = DRAMModel()
        stats = DRAMStats()
        model.access(DRAMRequest(0.0, 0, 1024, False), stats)
        assert stats.read_bytes == 1024
        assert stats.row_hits + stats.row_misses == 1024 // model.config.bytes_per_burst

    def test_sequential_stream_mostly_row_hits(self):
        model = DRAMModel()
        stats = DRAMStats()
        for i in range(64):
            model.access(DRAMRequest(float(i), i * 32, 32, False), stats)
        assert stats.row_hit_rate > 0.9


class TestTraceProcessing:
    def test_process_trace_orders_by_time(self):
        model = DRAMModel()
        trace = [
            DRAMRequest(100.0, 4096, 64, True, tag="late"),
            DRAMRequest(0.0, 0, 64, False, tag="early"),
        ]
        stats = model.process_trace(trace)
        assert stats.num_requests == 2
        assert stats.read_bytes == 64
        assert stats.write_bytes == 64

    def test_trace_energy_positive_and_monotonic(self):
        model = DRAMModel()
        small = model.process_trace([DRAMRequest(0.0, 0, 256, False)])
        large = model.process_trace([DRAMRequest(0.0, 0, 256 * 1024, False)])
        assert 0 < small.energy_pj < large.energy_pj

    def test_achieved_bandwidth_below_peak(self):
        model = DRAMModel()
        trace = [DRAMRequest(float(i), i * 32, 32, False) for i in range(1000)]
        stats = model.process_trace(trace)
        assert 0 < stats.achieved_bandwidth_bytes_per_ns <= model.config.peak_bandwidth_bytes_per_ns

    def test_empty_trace(self):
        stats = DRAMModel().process_trace([])
        assert stats.num_requests == 0
        assert stats.total_bytes == 0
        assert stats.average_latency_ns == 0.0
        assert stats.row_hit_rate == 0.0

    def test_reset_clears_row_buffer_state(self):
        model = DRAMModel()
        stats1 = DRAMStats()
        model.access(DRAMRequest(0.0, 0, 32, False), stats1)
        model.reset()
        stats2 = DRAMStats()
        model.access(DRAMRequest(0.0, 0, 32, False), stats2)
        assert stats2.row_misses == 1  # the open row was forgotten


class TestClosedFormHelpers:
    def test_bulk_latency_zero_bytes(self):
        assert DRAMModel().bulk_transfer_latency_ns(0) == 0.0

    def test_bulk_latency_monotonic_in_size(self):
        model = DRAMModel()
        assert (
            model.bulk_transfer_latency_ns(1024)
            < model.bulk_transfer_latency_ns(64 * 1024)
            < model.bulk_transfer_latency_ns(1024 * 1024)
        )

    def test_sequential_faster_than_random(self):
        model = DRAMModel()
        size = 256 * 1024
        assert model.bulk_transfer_latency_ns(size, sequential=True) < model.bulk_transfer_latency_ns(
            size, sequential=False
        )

    def test_bulk_latency_close_to_peak_bandwidth_for_large_sequential(self):
        model = DRAMModel()
        size = 8 * 1024 * 1024
        latency = model.bulk_transfer_latency_ns(size, sequential=True)
        effective_bw = size / latency
        assert effective_bw > 0.5 * model.config.peak_bandwidth_bytes_per_ns

    def test_bulk_energy_write_more_than_read(self):
        model = DRAMModel()
        size = 1 << 20
        assert model.bulk_transfer_energy_pj(size, is_write=True) > model.bulk_transfer_energy_pj(
            size, is_write=False
        )

    def test_bulk_energy_zero(self):
        assert DRAMModel().bulk_transfer_energy_pj(0, is_write=False) == 0.0

    def test_closed_form_tracks_trace_model(self):
        """The analytic estimate should be within 2x of the trace model."""
        model = DRAMModel()
        size = 512 * 1024
        closed = model.bulk_transfer_latency_ns(size, sequential=True)
        trace = [
            DRAMRequest(0.0, i * model.config.bytes_per_burst, model.config.bytes_per_burst, False)
            for i in range(size // model.config.bytes_per_burst)
        ]
        stats = DRAMModel().process_trace(trace)
        assert closed == pytest.approx(stats.finish_time_ns, rel=1.0)
