"""Tests for the ISA: Instruction and CoreProgram."""

import pytest

from repro.isa.instructions import CoreProgram, Instruction, Opcode


class TestInstruction:
    def test_basic_construction(self):
        inst = Instruction(Opcode.MVMUL, core_id=3, layer="conv1", count=10)
        assert inst.opcode is Opcode.MVMUL
        assert inst.count == 10

    def test_memory_access_classification(self):
        assert Instruction(Opcode.LOAD_WEIGHT, 0, size_bytes=8).is_memory_access
        assert Instruction(Opcode.LOAD_DATA, 0, size_bytes=8).is_memory_access
        assert Instruction(Opcode.STORE_DATA, 0, size_bytes=8).is_memory_access
        assert not Instruction(Opcode.MVMUL, 0).is_memory_access
        assert not Instruction(Opcode.WRITE_WEIGHT, 0).is_memory_access

    def test_send_requires_peer(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.SEND, 0, size_bytes=16)
        with pytest.raises(ValueError):
            Instruction(Opcode.RECV, 0, size_bytes=16)
        Instruction(Opcode.SEND, 0, size_bytes=16, peer_core=1)  # ok

    def test_invalid_count_and_size(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MVMUL, 0, count=0)
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD_DATA, 0, size_bytes=-1)

    def test_str_includes_opcode_and_core(self):
        text = str(Instruction(Opcode.LOAD_DATA, 2, layer="conv", size_bytes=64))
        assert "LOAD_DATA" in text
        assert "core=2" in text
        assert "bytes=64" in text

    def test_str_repeat_and_peer(self):
        text = str(Instruction(Opcode.SEND, 1, size_bytes=8, peer_core=4, count=3))
        assert "x3" in text
        assert "peer=4" in text


class TestCoreProgram:
    def test_append_and_len(self):
        program = CoreProgram(core_id=0)
        program.append(Instruction(Opcode.MVMUL, 0, count=5))
        program.append(Instruction(Opcode.VFU_OP, 0, count=2))
        assert len(program) == 2

    def test_append_wrong_core_rejected(self):
        program = CoreProgram(core_id=0)
        with pytest.raises(ValueError):
            program.append(Instruction(Opcode.MVMUL, 1))

    def test_count_by_opcode_expands_repeats(self):
        program = CoreProgram(core_id=0)
        program.append(Instruction(Opcode.MVMUL, 0, count=5))
        program.append(Instruction(Opcode.MVMUL, 0, count=3))
        program.append(Instruction(Opcode.VFU_OP, 0, count=2))
        counts = program.count_by_opcode()
        assert counts[Opcode.MVMUL] == 8
        assert counts[Opcode.VFU_OP] == 2

    def test_bytes_by_opcode(self):
        program = CoreProgram(core_id=1)
        program.append(Instruction(Opcode.LOAD_DATA, 1, size_bytes=100))
        program.append(Instruction(Opcode.LOAD_DATA, 1, size_bytes=50, count=2))
        assert program.bytes_by_opcode()[Opcode.LOAD_DATA] == 200

    def test_iteration_preserves_order(self):
        program = CoreProgram(core_id=0)
        first = Instruction(Opcode.LOAD_DATA, 0, size_bytes=1)
        second = Instruction(Opcode.MVMUL, 0)
        program.append(first)
        program.append(second)
        assert list(program) == [first, second]
