"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.decomposition import decompose_model
from repro.core.partition import Partition, PartitionGroup
from repro.core.validity import ValidityMap
from repro.graph import GraphBuilder
from repro.graph.tensor import TensorShape
from repro.hardware.chip import ChipConfig
from repro.hardware.core import CoreConfig
from repro.hardware.crossbar import CrossbarConfig
from repro.hardware.dram import DRAMModel, DRAMRequest
from repro.isa.memory import LocalMemoryAllocator
from repro.mapping.geometry import WeightMatrixGeometry
from repro.mapping.replication import allocate_replication
from repro.sim.metrics import geometric_mean, throughput_inferences_per_sec

SETTINGS = settings(max_examples=50, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# TensorShape
# ----------------------------------------------------------------------
class TestTensorShapeProperties:
    @given(dims=st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=4))
    @SETTINGS
    def test_num_elements_is_product(self, dims):
        shape = TensorShape.of(dims)
        assert shape.num_elements == math.prod(dims)

    @given(dims=st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=4),
           bits=st.sampled_from([1, 2, 4, 8, 16]))
    @SETTINGS
    def test_size_bytes_round_trip(self, dims, bits):
        shape = TensorShape.of(dims)
        size = shape.size_bytes(bits)
        assert size * 8 >= shape.num_elements * bits
        assert (size - 1) * 8 < shape.num_elements * bits

    @given(dims=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=4))
    @SETTINGS
    def test_flatten_preserves_elements(self, dims):
        shape = TensorShape.of(dims)
        assert shape.flattened().num_elements == shape.num_elements


# ----------------------------------------------------------------------
# Crossbar capacity
# ----------------------------------------------------------------------
class TestCrossbarProperties:
    @given(rows=st.sampled_from([64, 128, 256, 512]),
           cols=st.sampled_from([64, 128, 256, 512]),
           weight_bits=st.sampled_from([1, 2, 4, 8]))
    @SETTINGS
    def test_capacity_formula(self, rows, cols, weight_bits):
        xbar = CrossbarConfig(rows=rows, cols=cols, weight_bits=weight_bits)
        assert xbar.capacity_bytes == rows * (cols // weight_bits) * weight_bits // 8
        assert xbar.weights_per_crossbar * weight_bits // 8 == xbar.capacity_bytes

    @given(active=st.integers(min_value=0, max_value=1024))
    @SETTINGS
    def test_mvm_energy_monotone_in_rows(self, active):
        xbar = CrossbarConfig()
        assert xbar.mvm_energy_for_rows(active) <= xbar.mvm_energy_for_rows(active + 1) + 1e-12


# ----------------------------------------------------------------------
# Replication allocation
# ----------------------------------------------------------------------
def geometry_strategy():
    return st.builds(
        lambda name, crossbars, windows: WeightMatrixGeometry(
            layer_name=name, rows=256, cols=64, groups=1,
            crossbars_per_copy=crossbars, weights_per_copy=256 * 64,
            windows=windows, weight_bytes=8192 * crossbars,
            row_tiles=1, col_tiles=crossbars,
        ),
        name=st.text(alphabet="abcdefgh", min_size=1, max_size=4),
        crossbars=st.integers(min_value=1, max_value=8),
        windows=st.integers(min_value=1, max_value=4096),
    )


class TestReplicationProperties:
    @given(geoms=st.lists(geometry_strategy(), min_size=1, max_size=6, unique_by=lambda g: g.layer_name),
           budget=st.integers(min_value=48, max_value=512))
    @SETTINGS
    def test_allocation_respects_budget_and_floors(self, geoms, budget):
        single_copy = sum(g.crossbars_per_copy for g in geoms)
        if single_copy > budget:
            with pytest.raises(ValueError):
                allocate_replication(geoms, budget)
            return
        plan = allocate_replication(geoms, budget)
        assert plan.total_crossbars <= budget
        for geom in geoms:
            factor = plan.factor(geom.layer_name)
            assert 1 <= factor <= max(1, geom.windows)
            assert plan.crossbars_used[geom.layer_name] == factor * geom.crossbars_per_copy

    @given(geoms=st.lists(geometry_strategy(), min_size=1, max_size=4, unique_by=lambda g: g.layer_name))
    @SETTINGS
    def test_bottleneck_never_worse_than_unreplicated(self, geoms):
        budget = sum(g.crossbars_per_copy for g in geoms) + 16
        plan = allocate_replication(geoms, budget)
        unreplicated = max(g.windows for g in geoms)
        assert plan.bottleneck_slots <= unreplicated


# ----------------------------------------------------------------------
# Validity map / partitioning on generated models
# ----------------------------------------------------------------------
def random_cnn(num_convs: int, base_channels: int, input_size: int):
    b = GraphBuilder(f"gen_cnn_{num_convs}_{base_channels}")
    b.add_input(3, input_size, input_size)
    channels = 3
    for i in range(num_convs):
        out = base_channels * (1 + i % 3)
        b.add_conv(f"conv{i}", channels, out, kernel_size=3, padding=1)
        b.add_relu()
        channels = out
    b.add_global_avgpool()
    b.add_flatten()
    b.add_linear("fc", channels, 10)
    return b.build()


TINY_CHIP = ChipConfig(name="tiny", num_cores=4,
                       core=CoreConfig(crossbars_per_core=2, crossbar=CrossbarConfig()))


class TestPartitioningProperties:
    @given(num_convs=st.integers(min_value=1, max_value=6),
           base_channels=st.sampled_from([8, 16, 32]),
           input_size=st.sampled_from([16, 32]))
    @SETTINGS
    def test_decomposition_units_fit_cores(self, num_convs, base_channels, input_size):
        graph = random_cnn(num_convs, base_channels, input_size)
        decomposition = decompose_model(graph, TINY_CHIP)
        core_capacity = TINY_CHIP.core.weight_capacity_bytes
        for unit in decomposition.units:
            assert unit.weight_bytes <= core_capacity
            assert unit.crossbars <= TINY_CHIP.core.crossbars_per_core

    @given(num_convs=st.integers(min_value=1, max_value=6),
           base_channels=st.sampled_from([8, 16, 32]),
           seed=st.integers(min_value=0, max_value=100))
    @SETTINGS
    def test_random_partitioning_always_valid_and_covering(self, num_convs, base_channels, seed):
        graph = random_cnn(num_convs, base_channels, 16)
        decomposition = decompose_model(graph, TINY_CHIP)
        vm = ValidityMap(decomposition)
        rng = np.random.default_rng(seed)
        bounds = vm.random_partition_boundaries(rng)
        group = PartitionGroup.from_boundaries(decomposition, bounds)
        assert group.is_valid(TINY_CHIP.total_crossbars)
        covered = sum(e - s for s, e in group.spans())
        assert covered == decomposition.num_units

    @given(num_convs=st.integers(min_value=2, max_value=6),
           base_channels=st.sampled_from([16, 32]))
    @SETTINGS
    def test_partition_io_symmetry(self, num_convs, base_channels):
        """Bytes stored by partition i for consumer j equal bytes loaded by j from i."""
        graph = random_cnn(num_convs, base_channels, 16)
        decomposition = decompose_model(graph, TINY_CHIP)
        vm = ValidityMap(decomposition)
        bounds = vm.random_partition_boundaries(np.random.default_rng(0))
        group = PartitionGroup.from_boundaries(decomposition, bounds)
        partitions = group.partitions()
        stored = {}
        for p in partitions:
            for name, size in p.io().exits:
                stored[name] = stored.get(name, 0) + size
        for p in partitions:
            for name, size in p.io().entries:
                if name == "input":
                    continue
                # every loaded feature map was stored by some earlier partition
                assert name in stored


# ----------------------------------------------------------------------
# DRAM model
# ----------------------------------------------------------------------
class TestDRAMProperties:
    @given(sizes=st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=20))
    @SETTINGS
    def test_trace_stats_account_for_all_bytes(self, sizes):
        model = DRAMModel()
        trace = [
            DRAMRequest(float(i * 100), i * 8192, size, is_write=(i % 2 == 0))
            for i, size in enumerate(sizes)
        ]
        stats = model.process_trace(trace)
        assert stats.total_bytes == sum(sizes)
        assert stats.num_requests == len(sizes)
        assert stats.finish_time_ns >= max(r.issue_time_ns for r in trace)

    @given(num_bytes=st.integers(min_value=1, max_value=1 << 22))
    @SETTINGS
    def test_bulk_latency_positive_and_superlinear_floor(self, num_bytes):
        model = DRAMModel()
        latency = model.bulk_transfer_latency_ns(num_bytes)
        assert latency > 0
        # can never beat the peak data-bus bandwidth
        assert num_bytes / latency <= model.config.peak_bandwidth_bytes_per_ns * 1.001


# ----------------------------------------------------------------------
# Local memory allocator
# ----------------------------------------------------------------------
class TestAllocatorProperties:
    @given(sizes=st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=30))
    @SETTINGS
    def test_peak_bounds(self, sizes):
        alloc = LocalMemoryAllocator(64 * 1024)
        handles = [alloc.allocate(size) for size in sizes]
        assert alloc.used_bytes == sum(sizes)
        assert alloc.peak_usage >= max(sizes)
        assert alloc.peak_usage >= alloc.used_bytes * 0  # trivially non-negative
        for handle in handles:
            alloc.free(handle)
        assert alloc.used_bytes == 0
        assert alloc.peak_usage >= sum(sizes) - max(sizes)

    @given(sizes=st.lists(st.integers(min_value=1, max_value=1024), min_size=2, max_size=20),
           free_first=st.booleans())
    @SETTINGS
    def test_alloc_free_interleaving_tracks_live_bytes(self, sizes, free_first):
        alloc = LocalMemoryAllocator(16 * 1024)
        live = {}
        for size in sizes:
            if free_first and live:
                handle, _ = live.popitem()
                alloc.free(handle)
            live[alloc.allocate(size)] = size
        assert alloc.used_bytes == sum(live.values())
        assert alloc.peak_usage >= alloc.used_bytes


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetricProperties:
    @given(values=st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=10))
    @SETTINGS
    def test_geometric_mean_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(batch=st.integers(min_value=1, max_value=64),
           latency=st.floats(min_value=1.0, max_value=1e12))
    @SETTINGS
    def test_throughput_scales_linearly_with_batch(self, batch, latency):
        single = throughput_inferences_per_sec(1, latency)
        batched = throughput_inferences_per_sec(batch, latency)
        assert batched == pytest.approx(batch * single, rel=1e-9)
