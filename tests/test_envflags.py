"""Tests of the central env-flag registry (:mod:`repro.envflags`).

The accessors replaced ~27 scattered ``os.environ`` reads in PR 10; these
tests pin the three deliberately distinct gate semantics so the
centralisation can never silently normalise them:

* ``not in ("", "0")`` — default-on gates where ``""`` *disables*
  (span matrix, switch cost, faults) and the default-off sweep opt-in;
* ``!= "0"`` — telemetry: the empty string keeps it ON;
* truthiness — plain opt-ins where any non-empty value enables.
"""

import pytest

from repro import envflags


def _sweep(monkeypatch, name, accessor, cases):
    for value, expected in cases.items():
        if value is None:
            monkeypatch.delenv(name, raising=False)
        else:
            monkeypatch.setenv(name, value)
        assert accessor() is expected, f"{name}={value!r}"


class TestDefaultOnGates:
    """``not in ("", "0")``: unset and any other value ON, ""/"0" OFF."""

    CASES = {None: True, "1": True, "yes": True, "0": False, "": False}

    def test_span_matrix(self, monkeypatch):
        _sweep(monkeypatch, "REPRO_SPAN_MATRIX",
               envflags.span_matrix_enabled, self.CASES)

    def test_serve_switch_cost(self, monkeypatch):
        _sweep(monkeypatch, "REPRO_SERVE_SWITCH_COST",
               envflags.serve_switch_cost_enabled, self.CASES)

    def test_serve_faults(self, monkeypatch):
        _sweep(monkeypatch, "REPRO_SERVE_FAULTS",
               envflags.serve_faults_enabled, self.CASES)


class TestTelemetryGate:
    """``!= "0"``: ONLY the literal "0" disables — "" keeps telemetry on."""

    def test_serve_telemetry(self, monkeypatch):
        _sweep(monkeypatch, "REPRO_SERVE_TELEMETRY",
               envflags.serve_telemetry_enabled,
               {None: True, "1": True, "": True, "0": False})


class TestOptIns:
    def test_parallel_sweeps(self, monkeypatch):
        # default-off variant of the not-in-("","0") gate
        _sweep(monkeypatch, "REPRO_PARALLEL_SWEEPS",
               envflags.parallel_sweeps_enabled,
               {None: False, "": False, "0": False, "1": True, "4": True})

    def test_truthiness_opt_ins(self, monkeypatch):
        cases = {None: False, "": False, "1": True, "0": True}
        _sweep(monkeypatch, "REPRO_BENCH_QUICK",
               envflags.bench_quick_enabled, cases)
        _sweep(monkeypatch, "REPRO_CHECK_BENCH",
               envflags.check_bench_enabled, cases)
        _sweep(monkeypatch, "COMPASS_PAPER_SCALE",
               envflags.paper_scale_enabled, cases)


class TestValueAccessors:
    def test_bench_out(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_OUT", raising=False)
        assert envflags.bench_out() is None
        monkeypatch.setenv("REPRO_BENCH_OUT", "")
        assert envflags.bench_out() is None  # empty string = dated default
        monkeypatch.setenv("REPRO_BENCH_OUT", "out.json")
        assert envflags.bench_out() == "out.json"

    def test_bench_regression_pct(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_REGRESSION_PCT", raising=False)
        assert envflags.bench_regression_pct() == 20.0
        monkeypatch.setenv("REPRO_BENCH_REGRESSION_PCT", "7.5")
        assert envflags.bench_regression_pct() == 7.5
        monkeypatch.setenv("REPRO_BENCH_REGRESSION_PCT", "junk")
        with pytest.raises(ValueError):
            envflags.bench_regression_pct()


class TestRegistry:
    def test_registry_covers_every_accessor(self):
        assert envflags.REGISTERED_NAMES == (
            "REPRO_SPAN_MATRIX", "REPRO_PARALLEL_SWEEPS",
            "REPRO_BENCH_QUICK", "REPRO_BENCH_OUT", "REPRO_CHECK_BENCH",
            "REPRO_BENCH_REGRESSION_PCT", "REPRO_SERVE_SWITCH_COST",
            "REPRO_SERVE_FAULTS", "REPRO_SERVE_TELEMETRY",
            "COMPASS_PAPER_SCALE")
        assert len(set(envflags.REGISTERED_NAMES)) == len(envflags.REGISTRY)
        for flag in envflags.REGISTRY:
            assert flag.description
