"""Tests for the evaluation harness (tables/figures experiment functions)."""

import numpy as np
import pytest

from repro.core.ga import GAConfig
from repro.evaluation.experiments import (
    ExperimentConfig,
    fig5_validity_maps,
    fig6_speedups,
    fig7_latency_breakdown,
    fig8_energy_and_edp,
    fig9_weight_energy_vs_batch,
    fig10_ga_convergence,
    optimality_gap,
    table1_hardware_configuration,
    table2_model_support,
)
from repro.evaluation.sweeps import SweepPoint, SweepRunner

TINY_GA = GAConfig(population_size=8, generations=3, n_select=3, n_mutate=5, seed=0)


class TestTables:
    def test_table1_matches_paper(self):
        rows = {r["chip"]: r for r in table1_hardware_configuration()}
        assert rows["S"]["capacity_mb"] == pytest.approx(1.125)
        assert rows["M"]["capacity_mb"] == pytest.approx(2.0)
        assert rows["L"]["capacity_mb"] == pytest.approx(4.5)

    def test_table2_sizes_and_support(self):
        rows = {r["network"]: r for r in table2_model_support()}
        assert rows["vgg16"]["total_mb"] == pytest.approx(65.97, rel=0.01)
        assert rows["resnet18"]["total_mb"] == pytest.approx(5.569, rel=0.01)
        assert rows["squeezenet"]["total_mb"] == pytest.approx(0.587, abs=0.01)
        # Table II: previous compilers only support SqueezeNet; COMPASS supports all
        assert not rows["vgg16"]["prev"]
        assert not rows["resnet18"]["prev"]
        assert rows["squeezenet"]["prev"]
        assert all(rows[m]["ours"] for m in ("vgg16", "resnet18", "squeezenet"))


class TestFig5:
    def test_rows_and_monotonicity(self):
        rows = fig5_validity_maps(models=("squeezenet", "resnet18"), chips=("S", "L"))
        assert len(rows) == 4
        by_key = {(r["model"], r["chip"]): r for r in rows}
        # larger chip -> valid fraction does not decrease
        for model in ("squeezenet", "resnet18"):
            assert by_key[(model, "L")]["valid_fraction"] >= by_key[(model, "S")]["valid_fraction"]
        for row in rows:
            assert isinstance(row["matrix"], np.ndarray)
            assert row["matrix"].shape == (row["num_units"], row["num_units"])


class TestSweepRunner:
    def test_point_label(self):
        point = SweepPoint(model="resnet18", chip="S", scheme="compass", batch_size=4)
        assert point.label == "resnet18-S-4"

    def test_runner_caches_results(self):
        runner = SweepRunner(ga_config=TINY_GA)
        point = SweepPoint(model="squeezenet", chip="S", scheme="greedy", batch_size=1)
        first = runner.run_point(point)
        second = runner.run_point(point)
        assert first is second

    def test_run_produces_rows(self):
        runner = SweepRunner(ga_config=TINY_GA)
        rows = runner.run(models=["squeezenet"], chips=["S"], schemes=["greedy", "layerwise"],
                          batch_sizes=[1, 4])
        assert len(rows) == 4
        assert {r["scheme"] for r in rows} == {"greedy", "layerwise"}
        assert all(r["throughput_ips"] > 0 for r in rows)


class TestFigures:
    def test_fig6_speedups_helper(self):
        rows = [
            {"model": "m", "chip": "S", "batch": 1, "scheme": "greedy", "throughput_ips": 100.0},
            {"model": "m", "chip": "S", "batch": 1, "scheme": "layerwise", "throughput_ips": 50.0},
            {"model": "m", "chip": "S", "batch": 1, "scheme": "compass", "throughput_ips": 200.0},
        ]
        speedups = fig6_speedups(rows)
        assert speedups[0]["speedup_vs_greedy"] == pytest.approx(2.0)
        assert speedups[0]["speedup_vs_layerwise"] == pytest.approx(4.0)

    def test_fig7_breakdown_structure(self):
        breakdown = fig7_latency_breakdown(model="squeezenet", chip_name="S", batch_size=2,
                                           ga_config=TINY_GA)
        assert set(breakdown) == {"greedy", "layerwise", "compass"}
        for scheme, data in breakdown.items():
            assert len(data["latencies_ms"]) == data["num_partitions"]
            assert data["total_ms"] == pytest.approx(sum(data["latencies_ms"]))
            assert 0 < data["first_partition_share"] <= 1.0

    def test_fig8_rows(self):
        rows = fig8_energy_and_edp(model="squeezenet", chip_name="S", batch_sizes=(1, 4),
                                   ga_config=TINY_GA)
        assert len(rows) == 2 * 3
        assert all(r["energy_per_inf_mj"] > 0 for r in rows)
        assert all(r["edp_mj_ms"] > 0 for r in rows)

    def test_fig9_amortisation_trend(self):
        rows = fig9_weight_energy_vs_batch(model="squeezenet", chips=("S",),
                                           batch_sizes=(1, 16), scheme="greedy",
                                           ga_config=TINY_GA)
        by_batch = {r["batch"]: r for r in rows}
        assert by_batch[16]["weight_load_rel"] < by_batch[1]["weight_load_rel"]
        assert by_batch[16]["weight_write_rel"] < by_batch[1]["weight_write_rel"]

    def test_fig10_history(self):
        result = fig10_ga_convergence(model="squeezenet", chip_name="S", batch_size=2,
                                      ga_config=TINY_GA)
        assert result.history
        best = [rec.best_fitness for rec in result.history]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(best, best[1:]))


class TestOptimalityGap:
    def test_rows_and_floor(self):
        rows = optimality_gap(
            models=("lenet5", "squeezenet"), chips=("S",), batch_sizes=(1,),
            ga_config=TINY_GA,
        )
        assert len(rows) == 2
        for row in rows:
            assert row["supported"]
            # the DP result is the exact optimum: the GA cannot beat it
            assert row["gap_pct"] >= 0.0
            assert row["dp_latency_ns"] <= row["ga_latency_ns"]
            assert row["dp_partitions"] >= 1

    def test_unsupported_pair_flagged(self):
        rows = optimality_gap(
            models=("vgg16",), chips=("S",), batch_sizes=(1,),
            ga_config=TINY_GA, input_size=4096,  # blows past any chip
        )
        assert rows and all(row["supported"] is False for row in rows)


class TestExperimentConfig:
    def test_fast_preset_smaller_than_paper(self):
        fast = ExperimentConfig.fast()
        paper = ExperimentConfig()
        assert fast.ga_config.population_size < paper.ga_config.population_size
        assert fast.ga_config.generations < paper.ga_config.generations
        assert set(fast.batch_sizes) <= set(paper.batch_sizes)

    def test_paper_defaults_match_section_iv(self):
        config = ExperimentConfig()
        assert config.models == ("vgg16", "resnet18", "squeezenet")
        assert config.chips == ("S", "M", "L")
        assert config.batch_sizes == (1, 2, 4, 8, 16)
        assert config.ga_config.population_size == 100
        assert config.ga_config.generations == 30


class TestEDPFrontierSizes:
    def test_small_registry_subset_is_exact(self):
        from repro.evaluation.experiments import edp_frontier_sizes
        from repro.search.dp import DEFAULT_MAX_FRONTIER

        rows = edp_frontier_sizes(models=("lenet5", "squeezenet"), chips=("S", "M"),
                                  batch_sizes=(1, 4))
        assert len(rows) == 2 * 2 * 2
        supported = [row for row in rows if row["supported"]]
        assert supported
        for row in supported:
            assert row["exact"]  # uncapped runs are always exact
            assert row["fits_default_cap"]
            assert 1 <= row["max_frontier_size"] <= DEFAULT_MAX_FRONTIER
            assert row["mean_frontier_size"] <= row["max_frontier_size"]
            assert row["edp_optimum"] > 0

    def test_row_shape(self):
        from repro.evaluation.experiments import edp_frontier_sizes

        rows = edp_frontier_sizes(models=("lenet5",), chips=("S",), batch_sizes=(1,))
        assert len(rows) == 1
        assert {"model", "chip", "batch", "supported", "num_units",
                "max_frontier_size", "mean_frontier_size", "exact",
                "fits_default_cap", "edp_optimum", "partitions"} <= set(rows[0])
