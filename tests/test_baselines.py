"""Tests for the greedy and layerwise baseline partitioners."""

import pytest

from repro.core.baselines import greedy_partition, layerwise_partition
from repro.core.decomposition import decompose_model
from repro.core.validity import ValidityMap
from repro.hardware import CHIP_L, CHIP_S


class TestGreedy:
    def test_covers_model(self, resnet18_decomposition_m):
        group = greedy_partition(resnet18_decomposition_m)
        assert group.boundaries[-1] == resnet18_decomposition_m.num_units

    def test_every_partition_valid(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        group = greedy_partition(d)
        assert group.is_valid(d.chip.total_crossbars)

    def test_partitions_are_maximal(self, resnet18_decomposition_m):
        """Greedy packs as much as possible: extending any partition is invalid."""
        d = resnet18_decomposition_m
        vm = ValidityMap(d)
        group = greedy_partition(d, vm)
        for start, end in group.spans():
            if end < d.num_units:
                assert not vm.is_valid(start, end + 1)

    def test_single_partition_when_model_fits(self, squeezenet_decomposition_s):
        group = greedy_partition(squeezenet_decomposition_s)
        assert group.num_partitions == 1

    def test_fewest_partitions_property(self, resnet18_decomposition_m):
        """Greedy never uses more partitions than layerwise."""
        d = resnet18_decomposition_m
        assert greedy_partition(d).num_partitions <= layerwise_partition(d).num_partitions


class TestLayerwise:
    def test_covers_model(self, resnet18_decomposition_m):
        group = layerwise_partition(resnet18_decomposition_m)
        assert group.boundaries[-1] == resnet18_decomposition_m.num_units

    def test_every_partition_valid(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        assert layerwise_partition(d).is_valid(d.chip.total_crossbars)

    def test_one_layer_per_partition_when_layers_fit(self, squeezenet_decomposition_s):
        d = squeezenet_decomposition_s
        group = layerwise_partition(d)
        assert group.num_partitions == len(d.crossbar_layers)
        for partition in group.partitions():
            assert len(partition.layer_names()) == 1

    def test_partition_boundaries_align_with_layers_when_possible(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        group = layerwise_partition(d)
        layer_ends = {end for _, end in d.layer_unit_ranges.values()}
        # every layer end must be a partition boundary (layers are never merged)
        assert layer_ends.issubset(set(group.boundaries))

    def test_oversized_layer_split_into_valid_chunks(self, vgg16_graph):
        """VGG16 fc1 exceeds Chip-S by itself and must be split."""
        d = decompose_model(vgg16_graph, CHIP_S)
        group = layerwise_partition(d)
        assert group.is_valid(d.chip.total_crossbars)
        fc1_units = d.layer_unit_ranges["fc1"]
        fc1_partitions = [
            (s, e) for s, e in group.spans() if s >= fc1_units[0] and e <= fc1_units[1]
        ]
        assert len(fc1_partitions) > 1

    def test_at_least_one_partition_per_crossbar_layer(self, vgg16_graph):
        d = decompose_model(vgg16_graph, CHIP_L)
        group = layerwise_partition(d)
        assert group.num_partitions >= len(d.crossbar_layers)
