"""Tests for the GA's mutation-operator restriction hook (used by ablations)."""

import pytest

from repro.core.fitness import FitnessEvaluator
from repro.core.ga import CompassGA, GAConfig
from repro.core.mutation import MutationKind

SMALL = GAConfig(population_size=8, generations=3, n_select=3, n_mutate=5, seed=0)


class TestMutationKindsOption:
    def test_default_uses_all_four(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        ga = CompassGA(d, FitnessEvaluator(d, batch_size=4), SMALL)
        assert set(ga.mutation_kinds) == set(MutationKind)

    def test_restricted_set_runs(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        ga = CompassGA(d, FitnessEvaluator(d, batch_size=4), SMALL,
                       mutation_kinds=[MutationKind.SPLIT, MutationKind.FIXED_RANDOM])
        result = ga.run()
        assert result.best_group.is_valid(d.chip.total_crossbars)

    def test_single_operator_runs(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        ga = CompassGA(d, FitnessEvaluator(d, batch_size=4), SMALL,
                       mutation_kinds=[MutationKind.FIXED_RANDOM])
        result = ga.run()
        assert result.best_group.boundaries[-1] == d.num_units

    def test_empty_set_rejected(self, resnet18_decomposition_m):
        d = resnet18_decomposition_m
        with pytest.raises(ValueError):
            CompassGA(d, FitnessEvaluator(d, batch_size=4), SMALL, mutation_kinds=[])
