"""Tests for repro.mapping.core_mapping: packing crossbar tiles onto cores."""

import math

import pytest

from repro.hardware import CHIP_S
from repro.hardware.chip import ChipConfig
from repro.hardware.core import CoreConfig
from repro.mapping.core_mapping import MappingError, map_partition_to_cores
from repro.mapping.geometry import WeightMatrixGeometry
from repro.mapping.replication import allocate_replication


def make_geom(name, crossbars, windows):
    return WeightMatrixGeometry(
        layer_name=name, rows=256, cols=64, groups=1,
        crossbars_per_copy=crossbars, weights_per_copy=256 * 64,
        windows=windows, weight_bytes=8192 * crossbars,
        row_tiles=1, col_tiles=crossbars,
    )


def small_chip(num_cores=4, crossbars_per_core=4):
    return ChipConfig(
        name="test", num_cores=num_cores,
        core=CoreConfig(crossbars_per_core=crossbars_per_core),
    )


class TestMapping:
    def test_single_layer_single_core(self):
        chip = small_chip()
        geoms = [make_geom("conv", 2, 10)]
        replication = allocate_replication(geoms, crossbar_budget=2)
        mapping = map_partition_to_cores(geoms, replication, chip)
        assert mapping.cores_used == 1
        assert mapping.total_crossbars_used == 2

    def test_replicas_spread_over_cores(self):
        chip = small_chip(num_cores=4, crossbars_per_core=2)
        geoms = [make_geom("conv", 2, 1000)]
        replication = allocate_replication(geoms, crossbar_budget=8)
        mapping = map_partition_to_cores(geoms, replication, chip)
        assert replication.factor("conv") == 4
        assert mapping.cores_used == 4

    def test_large_replica_splits_across_cores(self):
        chip = small_chip(num_cores=4, crossbars_per_core=2)
        geoms = [make_geom("big", 5, 10)]
        replication = allocate_replication(geoms, crossbar_budget=5)
        mapping = map_partition_to_cores(geoms, replication, chip)
        assert mapping.cores_used >= 3
        assert mapping.total_crossbars_used == 5

    def test_overflow_raises(self):
        chip = small_chip(num_cores=2, crossbars_per_core=2)
        geoms = [make_geom("too_big", 5, 10)]
        replication = allocate_replication(geoms, crossbar_budget=5)
        with pytest.raises(MappingError):
            map_partition_to_cores(geoms, replication, chip)

    def test_layer_cores_lookup(self):
        chip = small_chip()
        geoms = [make_geom("a", 1, 10), make_geom("b", 1, 10)]
        replication = allocate_replication(geoms, crossbar_budget=2)
        mapping = map_partition_to_cores(geoms, replication, chip)
        assert mapping.cores_for_layer("a")
        assert mapping.cores_for_layer("b")
        assert mapping.cores_for_layer("missing") == []

    def test_utilization_bounds(self):
        chip = small_chip()
        geoms = [make_geom("a", 3, 10)]
        replication = allocate_replication(geoms, crossbar_budget=3)
        mapping = map_partition_to_cores(geoms, replication, chip)
        assert 0.0 < mapping.utilization() <= 1.0

    def test_inter_core_edges_zero_when_colocated(self):
        chip = small_chip()
        geoms = [make_geom("a", 1, 10), make_geom("b", 1, 10)]
        replication = allocate_replication(geoms, crossbar_budget=2)
        mapping = map_partition_to_cores(geoms, replication, chip)
        a_cores = set(mapping.cores_for_layer("a"))
        b_cores = set(mapping.cores_for_layer("b"))
        edges = mapping.inter_core_edges("a", "b")
        expected = sum(1 for s in a_cores for d in b_cores if s != d)
        assert edges == expected

    def test_chip_s_capacity_exactly_fills(self):
        """144 single-crossbar replicas exactly fill Chip-S."""
        geoms = [make_geom("conv", 1, 10_000)]
        replication = allocate_replication(geoms, crossbar_budget=CHIP_S.total_crossbars)
        mapping = map_partition_to_cores(geoms, replication, CHIP_S)
        assert mapping.total_crossbars_used <= CHIP_S.total_crossbars
        assert mapping.crossbars_per_core == 9

    def test_assignment_entries_record_layer_and_replica(self):
        chip = small_chip()
        geoms = [make_geom("conv", 2, 100)]
        replication = allocate_replication(geoms, crossbar_budget=4)
        mapping = map_partition_to_cores(geoms, replication, chip)
        entries = [e for a in mapping.assignments for e in a.entries]
        layers = {layer for layer, _, _ in entries}
        replicas = {rep for _, rep, _ in entries}
        assert layers == {"conv"}
        assert replicas == set(range(replication.factor("conv")))
