"""Unit tests for the dense span-matrix engine (:mod:`repro.perf.spanmatrix`).

Bit-identity with the scalar paths is pinned in ``test_perf_equivalence.py``;
these tests cover the engine's mechanics — sharing, lazy fill/delta
behaviour, version-cached per-batch matrices, the evaluator toggle, and the
cached ``GroupEvaluation`` accessors the population-vectorized scoring
relies on.
"""

import numpy as np
import pytest

from repro.core.decomposition import decompose_model
from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.core.partition import PartitionGroup
from repro.core.validity import ValidityMap
from repro.hardware.config import get_chip_config
from repro.models import build_model
from repro.perf import SpanMatrix, span_matrix_for, span_table_for


@pytest.fixture()
def fresh_decomposition():
    """A decomposition with cold caches (not shared through the registry)."""
    graph = build_model("lenet5")
    chip = get_chip_config("S")
    decomposition = decompose_model(graph, chip)
    return decomposition, ValidityMap(decomposition)


def _span_arrays(spans):
    starts = np.asarray([s for s, _ in spans], dtype=np.int64)
    ends = np.asarray([e for _, e in spans], dtype=np.int64)
    return starts, ends


class TestSharing:
    def test_span_matrix_for_is_shared(self, fresh_decomposition):
        decomposition, _ = fresh_decomposition
        first = span_matrix_for(decomposition)
        second = span_matrix_for(decomposition)
        assert first is second
        assert first.table is span_table_for(decomposition)

    def test_evaluators_share_one_matrix(self, fresh_decomposition):
        decomposition, _ = fresh_decomposition
        a = FitnessEvaluator(decomposition, batch_size=1, use_span_matrix=True)
        b = FitnessEvaluator(decomposition, batch_size=16, use_span_matrix=True)
        assert a.span_matrix is b.span_matrix

    def test_registry_accessor(self):
        from repro.evaluation.registry import shared_decomposition, shared_span_matrix

        matrix = shared_span_matrix("lenet5", "S")
        decomposition, _ = shared_decomposition("lenet5", "S")
        assert isinstance(matrix, SpanMatrix)
        assert matrix is span_matrix_for(decomposition)


class TestDeltaFill:
    def test_only_missing_spans_are_profiled(self, fresh_decomposition):
        decomposition, _ = fresh_decomposition
        matrix = span_matrix_for(decomposition)
        table = matrix.table
        starts, ends = _span_arrays([(0, 2), (2, 4), (0, 2)])
        matrix.ensure_spans(starts, ends)
        assert matrix.num_spans == 2
        first = table.stats
        assert first.matrix_fills == 2
        # one repeated span in the request is already gather-served
        assert first.matrix_hits == 1
        # a child differing by one cut touches only the new spans (the delta)
        starts, ends = _span_arrays([(0, 2), (2, 3), (3, 4)])
        matrix.ensure_spans(starts, ends)
        second = table.stats
        assert second.matrix_fills - first.matrix_fills == 2
        assert matrix.num_spans == 4

    def test_latency_matrix_version_cache(self, fresh_decomposition):
        decomposition, _ = fresh_decomposition
        matrix = span_matrix_for(decomposition)
        starts, ends = _span_arrays([(0, 1)])
        matrix.ensure_spans(starts, ends)
        cached = matrix.latency_matrix(4)
        assert matrix.latency_matrix(4) is cached  # no refill -> same object
        matrix.ensure_spans(*_span_arrays([(1, 2)]))
        assert matrix.latency_matrix(4) is not cached  # new span invalidates


class TestEvaluatorToggle:
    def test_env_opt_out(self, fresh_decomposition, monkeypatch):
        decomposition, _ = fresh_decomposition
        monkeypatch.setenv("REPRO_SPAN_MATRIX", "0")
        evaluator = FitnessEvaluator(decomposition, batch_size=4)
        assert evaluator.span_matrix is None
        assert evaluator.span_table is not None

    def test_explicit_flag_beats_env(self, fresh_decomposition, monkeypatch):
        decomposition, _ = fresh_decomposition
        monkeypatch.setenv("REPRO_SPAN_MATRIX", "0")
        evaluator = FitnessEvaluator(decomposition, batch_size=4, use_span_matrix=True)
        assert evaluator.span_matrix is not None

    def test_no_table_means_no_matrix(self, fresh_decomposition):
        decomposition, _ = fresh_decomposition
        evaluator = FitnessEvaluator(
            decomposition, batch_size=4, use_span_table=False, use_span_matrix=True
        )
        assert evaluator.span_matrix is None

    def test_evaluate_many_falls_back_without_matrix(self, fresh_decomposition):
        decomposition, validity = fresh_decomposition
        rng = np.random.default_rng(0)
        groups = [
            PartitionGroup.from_boundaries(
                decomposition, validity.random_partition_boundaries(rng)
            )
            for _ in range(5)
        ]
        scalar = FitnessEvaluator(decomposition, batch_size=4, use_span_table=False)
        evaluations = scalar.evaluate_many(groups)
        assert [e.fitness for e in evaluations] == [
            scalar.evaluate(g).fitness for g in groups
        ]


class TestGroupEvaluationCaches:
    def test_fitness_cached(self, fresh_decomposition):
        decomposition, _ = fresh_decomposition
        evaluator = FitnessEvaluator(decomposition, batch_size=4)
        group = PartitionGroup.from_boundaries(
            decomposition, [decomposition.num_units]
        )
        evaluation = evaluator.evaluate(group)
        assert evaluation._fitness is None
        value = evaluation.fitness
        assert evaluation._fitness == value == sum(evaluation.partition_fitness)
        # mutating the list after the first read does not change the cache
        evaluation.partition_fitness.append(1.0)
        assert evaluation.fitness == value

    def test_span_bounds_and_fitness_array(self, fresh_decomposition):
        decomposition, validity = fresh_decomposition
        rng = np.random.default_rng(1)
        bounds = validity.random_partition_boundaries(rng)
        evaluator = FitnessEvaluator(decomposition, batch_size=4)
        evaluation = evaluator.evaluate(
            PartitionGroup.from_boundaries(decomposition, bounds)
        )
        starts, ends = evaluation.span_bounds
        assert ends.tolist() == list(bounds)
        assert starts.tolist() == [0] + list(bounds)[:-1]
        assert evaluation.fitness_array.tolist() == evaluation.partition_fitness


class TestBaselineEvaluations:
    def test_matches_per_group_evaluation(self, fresh_decomposition):
        from repro.core.baselines import (
            baseline_evaluations,
            greedy_partition,
            layerwise_partition,
        )

        decomposition, validity = fresh_decomposition
        evaluator = FitnessEvaluator(decomposition, batch_size=4)
        batch = baseline_evaluations(decomposition, evaluator, validity)
        assert set(batch) == {"greedy", "layerwise"}
        scalar = FitnessEvaluator(decomposition, batch_size=4, use_span_matrix=False)
        assert batch["greedy"].fitness == scalar.evaluate(
            greedy_partition(decomposition, validity)
        ).fitness
        assert batch["layerwise"].fitness == scalar.evaluate(
            layerwise_partition(decomposition, validity)
        ).fitness


class TestEDPMatrices:
    def test_energy_matrices_allocate_lazily(self, fresh_decomposition):
        decomposition, _ = fresh_decomposition
        matrix = span_matrix_for(decomposition)
        assert matrix._energy_parts is None
        starts, ends = _span_arrays([(0, 2)])
        energy, latency = matrix.gather_energy_latency(starts, ends, 4)
        assert matrix._energy_parts is not None
        estimate = matrix.table.estimate(0, 2, 4)
        assert energy[0] == estimate.energy_pj
        assert latency[0] == estimate.latency_ns
