"""Tests for the four mutation operators (Sec. III-C3)."""

import numpy as np
import pytest

from repro.core.decomposition import decompose_model
from repro.core.mutation import (
    MutationKind,
    apply_mutation,
    mutate_fixed_random,
    mutate_merge,
    mutate_move,
    mutate_split,
)
from repro.core.partition import PartitionGroup
from repro.core.validity import ValidityMap


@pytest.fixture(scope="module")
def setup(resnet18_graph, chip_m):
    d = decompose_model(resnet18_graph, chip_m)
    vm = ValidityMap(d)
    return d, vm


def spans_of(boundaries):
    start = 0
    result = []
    for end in boundaries:
        result.append((start, end))
        start = end
    return result


def assert_valid_cover(d, vm, boundaries):
    assert boundaries[-1] == d.num_units
    assert all(b > a for a, b in zip(boundaries, boundaries[1:]))
    for start, end in spans_of(boundaries):
        assert vm.is_valid(start, end)


class TestMerge:
    def test_merge_reduces_partition_count(self, setup):
        d, vm = setup
        bounds = tuple(range(1, d.num_units + 1))  # fully split
        merged = mutate_merge(bounds, vm, pair_index=0)
        assert merged is not None
        assert len(merged) == len(bounds) - 1
        assert_valid_cover(d, vm, merged)

    def test_merge_invalid_pair_returns_none(self, setup):
        d, vm = setup
        greedy_bounds = []
        start = 0
        while start < d.num_units:
            end = vm.max_end(start)
            greedy_bounds.append(end)
            start = end
        if len(greedy_bounds) < 2:
            pytest.skip("model fits in one partition")
        # merging two maximal partitions must overflow the chip
        assert mutate_merge(tuple(greedy_bounds), vm, pair_index=0) is None

    def test_merge_out_of_range_pair(self, setup):
        d, vm = setup
        bounds = (d.num_units,)
        assert mutate_merge(bounds, vm, pair_index=0) is None
        assert mutate_merge(bounds, vm, pair_index=-1) is None


class TestSplit:
    def test_split_increases_partition_count(self, setup):
        d, vm = setup
        rng = np.random.default_rng(0)
        bounds = vm.random_partition_boundaries(rng)
        # pick a partition with more than one unit
        for index, (start, end) in enumerate(spans_of(bounds)):
            if end - start >= 2:
                result = mutate_split(tuple(bounds), vm, index, rng)
                assert result is not None
                assert len(result) == len(bounds) + 1
                assert_valid_cover(d, vm, result)
                return
        pytest.skip("no splittable partition")

    def test_split_single_unit_partition_returns_none(self, setup):
        d, vm = setup
        bounds = tuple(range(1, d.num_units + 1))
        rng = np.random.default_rng(0)
        assert mutate_split(bounds, vm, 0, rng) is None

    def test_split_out_of_range(self, setup):
        d, vm = setup
        rng = np.random.default_rng(0)
        assert mutate_split((d.num_units,), vm, 5, rng) is None


class TestMove:
    def test_move_preserves_partition_count(self, setup):
        d, vm = setup
        rng = np.random.default_rng(1)
        bounds = vm.random_partition_boundaries(rng)
        if len(bounds) < 2:
            pytest.skip("need at least two partitions")
        result = mutate_move(tuple(bounds), vm, 0, rng)
        if result is None:
            pytest.skip("no legal move for this boundary")
        assert len(result) == len(bounds)
        assert_valid_cover(d, vm, result)
        # exactly one boundary changed, by one unit
        diffs = [abs(a - b) for a, b in zip(result, bounds)]
        assert sum(1 for x in diffs if x) == 1
        assert max(diffs) == 1

    def test_move_out_of_range(self, setup):
        d, vm = setup
        rng = np.random.default_rng(1)
        assert mutate_move((d.num_units,), vm, 0, rng) is None


class TestFixedRandom:
    def test_fixed_partition_preserved(self, setup):
        d, vm = setup
        rng = np.random.default_rng(2)
        bounds = vm.random_partition_boundaries(rng)
        spans = spans_of(bounds)
        fixed_index = len(spans) // 2
        result = mutate_fixed_random(tuple(bounds), vm, fixed_index, rng)
        assert result is not None
        assert_valid_cover(d, vm, result)
        # the fixed span still exists as a partition in the result
        assert spans[fixed_index] in spans_of(result)

    def test_out_of_range_index(self, setup):
        d, vm = setup
        rng = np.random.default_rng(2)
        assert mutate_fixed_random((d.num_units,), vm, 7, rng) is None


class TestApplyMutation:
    @pytest.mark.parametrize("kind", list(MutationKind))
    def test_apply_each_kind_yields_valid_group_or_none(self, setup, kind):
        d, vm = setup
        rng = np.random.default_rng(3)
        bounds = vm.random_partition_boundaries(rng)
        group = PartitionGroup.from_boundaries(d, bounds)
        scores = list(rng.uniform(0.5, 1.5, size=group.num_partitions))
        result = apply_mutation(kind, group, vm, scores, rng)
        if result is not None:
            assert_valid_cover(d, vm, result)

    def test_scores_length_mismatch(self, setup):
        d, vm = setup
        rng = np.random.default_rng(3)
        group = PartitionGroup.from_boundaries(d, vm.random_partition_boundaries(rng))
        with pytest.raises(ValueError):
            apply_mutation(MutationKind.SPLIT, group, vm, [1.0], rng)

    def test_merge_single_partition_returns_none(self, squeezenet_decomposition_s):
        d = squeezenet_decomposition_s
        vm = ValidityMap(d)
        rng = np.random.default_rng(0)
        group = PartitionGroup.single_partition(d)
        assert apply_mutation(MutationKind.MERGE, group, vm, [1.0], rng) is None
        assert apply_mutation(MutationKind.MOVE, group, vm, [1.0], rng) is None

    def test_mutations_deterministic_given_seed(self, setup):
        d, vm = setup
        bounds = vm.random_partition_boundaries(np.random.default_rng(9))
        group = PartitionGroup.from_boundaries(d, bounds)
        scores = [1.0] * group.num_partitions
        a = apply_mutation(MutationKind.SPLIT, group, vm, scores, np.random.default_rng(5))
        b = apply_mutation(MutationKind.SPLIT, group, vm, scores, np.random.default_rng(5))
        assert a == b
