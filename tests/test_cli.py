"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "squeezenet"])
        assert args.model == "squeezenet"
        assert args.chip == "M"
        assert args.scheme == "compass"
        assert args.batch == 1

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "not_a_model"])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "resnet18", "--scheme", "magic"])

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "--models", "squeezenet", "--chips", "S", "--batches", "1", "4"]
        )
        assert args.models == ["squeezenet"]
        assert args.batches == [1, 4]

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out
        assert "squeezenet" in out

    def test_chips_command(self, capsys):
        assert main(["chips"]) == 0
        out = capsys.readouterr().out
        assert "1.125" in out
        assert "4.5" in out

    def test_compile_command_greedy(self, capsys):
        code = main(["compile", "squeezenet", "--chip", "S", "--scheme", "greedy",
                     "--batch", "2", "--no-instructions"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "Chip-S" in out

    def test_compile_command_writes_json(self, capsys, tmp_path):
        output = tmp_path / "out.json"
        code = main(["compile", "lenet5", "--chip", "S", "--scheme", "greedy",
                     "--batch", "1", "--no-instructions", "--output", str(output)])
        assert code == 0
        data = json.loads(output.read_text())
        assert data["model"] == "lenet5"
        assert data["scheme"] == "greedy"

    def test_sweep_command(self, capsys):
        code = main(["sweep", "--models", "squeezenet", "--chips", "S",
                     "--schemes", "greedy", "layerwise", "--batches", "1",
                     "--population", "8", "--generations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "squeezenet" in out
        assert "greedy" in out

    def test_compile_compass_small_ga(self, capsys):
        code = main(["compile", "squeezenet", "--chip", "S", "--scheme", "compass",
                     "--batch", "2", "--no-instructions",
                     "--population", "8", "--generations", "2"])
        assert code == 0
        assert "GA generations" in capsys.readouterr().out

    def test_compile_optimizer_dp_end_to_end(self, capsys, tmp_path):
        output = tmp_path / "dp.json"
        code = main(["compile", "squeezenet", "--chip", "S", "--optimizer", "dp",
                     "--batch", "2", "--no-instructions", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimizer            : dp (exact optimum" in out
        assert "Partition search (dp, exact optimum)" in out
        data = json.loads(output.read_text())
        assert data["optimizer"] == "dp"
        assert data["search"]["optimizer"] == "dp"
        assert data["search"]["exact"] is True
        assert data["search"]["best_boundaries"] == data["boundaries"]

    def test_compile_optimizer_beam_and_anneal(self, capsys):
        for optimizer in ("beam", "anneal"):
            code = main(["compile", "lenet5", "--chip", "S", "--optimizer", optimizer,
                         "--batch", "1", "--no-instructions"])
            assert code == 0
            assert f"Partition search ({optimizer})" in capsys.readouterr().out

    def test_compile_unknown_optimizer_message(self, capsys):
        code = main(["compile", "squeezenet", "--chip", "S", "--optimizer", "magic",
                     "--batch", "1", "--no-instructions"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown optimizer 'magic'" in err
        assert "anneal, beam, dp, ga" in err

    def test_sweep_unknown_optimizer_message(self, capsys):
        code = main(["sweep", "--models", "squeezenet", "--chips", "S",
                     "--batches", "1", "--optimizer", "nope"])
        assert code == 2
        assert "unknown optimizer 'nope'" in capsys.readouterr().err

    def test_sweep_with_dp_optimizer(self, capsys):
        code = main(["sweep", "--models", "squeezenet", "--chips", "S",
                     "--schemes", "compass", "--batches", "1",
                     "--optimizer", "dp"])
        assert code == 0
        assert "squeezenet" in capsys.readouterr().out
