"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "squeezenet"])
        assert args.model == "squeezenet"
        assert args.chip == "M"
        assert args.scheme == "compass"
        assert args.batch == 1

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "not_a_model"])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "resnet18", "--scheme", "magic"])

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "--models", "squeezenet", "--chips", "S", "--batches", "1", "4"]
        )
        assert args.models == ["squeezenet"]
        assert args.batches == [1, 4]

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out
        assert "squeezenet" in out

    def test_chips_command(self, capsys):
        assert main(["chips"]) == 0
        out = capsys.readouterr().out
        assert "1.125" in out
        assert "4.5" in out

    def test_compile_command_greedy(self, capsys):
        code = main(["compile", "squeezenet", "--chip", "S", "--scheme", "greedy",
                     "--batch", "2", "--no-instructions"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "Chip-S" in out

    def test_compile_command_writes_json(self, capsys, tmp_path):
        output = tmp_path / "out.json"
        code = main(["compile", "lenet5", "--chip", "S", "--scheme", "greedy",
                     "--batch", "1", "--no-instructions", "--output", str(output)])
        assert code == 0
        data = json.loads(output.read_text())
        assert data["model"] == "lenet5"
        assert data["scheme"] == "greedy"

    def test_sweep_command(self, capsys):
        code = main(["sweep", "--models", "squeezenet", "--chips", "S",
                     "--schemes", "greedy", "layerwise", "--batches", "1",
                     "--population", "8", "--generations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "squeezenet" in out
        assert "greedy" in out

    def test_compile_compass_small_ga(self, capsys):
        code = main(["compile", "squeezenet", "--chip", "S", "--scheme", "compass",
                     "--batch", "2", "--no-instructions",
                     "--population", "8", "--generations", "2"])
        assert code == 0
        assert "GA generations" in capsys.readouterr().out

    def test_compile_optimizer_dp_end_to_end(self, capsys, tmp_path):
        output = tmp_path / "dp.json"
        code = main(["compile", "squeezenet", "--chip", "S", "--optimizer", "dp",
                     "--batch", "2", "--no-instructions", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimizer            : dp (exact optimum" in out
        assert "Partition search (dp, exact optimum)" in out
        data = json.loads(output.read_text())
        assert data["optimizer"] == "dp"
        assert data["search"]["optimizer"] == "dp"
        assert data["search"]["exact"] is True
        assert data["search"]["best_boundaries"] == data["boundaries"]

    def test_compile_optimizer_beam_and_anneal(self, capsys):
        for optimizer in ("beam", "anneal"):
            code = main(["compile", "lenet5", "--chip", "S", "--optimizer", optimizer,
                         "--batch", "1", "--no-instructions"])
            assert code == 0
            assert f"Partition search ({optimizer})" in capsys.readouterr().out

    def test_compile_unknown_optimizer_message(self, capsys):
        code = main(["compile", "squeezenet", "--chip", "S", "--optimizer", "magic",
                     "--batch", "1", "--no-instructions"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown optimizer 'magic'" in err
        assert "anneal, beam, dp, ga" in err

    def test_sweep_unknown_optimizer_message(self, capsys):
        code = main(["sweep", "--models", "squeezenet", "--chips", "S",
                     "--batches", "1", "--optimizer", "nope"])
        assert code == 2
        assert "unknown optimizer 'nope'" in capsys.readouterr().err

    def test_sweep_with_dp_optimizer(self, capsys):
        code = main(["sweep", "--models", "squeezenet", "--chips", "S",
                     "--schemes", "compass", "--batches", "1",
                     "--optimizer", "dp"])
        assert code == 0
        assert "squeezenet" in capsys.readouterr().out


class TestServeCommand:
    SERVE_ARGS = ["serve", "--model", "squeezenet", "--chip", "S", "--optimizer", "dp",
                  "--traffic", "poisson", "--seed", "0", "--requests", "60"]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.model == ["resnet18"]
        assert args.chip == "M"
        assert args.optimizer == "dp"
        assert args.traffic == "poisson"
        assert args.policy == "latency"
        assert args.seed == 0

    def test_sweep_defaults_to_dp(self):
        assert build_parser().parse_args(["sweep"]).optimizer == "dp"
        assert build_parser().parse_args(["compile", "lenet5"]).optimizer == "ga"

    def test_serve_fixed_seed_is_deterministic(self, capsys, tmp_path):
        """The acceptance pin: one seed, bit-identical serving reports."""
        first_json = tmp_path / "first.json"
        second_json = tmp_path / "second.json"
        assert main(self.SERVE_ARGS + ["--output", str(first_json)]) == 0
        first_out = capsys.readouterr().out
        assert main(self.SERVE_ARGS + ["--output", str(second_json)]) == 0
        second_out = capsys.readouterr().out
        first_out = first_out.replace(str(first_json), "<out>")
        second_out = second_out.replace(str(second_json), "<out>")
        assert first_out == second_out
        first = json.loads(first_json.read_text())
        second = json.loads(second_json.read_text())
        assert first == second
        assert first["completed"] == 60
        assert first["throughput_rps"] > 0
        assert first["optimizer"] == "dp"
        for key in ("p50", "p95", "p99"):
            assert first["latency_ms"][key] > 0
        assert first["per_chip"][0]["utilisation"] > 0
        assert first["total_energy_mj"] > 0

    def test_serve_report_sections(self, capsys):
        assert main(self.SERVE_ARGS) == 0
        out = capsys.readouterr().out
        assert "Serving squeezenet on fleet S:1" in out
        assert "throughput" in out
        assert "p99" in out
        assert "plan cache" in out
        assert "per-chip utilisation" in out

    def test_serve_heterogeneous_fleet(self, capsys):
        code = main(["serve", "--model", "squeezenet", "--fleet", "S:1,M:1",
                     "--traffic", "bursty", "--policy", "latency",
                     "--seed", "1", "--requests", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet S:1,M:1" in out
        assert "S#0" in out and "M#1" in out

    def test_serve_trace_record_and_replay(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        out_live = tmp_path / "live.json"
        out_replay = tmp_path / "replay.json"
        assert main(self.SERVE_ARGS + ["--record-trace", str(trace),
                                       "--output", str(out_live)]) == 0
        capsys.readouterr()
        assert main(["serve", "--traffic", "trace", "--trace", str(trace),
                     "--chip", "S", "--optimizer", "dp",
                     "--output", str(out_replay)]) == 0
        capsys.readouterr()
        live = json.loads(out_live.read_text())
        replay = json.loads(out_replay.read_text())
        for key in ("completed", "throughput_rps", "latency_ms", "batches",
                    "batch_histogram", "total_energy_mj"):
            assert live[key] == replay[key]

    def test_serve_bad_inputs(self, capsys):
        assert main(["serve", "--model", "squeezenet", "--optimizer", "magic"]) == 2
        assert "unknown optimizer" in capsys.readouterr().err
        assert main(["serve", "--model", "squeezenet", "--fleet", "Z:1"]) == 2
        assert "unknown chip" in capsys.readouterr().err
        assert main(["serve", "--model", "squeezenet", "--traffic", "trace"]) == 2
        assert "requires --trace" in capsys.readouterr().err
        # bad numeric inputs and unreadable traces take the same friendly
        # error + exit-2 path, not a raw traceback
        assert main(["serve", "--model", "squeezenet", "--requests", "0"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["serve", "--model", "squeezenet", "--rate", "-5"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["serve", "--model", "squeezenet", "--cache-capacity", "0"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["serve", "--traffic", "trace",
                     "--trace", "/nonexistent/trace.json"]) == 2
        assert "error:" in capsys.readouterr().err
        # an explicit --rate 0 is an error, not silently replaced by auto-rate
        assert main(["serve", "--model", "squeezenet", "--rate", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_bad_trace_contents(self, capsys, tmp_path):
        malformed = tmp_path / "bad.json"
        malformed.write_text('{"requests": [{"id": 0}]}')
        assert main(["serve", "--traffic", "trace", "--trace", str(malformed)]) == 2
        assert "malformed trace" in capsys.readouterr().err
        unknown = tmp_path / "unknown.json"
        unknown.write_text(
            '{"requests": [{"id": 0, "model": "notamodel", "arrival_ns": 1.0}]}'
        )
        assert main(["serve", "--traffic", "trace", "--trace", str(unknown)]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_serve_timeline_prints_and_dumps(self, capsys, tmp_path):
        metrics_json = tmp_path / "metrics.json"
        metrics_csv = tmp_path / "metrics.csv"
        assert main(self.SERVE_ARGS + ["--timeline-us", "500",
                                       "--metrics-out", str(metrics_json)]) == 0
        out = capsys.readouterr().out
        assert "Metrics timeline:" in out
        assert "throughput_rps" in out
        assert "telemetry" in out
        timeline = json.loads(metrics_json.read_text())
        assert timeline and timeline[0]["window"] == 0
        assert main(self.SERVE_ARGS + ["--timeline-us", "500",
                                       "--metrics-out", str(metrics_csv)]) == 0
        capsys.readouterr()
        header = metrics_csv.read_text().splitlines()[0]
        assert header.startswith("window,t_ms,")

    def test_serve_trace_requests_dumps_chrome_trace(self, capsys, tmp_path):
        trace_out = tmp_path / "requests.json"
        assert main(self.SERVE_ARGS + ["--trace-requests", "5",
                                       "--trace-out", str(trace_out)]) == 0
        capsys.readouterr()
        trace = json.loads(trace_out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        assert trace["traceEvents"]
        assert all(event["ph"] in ("X", "i")
                   for event in trace["traceEvents"])

    def test_serve_streaming_percentiles_flag(self, capsys):
        assert main(self.SERVE_ARGS + ["--streaming-percentiles"]) == 0
        out = capsys.readouterr().out
        assert "streaming percentiles" in out
        assert "p99" in out

    def test_serve_telemetry_bad_inputs(self, capsys, tmp_path):
        # output flags without the matching telemetry knob are exit-2
        # config errors, not silently empty files
        assert main(self.SERVE_ARGS +
                    ["--metrics-out", str(tmp_path / "m.json")]) == 2
        assert "--timeline-us" in capsys.readouterr().err
        assert main(self.SERVE_ARGS +
                    ["--trace-out", str(tmp_path / "t.json")]) == 2
        assert "--trace-requests" in capsys.readouterr().err
        assert main(self.SERVE_ARGS + ["--timeline-us", "-10"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_telemetry_env_off(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_TELEMETRY", "0")
        metrics = tmp_path / "metrics.json"
        assert main(self.SERVE_ARGS + ["--timeline-us", "500",
                                       "--metrics-out", str(metrics)]) == 0
        captured = capsys.readouterr()
        assert "telemetry disabled" in captured.err
        assert not metrics.exists()
        assert "Metrics timeline:" not in captured.out

    def test_serve_switch_cost_sections(self, capsys, tmp_path):
        # switch cost is on by default: multiple batch sizes force plan
        # switches, which the report and the JSON dump must surface
        output = tmp_path / "switch.json"
        assert main(self.SERVE_ARGS + ["--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "plan switches" in out
        data = json.loads(output.read_text())
        assert data["switch"]["plan_switches"] >= 0
        assert "plan_switches" in data["per_chip"][0]

    def test_serve_switch_cost_env_off(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_SWITCH_COST", "0")
        output = tmp_path / "legacy.json"
        assert main(self.SERVE_ARGS + ["--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "plan switches" not in out
        data = json.loads(output.read_text())
        assert "switch" not in data
        assert "plan_switches" not in data["per_chip"][0]

    def test_serve_slo_report_and_dump(self, capsys, tmp_path):
        output = tmp_path / "slo.json"
        code = main(["serve", "--model", "squeezenet", "lenet5",
                     "--fleet", "S:1,M:1", "--policy", "fair",
                     "--optimizer", "dp", "--seed", "0", "--requests", "40",
                     "--slo", "squeezenet=5", "--slo", "lenet5=2",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "SLO squeezenet" in out
        assert "SLO lenet5" in out
        assert "attainment" in out
        data = json.loads(output.read_text())
        assert set(data["slo"]) == {"squeezenet", "lenet5"}
        assert data["slo"]["squeezenet"]["target_ms"] == 5.0
        assert 0.0 <= data["slo"]["lenet5"]["attainment"] <= 1.0
        assert data["policy"] == "fair"

    def test_serve_slo_bad_inputs(self, capsys):
        base = ["serve", "--model", "squeezenet", "--chip", "S",
                "--optimizer", "dp", "--requests", "10"]
        assert main(base + ["--slo", "resnet18=5"]) == 2
        assert "unknown model" in capsys.readouterr().err
        assert main(base + ["--slo", "squeezenet"]) == 2
        assert "expected MODEL=MS" in capsys.readouterr().err
        assert main(base + ["--slo", "squeezenet=abc"]) == 2
        assert "expected MODEL=MS" in capsys.readouterr().err
        assert main(base + ["--slo", "squeezenet=0"]) == 2
        assert "SLO target" in capsys.readouterr().err

    def test_serve_closed_loop_deterministic(self, capsys, tmp_path):
        args = ["serve", "--model", "squeezenet", "--chip", "S",
                "--optimizer", "dp", "--traffic", "closed", "--clients", "3",
                "--concurrency", "2", "--think-us", "100", "--seed", "4",
                "--requests", "30"]
        first_json = tmp_path / "c1.json"
        second_json = tmp_path / "c2.json"
        assert main(args + ["--output", str(first_json)]) == 0
        first_out = capsys.readouterr().out
        assert main(args + ["--output", str(second_json)]) == 0
        capsys.readouterr()
        first = json.loads(first_json.read_text())
        second = json.loads(second_json.read_text())
        first.pop("plan_cache"), second.pop("plan_cache")
        assert first == second
        assert first["completed"] == 30
        assert first["traffic"]["traffic"] == "closed"
        assert first["traffic"]["clients"] == 3
        assert "closed traffic" in first_out

    def test_serve_closed_loop_records_replayable_trace(self, capsys, tmp_path):
        trace = tmp_path / "closed-trace.json"
        assert main(["serve", "--model", "squeezenet", "--chip", "S",
                     "--optimizer", "dp", "--traffic", "closed",
                     "--clients", "2", "--requests", "20",
                     "--record-trace", str(trace)]) == 0
        assert "trace recorded" in capsys.readouterr().out
        replay = tmp_path / "replay.json"
        assert main(["serve", "--traffic", "trace", "--trace", str(trace),
                     "--chip", "S", "--optimizer", "dp",
                     "--output", str(replay)]) == 0
        capsys.readouterr()
        assert json.loads(replay.read_text())["completed"] == 20

    def test_serve_closed_loop_bad_inputs(self, capsys):
        base = ["serve", "--model", "squeezenet", "--chip", "S",
                "--optimizer", "dp", "--traffic", "closed"]
        assert main(base + ["--clients", "0"]) == 2
        assert "clients" in capsys.readouterr().err
        assert main(base + ["--think-us", "-1"]) == 2
        assert "think" in capsys.readouterr().err

    def test_serve_fair_policy_accepted(self):
        args = build_parser().parse_args(["serve", "--policy", "fair"])
        assert args.policy == "fair"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "magic"])


class TestServeFaultCLI:
    BASE = ["serve", "--model", "squeezenet", "--chip", "S", "--optimizer", "dp",
            "--traffic", "poisson", "--seed", "0", "--requests", "40"]

    def test_inject_chip_fail_with_retries(self, capsys, tmp_path):
        output = tmp_path / "faults.json"
        assert main(self.BASE + ["--fleet", "S:2",
                                 "--inject", "chip_fail@300:chip=0,until=3000",
                                 "--retries", "2", "--timeout-us", "8000",
                                 "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "chip failures" in out
        assert "availability" in out
        data = json.loads(output.read_text())
        assert data["faults"]["failures"] == 1
        assert data["completed"] == 40
        assert "downtime_ms" in data["per_chip"][0]

    def test_no_fault_run_keeps_legacy_output(self, capsys, tmp_path):
        output = tmp_path / "clean.json"
        assert main(self.BASE + ["--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "chip failures" not in out
        assert "availability" not in out
        assert "faults" not in json.loads(output.read_text())

    def test_inject_repeatable(self, capsys):
        assert main(self.BASE + ["--inject", "straggler@100:chip=0,factor=2",
                                 "--inject", "dram_degrade@200:chip=0,factor=2"]) == 0
        assert "availability" in capsys.readouterr().out

    def test_malformed_inject_rejected(self, capsys):
        assert main(self.BASE + ["--inject", "bogus@500:chip=0"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err
        assert main(self.BASE + ["--inject", "chip_fail@soon:chip=0"]) == 2
        assert "not a number" in capsys.readouterr().err
        assert main(self.BASE + ["--inject", "chip_fail@500:color=red"]) == 2
        assert "unknown key" in capsys.readouterr().err
        assert main(self.BASE + ["--inject", "chip_fail"]) == 2
        assert "expected KIND@AT_US" in capsys.readouterr().err

    def test_out_of_range_chip_rejected(self, capsys):
        assert main(self.BASE + ["--inject", "chip_fail@500:chip=9"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_negative_knobs_rejected(self, capsys):
        assert main(self.BASE + ["--retries", "-1"]) == 2
        assert "max_retries" in capsys.readouterr().err
        assert main(self.BASE + ["--timeout-us", "-1"]) == 2
        assert "timeout_us" in capsys.readouterr().err
        assert main(self.BASE + ["--retry-backoff-us", "-1"]) == 2
        assert "retry_backoff_us" in capsys.readouterr().err
        assert main(self.BASE + ["--shed-queue-depth", "-1"]) == 2
        assert "shed_queue_depth" in capsys.readouterr().err
        assert main(self.BASE + ["--shed-wait-us", "-1"]) == 2
        assert "shed_wait_us" in capsys.readouterr().err
        assert main(self.BASE + ["--degrade-below", "1.5"]) == 2
        assert "degrade_below" in capsys.readouterr().err
        # pre-existing knobs keep the same friendly exit-2 contract
        assert main(self.BASE + ["--max-wait-us", "-5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_shedding_flags_end_to_end(self, capsys, tmp_path):
        output = tmp_path / "shed.json"
        assert main(self.BASE + ["--rate", "50000",
                                 "--shed-queue-depth", "4",
                                 "--output", str(output)]) == 0
        capsys.readouterr()
        data = json.loads(output.read_text())
        assert data["faults"]["shed"] > 0
        assert data["completed"] + data["faults"]["shed"] == 40

    def test_out_of_range_chip_rejected_at_parse_time(self, capsys, monkeypatch):
        # fault targets are validated before the plan-cache warmup — and
        # before the env gate could drop the schedule, so a typo'd chip
        # index is caught even in a REPRO_SERVE_FAULTS=0 dry run
        monkeypatch.setenv("REPRO_SERVE_FAULTS", "0")
        assert main(self.BASE + ["--inject", "straggler@0:chip=9,factor=2"]) == 2
        assert "out of range" in capsys.readouterr().err
        assert main(self.BASE + ["--inject", "chip_recover@100:chip=3"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_retry_priority_flag(self, capsys, tmp_path):
        output = tmp_path / "prio.json"
        assert main(self.BASE + ["--fleet", "S:2",
                                 "--inject", "chip_fail@300:chip=0,until=3000",
                                 "--retries", "2", "--retry-priority",
                                 "--output", str(output)]) == 0
        capsys.readouterr()
        data = json.loads(output.read_text())
        assert data["completed"] + data["faults"]["lost"] == 40


class TestServeControlCLI:
    BASE = ["serve", "--model", "squeezenet", "--chip", "S", "--optimizer", "dp",
            "--traffic", "poisson", "--seed", "0", "--requests", "40"]

    def test_control_plane_end_to_end(self, capsys, tmp_path):
        output = tmp_path / "control.json"
        assert main(self.BASE + ["--fleet", "S:2",
                                 "--inject", "chip_fail@300:chip=0,until=5000",
                                 "--retries", "2",
                                 "--control-interval-us", "200",
                                 "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "control plane" in out
        assert "quarantines" in out
        data = json.loads(output.read_text())
        assert data["control"]["ticks"] > 0
        assert data["control"]["interval_us"] == 200.0
        assert data["control"]["detections"] == \
            data["control"]["true_detections"] + \
            data["control"]["false_detections"]

    def test_hedge_and_autoscale_flags(self, capsys, tmp_path):
        output = tmp_path / "healing.json"
        assert main(self.BASE + ["--fleet", "S:2", "--rate", "30000",
                                 "--slo", "squeezenet=8",
                                 "--retries", "1",
                                 "--control-interval-us", "200",
                                 "--hedge-after-pct", "80",
                                 "--autoscale", "2:5",
                                 "--cooldown-us", "500",
                                 "--output", str(output)]) == 0
        capsys.readouterr()
        data = json.loads(output.read_text())
        control = data["control"]
        assert control["base_chips"] == 2
        assert 2 <= control["final_chips"] <= 5

    def test_controller_off_keeps_legacy_output(self, capsys, tmp_path):
        output = tmp_path / "off.json"
        assert main(self.BASE + ["--output", str(output)]) == 0
        assert "control plane" not in capsys.readouterr().out
        assert "control" not in json.loads(output.read_text())

    def test_control_features_need_the_interval(self, capsys):
        assert main(self.BASE + ["--hedge-after-pct", "90"]) == 2
        assert "--control-interval-us" in capsys.readouterr().err
        assert main(self.BASE + ["--autoscale", "1:4"]) == 2
        assert "--control-interval-us" in capsys.readouterr().err

    def test_bad_autoscale_spec_rejected(self, capsys):
        base = self.BASE + ["--control-interval-us", "200"]
        assert main(base + ["--autoscale", "four"]) == 2
        assert "expected MIN:MAX" in capsys.readouterr().err
        assert main(base + ["--autoscale", "4"]) == 2
        assert "expected MIN:MAX" in capsys.readouterr().err
        assert main(base + ["--autoscale", "5:2"]) == 2
        assert "min_chips" in capsys.readouterr().err

    def test_bad_control_knobs_rejected(self, capsys):
        base = self.BASE + ["--control-interval-us", "200"]
        assert main(base + ["--straggler-ratio", "1.0"]) == 2
        assert "straggler_ratio" in capsys.readouterr().err
        assert main(base + ["--quarantine-after", "0"]) == 2
        assert "quarantine_after" in capsys.readouterr().err
        assert main(base + ["--probation-us", "0"]) == 2
        assert "probation_us" in capsys.readouterr().err
        assert main(base + ["--hedge-after-pct", "100"]) == 2
        assert "hedge_after_pct" in capsys.readouterr().err

    def test_unknown_scale_chip_rejected(self, capsys):
        assert main(self.BASE + ["--control-interval-us", "200",
                                 "--autoscale", "1:4",
                                 "--scale-chip", "Z"]) == 2
        assert "unknown chip" in capsys.readouterr().err

    def test_control_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--control-interval-us", "250", "--autoscale", "2:6",
             "--hedge-after-pct", "85", "--no-replace-plans",
             "--retry-priority"])
        assert args.control_interval_us == 250.0
        assert args.autoscale == "2:6"
        assert args.hedge_after_pct == 85.0
        assert args.no_replace_plans is True
        assert args.retry_priority is True
