#!/usr/bin/env python
"""Fail when the quick-bench headliners regress against the committed baseline.

Runs the quick benchmark suite (``REPRO_BENCH_QUICK=1``, i.e. the fig6/fig10
and partition-search DP/gap headliners) into a temporary JSON record and
compares it against the most recent ``BENCH_<date>.json`` committed in the
repository root.  Exits non-zero if any common benchmark's mean regressed by
more than the threshold (default 20%, override with
``REPRO_BENCH_REGRESSION_PCT``).  Benchmarks present in only one record —
headliners newer than the committed baseline, or retired ones — are
tolerated: they are reported but only the common set can fail the check.

The comparison is only meaningful on the machine profile that produced the
baseline; on a different CPU brand/core count the check is skipped (exit 0
with a notice).  Wire-up into the test suite is opt-in:
``REPRO_CHECK_BENCH=1 pytest tests/test_bench_regression.py``.
"""

from __future__ import annotations

import glob
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from compare_bench import compare, load_means  # noqa: E402

from repro import envflags  # noqa: E402


def latest_baseline() -> str:
    """Path of the newest committed BENCH_<date>.json (by filename date)."""
    records = glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
    dated = [r for r in records if re.search(r"BENCH_\d{8}\.json$", r)]
    if not dated:
        raise SystemExit("no BENCH_<date>.json baseline found in the repository root")
    return max(dated, key=lambda path: os.path.basename(path))


def main() -> int:
    baseline = latest_baseline()
    threshold = envflags.bench_regression_pct()

    _, baseline_profile = load_means(baseline)
    try:
        import cpuinfo

        current = cpuinfo.get_cpu_info()
        current_profile = {
            "brand": current.get("brand_raw", ""),
            "count": os.cpu_count() or 0,
        }
    except ImportError:
        current_profile = None
    if current_profile is not None and current_profile != baseline_profile:
        print(f"machine profile differs from baseline {os.path.basename(baseline)} "
              f"({current_profile} vs {baseline_profile}); skipping regression check")
        return 0

    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "bench_current.json")
        env = dict(os.environ)
        env["REPRO_BENCH_QUICK"] = "1"
        env["REPRO_BENCH_OUT"] = out
        print(f"running quick benchmarks against baseline {os.path.basename(baseline)} "
              f"(threshold {threshold:.0f}%)")
        run = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "benchmarks", "run_bench.py"), "-q"],
            env=env, cwd=REPO_ROOT,
        )
        if run.returncode != 0:
            print("quick benchmark run failed")
            return run.returncode
        return compare(baseline, out, fail_above_pct=threshold)


if __name__ == "__main__":
    sys.exit(main())
