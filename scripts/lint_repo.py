#!/usr/bin/env python
"""Fail when ``src/`` violates the repo's statically-checkable invariants.

Runs the invariant linter (:mod:`repro.analysis`, the same engine behind
``repro lint``) over ``src/`` against the committed ``lint_baseline.json``
and exits non-zero on any non-baselined, non-suppressed finding — or on a
stale baseline entry, so the grandfathered set shrinks monotonically
instead of fossilising.  The per-rule stats table is always printed, so CI
logs show suppression/baseline drift even on green runs.

Mirror of ``scripts/check_bench_regression.py`` for the static side:
``python scripts/lint_repo.py`` locally is exactly what CI runs.  Pass
extra paths to lint more than ``src/`` (e.g. ``benchmarks/ scripts/``).
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import analysis  # noqa: E402


def main(argv: list) -> int:
    paths = [os.path.join(REPO_ROOT, p) for p in argv] or \
        [os.path.join(REPO_ROOT, "src")]
    baseline_path = os.path.join(REPO_ROOT, analysis.BASELINE_FILENAME)
    baseline = analysis.load_baseline(baseline_path)
    run = analysis.run_lint(paths, analysis.ALL_RULES, root=REPO_ROOT,
                            baseline=baseline)
    print(analysis.render_text(run))
    print(analysis.lint_stats(run, analysis.ALL_RULES).render())
    if run.stale_baseline:
        for file, rule, message in run.stale_baseline:
            print(f"stale baseline entry (already fixed — prune it): "
                  f"{file}: [{rule}] {message}")
        return 1
    return 1 if run.reported else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
