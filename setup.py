"""Setup shim so legacy (non-PEP-517) editable installs work offline.

All project metadata lives in ``pyproject.toml`` (setuptools >= 61 reads it
from here too).  Supported install paths:

* ``pip install -e .`` — on environments with the ``wheel`` package;
* ``python setup.py develop`` — offline fallback for environments without
  ``wheel`` or network access (such as the pinned CI container).

For running the tests no install is needed at all: the repository-root
``conftest.py`` puts ``src/`` on ``sys.path``, so a plain ``pytest`` works.
"""

from setuptools import setup

setup()
