"""Setup shim so legacy (non-PEP-517) editable installs work offline.

The runtime environment has no network access and no ``wheel`` package, so
``pip install -e . --no-use-pep517 --no-build-isolation`` is the supported
install path; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
