"""Exact dynamic-programming partition search.

The paper treats partitioning as a black-box search and attacks it with the
GA of Algorithm 1.  But with the dense span matrix of :mod:`repro.perf`
every span cost is an O(1) gather, and in latency mode the partition-group
fitness is *additive* over spans — so the problem is a shortest path over
the ``L + 1`` cut positions of the unit string and can be solved exactly:

    best[0] = 0
    best[j] = min over valid spans [i, j) of  best[i] + cost(i, j)

with the validity map masking the transitions.  ``best[L]`` is the provable
optimum, which is what lets :func:`repro.evaluation.experiments.optimality_gap`
quantify how far the GA lands from it.

The accumulation ``best[i] + cost(i, j)`` associates left to right, exactly
like the sequential Python ``sum`` that defines
:attr:`~repro.core.fitness.GroupEvaluation.fitness` — so the DP optimum is
bit-identical to evaluating the reconstructed group, not merely close.

EDP mode is *not* additive (group EDP is ``sum(energy) × sum(latency)``), so
no scalar DP applies.  Instead the engine runs a Pareto-frontier DP over
``(latency, energy)`` prefix states: both coordinates are additive and the
final objective is monotone in both, so dominated prefixes can never win and
pruning them is lossless.  The result is exact while the frontier fits in
``max_frontier`` states per cut position; if a frontier ever overflows, it
is thinned evenly and the result is reported with ``exact=False`` (a strong
heuristic and a lower-bound witness rather than a certificate).

The per-position frontier sizes of the last EDP run are recorded in
:attr:`DPOptimalSearch.frontier_sizes`, and
:func:`repro.evaluation.experiments.edp_frontier_sizes` measures them across
the registry.  Measured maxima (batch 1 and 16, uncapped): ≤ 7 on the
ResNet family, ≤ 500 on alexnet/mobilenet/squeezenet, and 4166 at worst on
vgg11-S — which sizes :data:`DEFAULT_MAX_FRONTIER` (8192) with ~2x headroom,
so the EDP DP is exact for every registry model on every chip.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.decomposition import ModelDecomposition
from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.core.partition import PartitionGroup
from repro.core.validity import ValidityMap
from repro.search.base import PartitionSearch, SearchResult, SearchStep, SpanCostModel

#: default Pareto states kept per cut position in EDP mode; sized so no
#: registry model's real frontier overflows it (see the module docstring)
DEFAULT_MAX_FRONTIER = 8192


class DPOptimalSearch(PartitionSearch):
    """Exact Bellman DP over the validity-masked span matrix."""

    name = "dp"

    def __init__(
        self,
        decomposition: ModelDecomposition,
        evaluator: FitnessEvaluator,
        validity: Optional[ValidityMap] = None,
        max_frontier: int = DEFAULT_MAX_FRONTIER,
    ) -> None:
        super().__init__(decomposition, evaluator, validity)
        if max_frontier != 0 and max_frontier < 2:
            raise ValueError("max_frontier must be 0 (uncapped) or at least 2")
        #: Pareto states kept per cut position in EDP mode (0 disables the cap)
        self.max_frontier = max_frontier
        #: per-position Pareto frontier sizes of the last EDP run (after
        #: pruning/thinning); ``None`` until an EDP search has run
        self.frontier_sizes: Optional[List[int]] = None

    # ------------------------------------------------------------------
    def _run(self) -> SearchResult:
        if self.evaluator.mode is FitnessMode.LATENCY:
            return self._run_latency()
        return self._run_edp()

    # ------------------------------------------------------------------
    # latency mode: scalar shortest-path DP (provably exact)
    # ------------------------------------------------------------------
    def _run_latency(self) -> SearchResult:
        n = self.decomposition.num_units
        starts, ends = self._valid_spans()
        cost_model = SpanCostModel(self.evaluator)
        costs = cost_model.latency_costs(starts, ends)

        span_cost = np.full((n + 1, n + 1), np.inf)
        span_cost[starts, ends] = costs

        best = np.full(n + 1, np.inf)
        best[0] = 0.0
        choice = np.zeros(n + 1, dtype=np.int64)
        depth = np.zeros(n + 1, dtype=np.int64)
        history: List[SearchStep] = []
        for j in range(1, n + 1):
            # every prefix in best[:j] is finite: [j-1, j) is always valid
            # (a unit that does not fit alone fails ValidityMap construction)
            totals = best[:j] + span_cost[:j, j]
            i = int(np.argmin(totals))
            best[j] = totals[i]
            choice[j] = i
            depth[j] = depth[i] + 1
            history.append(
                SearchStep(
                    step=j,
                    best_fitness=float(best[n]) if j == n else float("inf"),
                    candidate_fitness=float(best[j]),
                    num_partitions=int(depth[j]),
                )
            )

        boundaries: List[int] = []
        j = n
        while j > 0:
            boundaries.append(j)
            j = int(choice[j])
        boundaries.reverse()

        group = PartitionGroup.from_boundaries(self.decomposition, boundaries)
        evaluation = self.evaluator.evaluate(group)
        return SearchResult(
            optimizer=self.name,
            best_group=group,
            best_evaluation=evaluation,
            history=history,
            steps_run=n,
            evaluations=cost_model.spans_costed,
            exact=True,
        )

    # ------------------------------------------------------------------
    # EDP mode: Pareto-frontier DP over (latency, energy) prefix states
    # ------------------------------------------------------------------
    def _run_edp(self) -> SearchResult:
        n = self.decomposition.num_units
        starts, ends = self._valid_spans()
        cost_model = SpanCostModel(self.evaluator)
        energy, latency = cost_model.energy_latency_costs(starts, ends)

        span_energy = np.full((n + 1, n + 1), np.inf)
        span_latency = np.full((n + 1, n + 1), np.inf)
        span_energy[starts, ends] = energy
        span_latency[starts, ends] = latency
        valid = np.zeros((n + 1, n + 1), dtype=bool)
        valid[starts, ends] = True

        # state: (latency_sum, energy_sum, predecessor position, state index
        # there, partitions so far); position 0 holds the empty prefix
        states: List[List[Tuple[float, float, int, int, int]]] = [[] for _ in range(n + 1)]
        states[0] = [(0.0, 0.0, -1, -1, 0)]
        exact = True
        self.frontier_sizes = []
        history: List[SearchStep] = []
        for j in range(1, n + 1):
            candidates: List[Tuple[float, float, int, int, int]] = []
            for i in np.nonzero(valid[:j, j])[0].tolist():
                lat_ij = span_latency[i, j]
                en_ij = span_energy[i, j]
                for idx, (lat, en, _, _, parts) in enumerate(states[i]):
                    candidates.append(
                        (lat + lat_ij, en + en_ij, i, idx, parts + 1)
                    )
            # Pareto prune: sort by (latency, energy); keep strictly
            # decreasing energy.  Dominated prefixes can never produce a
            # better final EDP because both coordinates only ever grow.
            candidates.sort(key=lambda state: (state[0], state[1]))
            frontier: List[Tuple[float, float, int, int, int]] = []
            best_energy = float("inf")
            for state in candidates:
                if state[1] < best_energy:
                    frontier.append(state)
                    best_energy = state[1]
            # record the true (pre-thinning) frontier size: this is what the
            # edp_frontier_sizes experiment measures against the cap
            self.frontier_sizes.append(len(frontier))
            if self.max_frontier and len(frontier) > self.max_frontier:
                # thin evenly along the frontier, keeping both extremes
                keep = np.linspace(0, len(frontier) - 1, self.max_frontier)
                frontier = [frontier[int(k)] for k in np.round(keep)]
                exact = False
            states[j] = frontier
            prefix_best = min(
                frontier, key=lambda state: (state[1] * state[0]) * 1e-12
            )
            history.append(
                SearchStep(
                    step=j,
                    best_fitness=float("inf"),
                    candidate_fitness=(prefix_best[1] * prefix_best[0]) * 1e-12,
                    num_partitions=prefix_best[4],
                )
            )

        # same association as GroupEvaluation's EDP fitness:
        # (sum energies) * (sum latencies) * 1e-12, energies first
        final = min(
            range(len(states[n])),
            key=lambda k: (states[n][k][1] * states[n][k][0]) * 1e-12,
        )
        boundaries: List[int] = []
        j, idx = n, final
        while j > 0:
            boundaries.append(j)
            _, _, j, idx, _ = states[j][idx]
        boundaries.reverse()

        group = PartitionGroup.from_boundaries(self.decomposition, boundaries)
        evaluation = self.evaluator.evaluate(group)
        if history:
            history[-1].best_fitness = evaluation.fitness
        return SearchResult(
            optimizer=self.name,
            best_group=group,
            best_evaluation=evaluation,
            history=history,
            steps_run=n,
            evaluations=cost_model.spans_costed,
            exact=exact,
        )
