"""The COMPASS GA behind the :class:`~repro.search.base.PartitionSearch` interface.

A thin adapter: construction and execution of :class:`~repro.core.ga.CompassGA`
are exactly what the compiler did before the search subsystem existed — same
argument order, same RNG seeding, same evaluator — so fixed-seed GA results
are bit-identical through the adapter (pinned by ``tests/test_search.py``).
The full :class:`~repro.core.ga.GAResult` (per-generation history, dedup
statistics) rides along on :attr:`~repro.search.base.SearchResult.ga_result`
for consumers that want Fig. 10-style records.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.decomposition import ModelDecomposition
from repro.core.fitness import FitnessEvaluator
from repro.core.ga import CompassGA, GAConfig
from repro.core.mutation import MutationKind
from repro.core.validity import ValidityMap
from repro.search.base import PartitionSearch, SearchResult, SearchStep


class GASearch(PartitionSearch):
    """Adapter exposing the COMPASS GA as a partition-search engine."""

    name = "ga"

    def __init__(
        self,
        decomposition: ModelDecomposition,
        evaluator: FitnessEvaluator,
        validity: Optional[ValidityMap] = None,
        ga_config: GAConfig = GAConfig(),
        mutation_kinds: Optional[Sequence[MutationKind]] = None,
    ) -> None:
        super().__init__(decomposition, evaluator, validity)
        self.ga_config = ga_config
        self.mutation_kinds = mutation_kinds

    # ------------------------------------------------------------------
    def _run(self) -> SearchResult:
        ga = CompassGA(
            self.decomposition,
            self.evaluator,
            self.ga_config,
            self.validity,
            mutation_kinds=self.mutation_kinds,
        )
        result = ga.run()
        history: List[SearchStep] = [
            SearchStep(
                step=record.generation,
                best_fitness=record.best_fitness,
                candidate_fitness=record.mean_fitness,
                num_partitions=record.num_partitions[0] if record.num_partitions else 0,
            )
            for record in result.history
        ]
        return SearchResult(
            optimizer=self.name,
            best_group=result.best_group,
            best_evaluation=result.best_evaluation,
            history=history,
            steps_run=result.generations_run,
            evaluations=result.evaluations,
            exact=False,
            ga_result=result,
        )
