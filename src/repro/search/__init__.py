"""Pluggable partition-search subsystem.

One problem, four engines behind one interface: choose the cut positions of
a :class:`~repro.core.partition.PartitionGroup` minimising the fitness of a
:class:`~repro.core.fitness.FitnessEvaluator`.

* :class:`DPOptimalSearch` (``dp``) — exact Bellman DP over the
  validity-masked span matrix; the provable optimum in latency mode, a
  Pareto-frontier DP over (latency, energy) prefix states in EDP mode.
* :class:`BeamSearch` (``beam``) — width-limited constructive search.
* :class:`SimulatedAnnealing` (``anneal``) — Metropolis chain reusing the
  GA's mutation kernels and batched RNG.
* :class:`GASearch` (``ga``) — the COMPASS GA of Algorithm 1, adapted
  without changing its fixed-seed results.

Engines are registered by name in :data:`OPTIMIZERS` and constructed with
:func:`make_search`; the compiler's ``--optimizer`` option routes here.
All engines share one span-cost source (the dense span matrix / span table
attached to the decomposition), so running several engines on one
decomposition — as the optimality-gap experiment does — amortises span
profiling across them.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.core.decomposition import ModelDecomposition
from repro.core.fitness import FitnessEvaluator
from repro.core.validity import ValidityMap
from repro.search.anneal import SimulatedAnnealing
from repro.search.base import PartitionSearch, SearchResult, SearchStep, SpanCostModel
from repro.search.beam import BeamSearch
from repro.search.dp import DPOptimalSearch
from repro.search.ga_adapter import GASearch

#: Search engines by registry name (the ``--optimizer`` values).
OPTIMIZERS: Dict[str, Type[PartitionSearch]] = {
    GASearch.name: GASearch,
    DPOptimalSearch.name: DPOptimalSearch,
    BeamSearch.name: BeamSearch,
    SimulatedAnnealing.name: SimulatedAnnealing,
}


def validate_optimizer(optimizer: str) -> None:
    """Raise ``ValueError`` for a name not in :data:`OPTIMIZERS`.

    The single source of the "unknown optimizer" message — the CLI and
    :class:`~repro.core.compiler.CompilerOptions` both route through it.
    """
    if optimizer not in OPTIMIZERS:
        known = ", ".join(sorted(OPTIMIZERS))
        raise ValueError(
            f"unknown optimizer {optimizer!r}; expected one of: {known}"
        )


def make_search(
    optimizer: str,
    decomposition: ModelDecomposition,
    evaluator: FitnessEvaluator,
    validity: Optional[ValidityMap] = None,
    **kwargs,
) -> PartitionSearch:
    """Construct a search engine by registry name.

    Extra keyword arguments are forwarded to the engine's constructor
    (e.g. ``ga_config=`` for ``ga``, ``width=`` for ``beam``, ``steps=`` /
    ``seed=`` for ``anneal``, ``max_frontier=`` for ``dp``).
    """
    validate_optimizer(optimizer)
    return OPTIMIZERS[optimizer](decomposition, evaluator, validity=validity, **kwargs)


__all__ = [
    "BeamSearch",
    "DPOptimalSearch",
    "GASearch",
    "OPTIMIZERS",
    "PartitionSearch",
    "SearchResult",
    "SearchStep",
    "SimulatedAnnealing",
    "SpanCostModel",
    "make_search",
    "validate_optimizer",
]
