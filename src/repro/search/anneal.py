"""Simulated annealing over partition groups.

A single-chain counterpart to the GA: the state is one partition group, a
move applies one of the GA's own mutation kernels (merge / split / move /
fixed-random, :mod:`repro.core.mutation`), and moves that worsen the fitness
are accepted with the Metropolis probability ``exp(-delta / T)`` under a
geometric cooling schedule.  Because it shares the mutation kernels and the
fitness evaluator with the GA, its moves hit the same shared span table and
dense span matrix — an annealing run after a GA run on the same
decomposition is almost entirely gathers.

Mutation targeting reuses the paper's partition score (Sec. III-C2): the
expectation the scores are computed against comes from a small random
reference population drawn once at start-up (the annealer has no population
of its own to average over).  Randomness is batched like the GA's: the
per-step mutation-kind permutations and the Metropolis uniforms are drawn in
one generator call each at the start of the run, and the mutation kernels
consume their own block samplers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.decomposition import ModelDecomposition
from repro.core.fitness import FitnessEvaluator, GroupEvaluation
from repro.core.mutation import MutationKind, apply_mutation
from repro.core.partition import PartitionGroup
from repro.core.score import partition_scores, population_unit_expectation
from repro.core.validity import ValidityMap
from repro.search.base import PartitionSearch, SearchResult, SearchStep


class SimulatedAnnealing(PartitionSearch):
    """Metropolis search over partition groups using the GA mutation kernels."""

    name = "anneal"

    def __init__(
        self,
        decomposition: ModelDecomposition,
        evaluator: FitnessEvaluator,
        validity: Optional[ValidityMap] = None,
        steps: int = 500,
        initial_temperature: float = 0.05,
        cooling: float = 0.99,
        reference_size: int = 12,
        seed: int = 0,
        mutation_kinds: Optional[List[MutationKind]] = None,
    ) -> None:
        super().__init__(decomposition, evaluator, validity)
        if steps <= 0:
            raise ValueError("steps must be positive")
        if not 0.0 < cooling <= 1.0:
            raise ValueError("cooling must be in (0, 1]")
        if initial_temperature < 0.0:
            raise ValueError("initial_temperature must be non-negative")
        self.steps = steps
        #: starting temperature as a fraction of the initial fitness
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.reference_size = reference_size
        self.rng = np.random.default_rng(seed)
        self.mutation_kinds: List[MutationKind] = (
            list(mutation_kinds) if mutation_kinds is not None else list(MutationKind)
        )
        if not self.mutation_kinds:
            raise ValueError("at least one mutation kind is required")

    # ------------------------------------------------------------------
    def _run(self) -> SearchResult:
        decomposition = self.decomposition
        evaluator = self.evaluator
        rng = self.rng
        num_units = decomposition.num_units

        # start from a random valid group, like one GA chromosome
        current_bounds = tuple(self.validity.random_partition_boundaries(rng))
        cache: Dict[Tuple[int, ...], GroupEvaluation] = {}
        evaluations = 0

        def evaluate(bounds: Tuple[int, ...]) -> GroupEvaluation:
            nonlocal evaluations
            evaluations += 1
            evaluation = cache.get(bounds)
            if evaluation is None:
                group = PartitionGroup.from_boundaries(decomposition, bounds)
                evaluation = evaluator.evaluate(group)
                cache[bounds] = evaluation
            return evaluation

        current = evaluate(current_bounds)

        # mutation-score expectation from a small random reference population
        # (scored in one evaluate_many batch — a dense-matrix gather)
        reference_bounds = [
            tuple(self.validity.random_partition_boundaries(rng))
            for _ in range(self.reference_size)
        ]
        reference = evaluator.evaluate_many(
            [
                PartitionGroup.from_boundaries(decomposition, bounds)
                for bounds in reference_bounds
            ]
        )
        evaluations += len(reference)
        expectation = population_unit_expectation(
            list(reference) + [current], num_units
        )

        # batched randomness: one permutation matrix for the per-step
        # mutation-kind orders, one block of Metropolis uniforms
        kind_orders = rng.permuted(
            np.tile(np.arange(len(self.mutation_kinds)), (self.steps, 1)), axis=1
        )
        accept_uniform = rng.random(self.steps)

        best = current
        temperature = self.initial_temperature * current.fitness
        history: List[SearchStep] = []
        kinds = self.mutation_kinds
        for step in range(self.steps):
            scores = np.asarray(partition_scores(current, expectation))
            mutated: Optional[Tuple[int, ...]] = None
            for index in kind_orders[step]:
                mutated = apply_mutation(
                    kinds[index], current.group, self.validity, scores, rng
                )
                if mutated is not None:
                    break
            accepted = False
            candidate_fitness = float("inf")
            if mutated is not None and mutated != current.group.boundaries:
                candidate = evaluate(mutated)
                candidate_fitness = candidate.fitness
                delta = candidate.fitness - current.fitness
                if delta < 0:
                    accepted = True
                elif temperature > 0.0:
                    accepted = bool(
                        accept_uniform[step] < math.exp(-delta / temperature)
                    )
                if accepted:
                    current = candidate
                    if current.fitness < best.fitness:
                        best = current
            temperature *= self.cooling
            history.append(
                SearchStep(
                    step=step,
                    best_fitness=best.fitness,
                    candidate_fitness=candidate_fitness,
                    accepted=accepted,
                    num_partitions=current.group.num_partitions,
                )
            )

        return SearchResult(
            optimizer=self.name,
            best_group=best.group,
            best_evaluation=best,
            history=history,
            steps_run=self.steps,
            evaluations=evaluations,
            exact=False,
        )
