"""Common interface of the partition-search subsystem.

Every engine in :mod:`repro.search` — the exact DP, beam search, simulated
annealing and the GA adapter — solves the same problem: choose the cut
positions of a :class:`~repro.core.partition.PartitionGroup` that minimise
the fitness of :class:`~repro.core.fitness.FitnessEvaluator` (end-to-end
latency, or EDP).  This module defines the pieces they share:

* :class:`PartitionSearch` — the abstract engine interface.  An engine is
  constructed from a decomposition, a fitness evaluator and a validity map,
  and ``run()`` returns a :class:`SearchResult`.
* :class:`SearchResult` — best group + evaluation, per-step records, span
  statistics, and whether the result is provably optimal (``exact``).
* :class:`SpanCostModel` — scalar span costs for the constructive engines
  (DP, beam), served by the fastest engine available: dense span-matrix
  gathers when the evaluator has one, the shared span table otherwise, the
  naive estimator as the last resort.  All three are bit-identical.

The per-run span statistics use the same delta-over-shared-counters
accounting as :class:`~repro.core.ga.GAResult.span_stats`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

import numpy as np

from repro.core.decomposition import ModelDecomposition
from repro.core.fitness import FitnessEvaluator, FitnessMode, GroupEvaluation
from repro.core.partition import PartitionGroup
from repro.core.validity import ValidityMap
from repro.perf.spantable import stats_delta

if TYPE_CHECKING:
    from repro.core.ga import GAResult


@dataclass
class SearchStep:
    """One step of a search run (a DP cut position, a beam depth, an
    annealing move, a GA generation — whatever the engine's unit of progress
    is)."""

    step: int
    #: best complete-group fitness known after this step (``inf`` while the
    #: engine has not completed a group yet)
    best_fitness: float
    #: fitness of the candidate this step examined (engine-specific: the
    #: prefix optimum for the DP, the move's fitness for annealing, the
    #: generation mean for the GA)
    candidate_fitness: float = float("inf")
    #: whether the step advanced the search state (always True for
    #: constructive engines; the Metropolis outcome for annealing)
    accepted: bool = True
    #: partitions in the engine's current/best group after this step
    num_partitions: int = 0


@dataclass
class SearchResult:
    """Outcome of one partition-search run, engine-independent."""

    #: registry name of the engine that produced this result
    optimizer: str
    best_group: PartitionGroup
    best_evaluation: GroupEvaluation
    #: per-step records (see :class:`SearchStep`)
    history: List[SearchStep]
    #: steps the engine actually ran (cut positions, depths, moves, generations)
    steps_run: int
    #: group/span evaluations the engine requested (engine-specific unit:
    #: chromosomes for the GA, span costs for DP/beam, moves for annealing)
    evaluations: int
    #: True when the engine proves the result optimal for its objective
    exact: bool = False
    #: this run's span-table statistics (delta over the shared counters;
    #: empty on the naive path)
    span_stats: Dict[str, float] = field(default_factory=dict)
    #: the full GA result when the engine was :class:`~repro.search.GASearch`
    ga_result: Optional["GAResult"] = None

    @property
    def best_fitness(self) -> float:
        """Fitness of the best partition group found (lower is better)."""
        return self.best_evaluation.fitness


class SpanCostModel:
    """Scalar per-span costs for the constructive search engines.

    The DP and beam engines consume *span costs*, not group evaluations: the
    latency of one span in latency mode, the (energy, latency) pair in EDP
    mode.  This wrapper serves them from the evaluator's dense span matrix
    when it has one (one fancy-indexed gather for thousands of spans), and
    falls back to the shared span table / naive estimator otherwise — the
    same bit-identical value either way.
    """

    def __init__(self, evaluator: FitnessEvaluator) -> None:
        self.evaluator = evaluator
        self.mode: FitnessMode = evaluator.mode
        self.batch_size = evaluator.batch_size
        self.matrix = evaluator.span_matrix
        #: span-cost lookups served so far
        self.spans_costed = 0

    # ------------------------------------------------------------------
    def latency_costs(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Latency (ns) of every span ``[starts[k], ends[k])`` at once."""
        self.spans_costed += int(starts.size)
        if self.matrix is not None:
            return self.matrix.gather_latency(starts, ends, self.batch_size)
        evaluator = self.evaluator
        return np.fromiter(
            (evaluator.estimate_span(int(s), int(e)).latency_ns
             for s, e in zip(starts, ends)),
            dtype=float, count=int(starts.size),
        )

    def energy_latency_costs(
        self, starts: np.ndarray, ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(energy_pj, latency_ns) arrays of many spans, for EDP searches."""
        self.spans_costed += int(starts.size)
        if self.matrix is not None:
            return self.matrix.gather_energy_latency(starts, ends, self.batch_size)
        evaluator = self.evaluator
        estimates = [
            evaluator.estimate_span(int(s), int(e)) for s, e in zip(starts, ends)
        ]
        energy = np.fromiter((e.energy_pj for e in estimates), dtype=float,
                             count=len(estimates))
        latency = np.fromiter((e.latency_ns for e in estimates), dtype=float,
                              count=len(estimates))
        return energy, latency


class PartitionSearch(abc.ABC):
    """Abstract partition-search engine.

    Subclasses implement :meth:`_run`; the public :meth:`run` wraps it with
    the shared span-statistics accounting so every engine reports its
    per-run share of the (shared, cumulative) span-table counters.
    """

    #: registry name of the engine (the ``--optimizer`` value)
    name: str = "base"

    def __init__(
        self,
        decomposition: ModelDecomposition,
        evaluator: FitnessEvaluator,
        validity: Optional[ValidityMap] = None,
    ) -> None:
        if evaluator.decomposition is not decomposition:
            raise ValueError("evaluator was built for a different decomposition")
        self.decomposition = decomposition
        self.evaluator = evaluator
        self.validity = validity if validity is not None else ValidityMap(decomposition)

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        """Run the search and return the best partition group found."""
        baseline = dict(self.evaluator.span_stats or {})
        result = self._run()
        result.span_stats = stats_delta(
            self.evaluator.span_stats or {}, baseline
        )
        return result

    @abc.abstractmethod
    def _run(self) -> SearchResult:
        """Engine-specific search; ``run()`` adds the shared accounting."""

    # ------------------------------------------------------------------
    def _valid_spans(self) -> Tuple[np.ndarray, np.ndarray]:
        """(starts, ends) arrays of every valid span, from the validity mask.

        The boolean validity matrix is the DP's hot mask; it is cached on the
        :class:`~repro.core.validity.ValidityMap`, so repeated searches on
        one decomposition do not rebuild it.
        """
        mask = self.validity.as_matrix()
        starts, cols = np.nonzero(mask)
        return starts.astype(np.int64), (cols + 1).astype(np.int64)
