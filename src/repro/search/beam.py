"""Beam search over partition cut positions.

A cheap constructive heuristic between the greedy baseline (beam width 1,
cost-blind) and the exact DP (all prefixes): the unit string is partitioned
left to right, one partition per depth, and at every depth only the
``width`` most promising prefixes survive.

Prefixes at one depth cover different amounts of the unit string, so raw
accumulated cost would systematically favour short prefixes; states are
ranked by *cost per covered unit* instead (accumulated fitness divided by
the covered position), which makes prefixes of different lengths
commensurable.  Completed groups are scored by their true fitness — the
same left-to-right accumulation the evaluator uses, so the winner's
recorded fitness matches its :class:`~repro.core.fitness.GroupEvaluation`
bit for bit.

Span costs come from the shared :class:`~repro.search.base.SpanCostModel`,
i.e. one dense-matrix gather per depth for the whole frontier's expansions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.decomposition import ModelDecomposition
from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.core.partition import PartitionGroup
from repro.core.validity import ValidityMap
from repro.search.base import PartitionSearch, SearchResult, SearchStep, SpanCostModel


class BeamSearch(PartitionSearch):
    """Width-limited constructive search over partition prefixes."""

    name = "beam"

    def __init__(
        self,
        decomposition: ModelDecomposition,
        evaluator: FitnessEvaluator,
        validity: Optional[ValidityMap] = None,
        width: int = 8,
    ) -> None:
        super().__init__(decomposition, evaluator, validity)
        if width < 1:
            raise ValueError("beam width must be at least 1")
        self.width = width

    # ------------------------------------------------------------------
    def _score(self, latency_sum: float, energy_sum: float, position: int) -> float:
        """Prefix ranking score: accumulated fitness per covered unit."""
        if self.evaluator.mode is FitnessMode.LATENCY:
            return latency_sum / position
        return (energy_sum * latency_sum) * 1e-12 / position

    def _fitness(self, latency_sum: float, energy_sum: float) -> float:
        """Fitness of a completed group from its accumulated sums."""
        if self.evaluator.mode is FitnessMode.LATENCY:
            return latency_sum
        return (energy_sum * latency_sum) * 1e-12

    # ------------------------------------------------------------------
    def _run(self) -> SearchResult:
        n = self.decomposition.num_units
        max_end = [self.validity.max_end(i) for i in range(n)]
        cost_model = SpanCostModel(self.evaluator)
        edp_mode = self.evaluator.mode is FitnessMode.EDP

        # state: (position, boundaries, latency_sum, energy_sum)
        frontier: List[Tuple[int, Tuple[int, ...], float, float]] = [(0, (), 0.0, 0.0)]
        best_bounds: Optional[Tuple[int, ...]] = None
        best_fitness = float("inf")
        history: List[SearchStep] = []
        depth = 0
        while frontier:
            depth += 1
            # expand every frontier state by one more partition; all span
            # costs of the depth come from one batched gather
            starts = np.concatenate(
                [np.full(max_end[p] - p, p, dtype=np.int64) for p, _, _, _ in frontier]
            )
            ends = np.concatenate(
                [np.arange(p + 1, max_end[p] + 1, dtype=np.int64) for p, _, _, _ in frontier]
            )
            if edp_mode:
                energies, latencies = cost_model.energy_latency_costs(starts, ends)
            else:
                latencies = cost_model.latency_costs(starts, ends)
                energies = np.zeros_like(latencies)

            candidates: List[Tuple[float, int, Tuple[int, ...], float, float]] = []
            cursor = 0
            for position, bounds, lat_sum, en_sum in frontier:
                for end in range(position + 1, max_end[position] + 1):
                    lat = lat_sum + float(latencies[cursor])
                    en = en_sum + float(energies[cursor])
                    cursor += 1
                    new_bounds = bounds + (end,)
                    if end == n:
                        fitness = self._fitness(lat, en)
                        if fitness < best_fitness:
                            best_fitness = fitness
                            best_bounds = new_bounds
                    else:
                        candidates.append(
                            (self._score(lat, en, end), end, new_bounds, lat, en)
                        )
            candidates.sort(key=lambda state: state[0])
            frontier = [
                (end, bounds, lat, en)
                for _, end, bounds, lat, en in candidates[: self.width]
            ]
            history.append(
                SearchStep(
                    step=depth,
                    best_fitness=best_fitness,
                    candidate_fitness=candidates[0][0] if candidates else best_fitness,
                    num_partitions=depth,
                )
            )

        assert best_bounds is not None  # [p, p+1) is always valid, so the
        # beam always completes at least one group before the frontier empties
        group = PartitionGroup.from_boundaries(self.decomposition, best_bounds)
        evaluation = self.evaluator.evaluate(group)
        return SearchResult(
            optimizer=self.name,
            best_group=group,
            best_evaluation=evaluation,
            history=history,
            steps_run=depth,
            evaluations=cost_model.spans_costed,
            exact=False,
        )
