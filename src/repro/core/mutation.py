"""Mutation operators of the COMPASS genetic algorithm (Sec. III-C3).

Four schemes operate on a partition group's boundary list:

* **Merge** joins the worst-performing pair of neighbouring partitions into
  one (removing small, inefficient partitions).
* **Split** cuts a selected partition into two at a random internal position
  (breaking up ill-performing partitions with too many layers and low
  replication).
* **Move** shifts one partition unit across the boundary between a partition
  and its neighbour (fine-grained boundary search).
* **FixedRandom** keeps the best-scoring partition fixed and randomly
  regenerates everything before and after it (global exploration to escape
  local optima).

All operators return a *new* boundary tuple and never produce a partition
that violates the validity map; if an operator cannot apply (e.g. a merge
would overflow the chip), it returns ``None`` and the caller picks another
scheme.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.partition import PartitionGroup
from repro.core.validity import ValidityMap


class MutationKind(enum.Enum):
    """The four mutation schemes of the COMPASS algorithm."""

    MERGE = "merge"
    SPLIT = "split"
    MOVE = "move"
    FIXED_RANDOM = "fixed_random"


def _spans(boundaries: Sequence[int]) -> List[Tuple[int, int]]:
    result = []
    start = 0
    for end in boundaries:
        result.append((start, end))
        start = end
    return result


def _valid_group(validity: ValidityMap, boundaries: Sequence[int]) -> bool:
    # one chained sweep over the boundary list (no span materialisation);
    # semantics identical to all(is_valid(s, e) for every span)
    return validity.group_valid(boundaries)


def mutate_merge(
    boundaries: Sequence[int],
    validity: ValidityMap,
    pair_index: int,
) -> Optional[Tuple[int, ...]]:
    """Merge partitions ``pair_index`` and ``pair_index + 1``.

    Returns ``None`` if there is no such pair or the merged span is invalid.
    """
    bounds = list(boundaries)
    if pair_index < 0 or pair_index >= len(bounds) - 1:
        return None
    merged = bounds[:pair_index] + bounds[pair_index + 1:]
    if not _valid_group(validity, merged):
        return None
    return tuple(merged)


def mutate_split(
    boundaries: Sequence[int],
    validity: ValidityMap,
    partition_index: int,
    rng: np.random.Generator,
) -> Optional[Tuple[int, ...]]:
    """Split the selected partition at a random internal position."""
    bounds = list(boundaries)
    spans = _spans(bounds)
    if not 0 <= partition_index < len(spans):
        return None
    start, end = spans[partition_index]
    if end - start < 2:
        return None  # single-unit partitions cannot be split
    cut = int(rng.integers(start + 1, end))
    new_bounds = sorted(set(bounds) | {cut})
    if not _valid_group(validity, new_bounds):
        return None
    return tuple(new_bounds)


def mutate_move(
    boundaries: Sequence[int],
    validity: ValidityMap,
    pair_index: int,
    rng: np.random.Generator,
) -> Optional[Tuple[int, ...]]:
    """Move one unit across the boundary between partitions ``pair_index`` and +1."""
    bounds = list(boundaries)
    if pair_index < 0 or pair_index >= len(bounds) - 1:
        return None
    boundary = bounds[pair_index]
    left_start = bounds[pair_index - 1] if pair_index > 0 else 0
    right_end = bounds[pair_index + 1]
    directions = [1, -1] if rng.random() < 0.5 else [-1, 1]
    for direction in directions:
        candidate = boundary + direction
        if candidate <= left_start or candidate >= right_end:
            continue
        new_bounds = list(bounds)
        new_bounds[pair_index] = candidate
        if _valid_group(validity, new_bounds):
            return tuple(new_bounds)
    return None


def mutate_fixed_random(
    boundaries: Sequence[int],
    validity: ValidityMap,
    fixed_partition_index: int,
    rng: np.random.Generator,
) -> Optional[Tuple[int, ...]]:
    """Keep the best partition fixed; randomly regenerate all others.

    Randomness is consumed as one block of uniform doubles (worst case: one
    per regenerated unit) instead of one generator call per segment — this
    operator dominates the GA's random-number overhead otherwise.  Each
    segment end remains uniform over its valid range.
    """
    spans = _spans(boundaries)
    if not 0 <= fixed_partition_index < len(spans):
        return None
    fixed_start, fixed_end = spans[fixed_partition_index]

    num_units = validity.num_units
    limit = fixed_start + (num_units - fixed_end)
    uniform = rng.random(limit) if limit > 0 else None
    sampled_end = validity.sampled_end
    draw = 0

    new_bounds: List[int] = []
    # random prefix covering [0, fixed_start)
    start = 0
    while start < fixed_start:
        end = min(sampled_end(start, uniform[draw]), fixed_start)
        draw += 1
        new_bounds.append(end)
        start = end
    # the fixed partition itself
    new_bounds.append(fixed_end)
    # random suffix covering [fixed_end, num_units)
    start = fixed_end
    while start < num_units:
        end = sampled_end(start, uniform[draw])
        draw += 1
        new_bounds.append(end)
        start = end
    if not _valid_group(validity, new_bounds):
        return None
    return tuple(new_bounds)


def apply_mutation(
    kind: MutationKind,
    group: PartitionGroup,
    validity: ValidityMap,
    partition_scores: Sequence[float],
    rng: np.random.Generator,
) -> Optional[Tuple[int, ...]]:
    """Apply one mutation scheme to a group, guided by partition scores.

    ``partition_scores`` are the per-partition R values (higher = worse),
    accepted as any sequence (the GA hands in the population-vectorized
    score arrays directly).  Merge targets the worst-scoring *pair*;
    split/move target the worst partition; fixed-random keeps the *best*
    partition.
    """
    bounds = group.boundaries
    scores = np.asarray(partition_scores, dtype=float)
    if len(scores) != group.num_partitions:
        raise ValueError("partition_scores length must match the number of partitions")

    if kind is MutationKind.MERGE:
        if group.num_partitions < 2:
            return None
        pair_scores = scores[:-1] + scores[1:]
        order = np.argsort(pair_scores)[::-1]
        for pair_index in order:
            result = mutate_merge(bounds, validity, int(pair_index))
            if result is not None:
                return result
        return None

    if kind is MutationKind.SPLIT:
        order = np.argsort(scores)[::-1]
        for partition_index in order:
            result = mutate_split(bounds, validity, int(partition_index), rng)
            if result is not None:
                return result
        return None

    if kind is MutationKind.MOVE:
        if group.num_partitions < 2:
            return None
        pair_scores = scores[:-1] + scores[1:]
        order = np.argsort(pair_scores)[::-1]
        for pair_index in order:
            result = mutate_move(bounds, validity, int(pair_index), rng)
            if result is not None:
                return result
        return None

    if kind is MutationKind.FIXED_RANDOM:
        best_index = int(np.argmin(scores))
        return mutate_fixed_random(bounds, validity, best_index, rng)

    raise ValueError(f"unknown mutation kind {kind!r}")
