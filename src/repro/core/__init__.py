"""COMPASS core: model partitioning for resource-constrained PIM chips.

This package implements the paper's primary contribution:

* model decomposition into partition units (:mod:`repro.core.decomposition`)
* the partition validity map (:mod:`repro.core.validity`)
* partitions / partition groups and their DRAM entry/exit analysis
  (:mod:`repro.core.partition`)
* greedy and layerwise baseline partitioners (:mod:`repro.core.baselines`)
* the partition-score and mutation operators (:mod:`repro.core.score`,
  :mod:`repro.core.mutation`)
* the COMPASS genetic algorithm (:mod:`repro.core.ga`)
* the end-to-end compiler driver (:mod:`repro.core.compiler`)
"""

from repro.core.decomposition import PartitionUnit, ModelDecomposition, decompose_model
from repro.core.validity import ValidityMap
from repro.core.partition import Partition, PartitionGroup, PartitionIO
from repro.core.baselines import greedy_partition, layerwise_partition
from repro.core.ga import CompassGA, GAConfig, GAResult, GenerationRecord
from repro.core.compiler import (
    CompassCompiler,
    CompilerOptions,
    CompilationResult,
    compile_model,
)

__all__ = [
    "PartitionUnit",
    "ModelDecomposition",
    "decompose_model",
    "ValidityMap",
    "Partition",
    "PartitionGroup",
    "PartitionIO",
    "greedy_partition",
    "layerwise_partition",
    "CompassGA",
    "GAConfig",
    "GAResult",
    "GenerationRecord",
    "CompassCompiler",
    "CompilerOptions",
    "CompilationResult",
    "compile_model",
]
