"""The COMPASS genetic algorithm (Algorithm 1 of the paper).

Each chromosome is a partition group, each gene a partition.  Every
generation keeps the ``n_select`` best groups by partition-group fitness
(PGF), then produces ``n_mutate`` new groups by mutating groups drawn from
the survivors; the mutation target inside a group is chosen by the partition
score of Sec. III-C2 and mutated with one of the four schemes of
Sec. III-C3 (chosen uniformly, as in the paper's setup).  After the last
generation the best group is returned.

The per-generation population statistics are recorded so Fig. 10 (fitness
convergence and partition-count evolution) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.decomposition import ModelDecomposition
from repro.core.fitness import FitnessEvaluator, FitnessMode, GroupEvaluation
from repro.core.mutation import MutationKind, apply_mutation
from repro.core.partition import PartitionGroup
from repro.core.score import partition_scores, population_unit_expectation
from repro.core.validity import ValidityMap


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the COMPASS GA (paper defaults, Sec. IV-A3)."""

    population_size: int = 100
    generations: int = 30
    n_select: int = 20
    n_mutate: int = 80
    #: stop early when the best fitness has not improved for this many generations
    early_stop_patience: int = 8
    #: relative improvement below which a generation counts as "no improvement"
    early_stop_tolerance: float = 1e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size <= 0 or self.generations <= 0:
            raise ValueError("population_size and generations must be positive")
        if self.n_select <= 0 or self.n_select > self.population_size:
            raise ValueError("n_select must be in (0, population_size]")
        if self.n_mutate < 0:
            raise ValueError("n_mutate must be non-negative")


@dataclass
class GenerationRecord:
    """Population statistics for one generation (for Fig. 10)."""

    generation: int
    best_fitness: float
    mean_fitness: float
    #: fitness of every individual, selected survivors first
    fitnesses: List[float]
    #: number of partitions of every individual (same order as fitnesses)
    num_partitions: List[int]
    #: True for individuals kept from the previous generation (Pi_sel)
    selected_mask: List[bool]


@dataclass
class GAResult:
    """Outcome of a COMPASS GA run."""

    best_group: PartitionGroup
    best_evaluation: GroupEvaluation
    history: List[GenerationRecord]
    generations_run: int
    #: chromosomes scored over the run (including deduplicated repeats)
    evaluations: int
    #: distinct chromosomes actually evaluated
    unique_evaluations: int = 0
    #: chromosome evaluations served from the dedup cache
    dedup_hits: int = 0
    #: this run's span-table statistics (delta over the shared table's
    #: counters during the run; empty on the naive path)
    span_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def best_fitness(self) -> float:
        """Fitness (PGF) of the best partition group found."""
        return self.best_evaluation.fitness

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of chromosome evaluations served from the dedup cache."""
        return self.dedup_hits / self.evaluations if self.evaluations else 0.0


class CompassGA:
    """Genetic-algorithm partition optimiser."""

    def __init__(
        self,
        decomposition: ModelDecomposition,
        evaluator: FitnessEvaluator,
        config: GAConfig = GAConfig(),
        validity: Optional[ValidityMap] = None,
        mutation_kinds: Optional[Sequence[MutationKind]] = None,
    ) -> None:
        self.decomposition = decomposition
        self.evaluator = evaluator
        self.config = config
        self.validity = validity if validity is not None else ValidityMap(decomposition)
        self.rng = np.random.default_rng(config.seed)
        #: mutation schemes in play; the paper uses all four with equal probability,
        #: restricting the set is exposed for ablation studies.
        self.mutation_kinds: List[MutationKind] = (
            list(mutation_kinds) if mutation_kinds is not None else list(MutationKind)
        )
        if not self.mutation_kinds:
            raise ValueError("at least one mutation kind is required")
        #: dedup cache: cut-vector -> evaluation; identical chromosomes are
        #: never re-scored, within a generation or across generations
        self._eval_cache: Dict[Tuple[int, ...], GroupEvaluation] = {}
        self._dedup_hits = 0

    # ------------------------------------------------------------------
    # population handling
    # ------------------------------------------------------------------
    def _initial_population(self) -> List[Tuple[int, ...]]:
        """Generate the initial partition groups via the validity map."""
        population: List[Tuple[int, ...]] = []
        seen: set = set()
        attempts = 0
        while len(population) < self.config.population_size:
            bounds = tuple(self.validity.random_partition_boundaries(self.rng))
            attempts += 1
            if bounds in seen and attempts < self.config.population_size * 20:
                continue
            seen.add(bounds)
            population.append(bounds)
        return population

    def _evaluate_population(
        self, population: Sequence[Tuple[int, ...]]
    ) -> List[GroupEvaluation]:
        """Evaluate a population with chromosome-level deduplication.

        Identical cut vectors — within this population or seen in any earlier
        generation — resolve to the cached evaluation, so population
        evaluation degenerates to a batch of dictionary lookups for repeated
        individuals.  Evaluations are immutable downstream, so sharing one
        object between population slots is safe.
        """
        evaluations = []
        for bounds in population:
            evaluation = self._eval_cache.get(bounds)
            if evaluation is None:
                group = PartitionGroup.from_boundaries(self.decomposition, bounds)
                evaluation = self.evaluator.evaluate(group)
                self._eval_cache[bounds] = evaluation
            else:
                self._dedup_hits += 1
            evaluations.append(evaluation)
        return evaluations

    def _mutate_one(
        self,
        evaluation: GroupEvaluation,
        expectation: np.ndarray,
    ) -> Tuple[int, ...]:
        """Mutate one partition group; falls back to the original on failure."""
        scores = partition_scores(evaluation, expectation)
        kinds = self.mutation_kinds
        order = self.rng.permutation(len(kinds))
        for index in order:
            result = apply_mutation(
                kinds[index], evaluation.group, self.validity, scores, self.rng
            )
            if result is not None:
                return result
        return evaluation.group.boundaries

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _span_stats_delta(self, baseline: Dict[str, float]) -> Dict[str, float]:
        """This run's share of the (shared, cumulative) span-table stats."""
        current = getattr(self.evaluator, "span_stats", {}) or {}
        if not current:
            return {}
        delta = {
            key: value - baseline.get(key, 0)
            for key, value in current.items()
            if not key.endswith("_rate")
        }
        for kind, computed_key in (
            ("profile", "profiles_computed"),
            ("estimate", "estimates_computed"),
            ("latency", "latencies_computed"),
        ):
            computed = delta.get(computed_key, 0)
            hits = delta.get(f"{kind}_hits", 0)
            requests = computed + hits
            delta[f"{kind}_hit_rate"] = hits / requests if requests else 0.0
        return delta

    def run(self) -> GAResult:
        """Run the COMPASS GA and return the best partition group found."""
        config = self.config
        span_stats_baseline = dict(getattr(self.evaluator, "span_stats", {}) or {})
        population = self._initial_population()
        evaluations = self._evaluate_population(population)
        history: List[GenerationRecord] = []
        selected_mask = [False] * len(evaluations)

        best_eval: Optional[GroupEvaluation] = None
        stale_generations = 0
        generations_run = 0
        total_evaluations = len(evaluations)

        for generation in range(config.generations):
            generations_run = generation + 1
            # sort ascending by PGF (lower fitness = better)
            order = sorted(range(len(evaluations)), key=lambda i: evaluations[i].fitness)
            evaluations = [evaluations[i] for i in order]
            selected_mask = [selected_mask[i] for i in order]

            record = GenerationRecord(
                generation=generation,
                best_fitness=evaluations[0].fitness,
                mean_fitness=float(np.mean([e.fitness for e in evaluations])),
                fitnesses=[e.fitness for e in evaluations],
                num_partitions=[e.group.num_partitions for e in evaluations],
                selected_mask=list(selected_mask),
            )
            history.append(record)

            current_best = evaluations[0]
            if best_eval is None or current_best.fitness < best_eval.fitness * (
                1.0 - config.early_stop_tolerance
            ):
                best_eval = current_best
                stale_generations = 0
            else:
                if best_eval.fitness > current_best.fitness:
                    best_eval = current_best
                stale_generations += 1
            if stale_generations >= config.early_stop_patience:
                break

            # selection
            survivors = evaluations[: config.n_select]
            expectation = population_unit_expectation(evaluations, self.decomposition.num_units)

            # mutation: draw n_mutate parents (with replacement) from survivors
            mutated: List[Tuple[int, ...]] = []
            for _ in range(config.n_mutate):
                parent = survivors[int(self.rng.integers(0, len(survivors)))]
                mutated.append(self._mutate_one(parent, expectation))

            mutated_evals = self._evaluate_population(mutated)
            total_evaluations += len(mutated_evals)
            evaluations = list(survivors) + mutated_evals
            selected_mask = [True] * len(survivors) + [False] * len(mutated_evals)

        # final sort and pick (Algorithm 1, lines 19-21)
        order = sorted(range(len(evaluations)), key=lambda i: evaluations[i].fitness)
        evaluations = [evaluations[i] for i in order]
        final_best = evaluations[0]
        if best_eval is None or final_best.fitness < best_eval.fitness:
            best_eval = final_best

        assert best_eval is not None
        return GAResult(
            best_group=best_eval.group,
            best_evaluation=best_eval,
            history=history,
            generations_run=generations_run,
            evaluations=total_evaluations,
            unique_evaluations=len(self._eval_cache),
            dedup_hits=self._dedup_hits,
            span_stats=self._span_stats_delta(span_stats_baseline),
        )
