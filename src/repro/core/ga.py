"""The COMPASS genetic algorithm (Algorithm 1 of the paper).

Each chromosome is a partition group, each gene a partition.  Every
generation keeps the ``n_select`` best groups by partition-group fitness
(PGF), then produces ``n_mutate`` new groups by mutating groups drawn from
the survivors; the mutation target inside a group is chosen by the partition
score of Sec. III-C2 and mutated with one of the four schemes of
Sec. III-C3 (chosen uniformly, as in the paper's setup).  After the last
generation the best group is returned.

The per-generation population statistics are recorded so Fig. 10 (fitness
convergence and partition-count evolution) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.decomposition import ModelDecomposition
from repro.core.fitness import FitnessEvaluator, FitnessMode, GroupEvaluation
from repro.core.mutation import MutationKind, apply_mutation
from repro.core.partition import PartitionGroup
from repro.core.score import (
    population_partition_scores,
    population_unit_expectation,
)
from repro.core.validity import ValidityMap
from repro.perf.spantable import stats_delta

# numpy.random pulls in ~30 modules lazily on the first Generator
# construction; touch it at import time so that one-off cost never lands
# inside a timed GA run (warm-up only: the Generator is discarded, every
# real draw goes through a seeded rng)
np.random.default_rng()  # repro-lint: disable=unseeded-rng


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the COMPASS GA (paper defaults, Sec. IV-A3)."""

    population_size: int = 100
    generations: int = 30
    n_select: int = 20
    n_mutate: int = 80
    #: stop early when the best fitness has not improved for this many generations
    early_stop_patience: int = 8
    #: relative improvement below which a generation counts as "no improvement"
    early_stop_tolerance: float = 1e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size <= 0 or self.generations <= 0:
            raise ValueError("population_size and generations must be positive")
        if self.n_select <= 0 or self.n_select > self.population_size:
            raise ValueError("n_select must be in (0, population_size]")
        if self.n_mutate < 0:
            raise ValueError("n_mutate must be non-negative")


@dataclass
class GenerationRecord:
    """Population statistics for one generation (for Fig. 10)."""

    generation: int
    best_fitness: float
    mean_fitness: float
    #: fitness of every individual, selected survivors first
    fitnesses: List[float]
    #: number of partitions of every individual (same order as fitnesses)
    num_partitions: List[int]
    #: True for individuals kept from the previous generation (Pi_sel)
    selected_mask: List[bool]


@dataclass
class GAResult:
    """Outcome of a COMPASS GA run."""

    best_group: PartitionGroup
    best_evaluation: GroupEvaluation
    history: List[GenerationRecord]
    generations_run: int
    #: chromosomes scored over the run (including deduplicated repeats)
    evaluations: int
    #: distinct chromosomes actually evaluated
    unique_evaluations: int = 0
    #: chromosome evaluations served from the dedup cache
    dedup_hits: int = 0
    #: this run's span-table statistics (delta over the shared table's
    #: counters during the run; empty on the naive path)
    span_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def best_fitness(self) -> float:
        """Fitness (PGF) of the best partition group found."""
        return self.best_evaluation.fitness

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of chromosome evaluations served from the dedup cache."""
        return self.dedup_hits / self.evaluations if self.evaluations else 0.0


class CompassGA:
    """Genetic-algorithm partition optimiser."""

    def __init__(
        self,
        decomposition: ModelDecomposition,
        evaluator: FitnessEvaluator,
        config: GAConfig = GAConfig(),
        validity: Optional[ValidityMap] = None,
        mutation_kinds: Optional[Sequence[MutationKind]] = None,
    ) -> None:
        self.decomposition = decomposition
        self.evaluator = evaluator
        self.config = config
        self.validity = validity if validity is not None else ValidityMap(decomposition)
        self.rng = np.random.default_rng(config.seed)
        #: mutation schemes in play; the paper uses all four with equal probability,
        #: restricting the set is exposed for ablation studies.
        self.mutation_kinds: List[MutationKind] = (
            list(mutation_kinds) if mutation_kinds is not None else list(MutationKind)
        )
        if not self.mutation_kinds:
            raise ValueError("at least one mutation kind is required")
        #: dedup cache: cut-vector -> evaluation; identical chromosomes are
        #: never re-scored, within a generation or across generations
        self._eval_cache: Dict[Tuple[int, ...], GroupEvaluation] = {}
        self._dedup_hits = 0

    # ------------------------------------------------------------------
    # population handling
    # ------------------------------------------------------------------
    def _initial_population(self) -> List[Tuple[int, ...]]:
        """Generate the initial partition groups via the validity map."""
        population: List[Tuple[int, ...]] = []
        seen: set = set()
        attempts = 0
        while len(population) < self.config.population_size:
            bounds = tuple(self.validity.random_partition_boundaries(self.rng))
            attempts += 1
            if bounds in seen and attempts < self.config.population_size * 20:
                continue
            seen.add(bounds)
            population.append(bounds)
        return population

    def _evaluate_population(
        self, population: Sequence[Tuple[int, ...]]
    ) -> List[GroupEvaluation]:
        """Evaluate a population with chromosome-level deduplication.

        The population's cut vectors are zero-padded into one int matrix and
        deduplicated with a vectorized ``np.unique`` over its rows; only
        unique chromosomes not seen in any earlier generation reach the
        evaluator, in one :meth:`FitnessEvaluator.evaluate_many` batch (a
        dense-matrix gather when the span matrix is engaged).  Evaluations
        are immutable downstream, so sharing one object between population
        slots is safe.  Hit accounting matches the historical sequential
        scan: every occurrence beyond a chromosome's first-ever evaluation
        counts as a dedup hit.
        """
        if not population:
            return []
        cache = self._eval_cache
        count = len(population)
        lengths = np.fromiter((len(bounds) for bounds in population),
                              dtype=np.int64, count=count)
        total = int(lengths.sum())
        flat = np.fromiter((end for bounds in population for end in bounds),
                           dtype=np.int64, count=total)
        padded = np.zeros((count, int(lengths.max())), dtype=np.int64)
        rows = np.repeat(np.arange(count), lengths)
        columns = np.arange(total) - np.repeat(np.cumsum(lengths) - lengths, lengths)
        padded[rows, columns] = flat
        unique_rows, inverse = np.unique(padded, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        # boundaries are >= 1, so trailing zeros are unambiguous padding
        unique_bounds = [tuple(row[row > 0].tolist()) for row in unique_rows]

        new_bounds = [bounds for bounds in unique_bounds if bounds not in cache]
        self._dedup_hits += count - len(new_bounds)
        if new_bounds:
            groups = [
                PartitionGroup.from_boundaries(self.decomposition, bounds)
                for bounds in new_bounds
            ]
            for bounds, evaluation in zip(new_bounds, self.evaluator.evaluate_many(groups)):
                cache[bounds] = evaluation
        by_unique = [cache[bounds] for bounds in unique_bounds]
        return [by_unique[i] for i in inverse.tolist()]

    def _mutate_one(
        self,
        evaluation: GroupEvaluation,
        scores: np.ndarray,
        kind_order: np.ndarray,
    ) -> Tuple[int, ...]:
        """Mutate one partition group; falls back to the original on failure.

        ``scores`` are the group's partition R values, precomputed for all
        survivors in one vectorized pass per generation (the scores depend
        only on the survivor and the population expectation, not on the
        mutation draw); ``kind_order`` is this draw's row of the batched
        mutation-scheme permutations.
        """
        kinds = self.mutation_kinds
        for index in kind_order:
            result = apply_mutation(
                kinds[index], evaluation.group, self.validity, scores, self.rng
            )
            if result is not None:
                return result
        return evaluation.group.boundaries

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _span_stats_delta(self, baseline: Dict[str, float]) -> Dict[str, float]:
        """This run's share of the (shared, cumulative) span-table stats."""
        current = getattr(self.evaluator, "span_stats", {}) or {}
        return stats_delta(current, baseline)

    def run(self) -> GAResult:
        """Run the COMPASS GA and return the best partition group found."""
        config = self.config
        span_stats_baseline = dict(getattr(self.evaluator, "span_stats", {}) or {})
        population = self._initial_population()
        evaluations = self._evaluate_population(population)
        history: List[GenerationRecord] = []
        selected_mask = [False] * len(evaluations)

        best_eval: Optional[GroupEvaluation] = None
        stale_generations = 0
        generations_run = 0
        total_evaluations = len(evaluations)

        for generation in range(config.generations):
            generations_run = generation + 1
            # sort ascending by PGF (lower fitness = better)
            order = sorted(range(len(evaluations)), key=lambda i: evaluations[i].fitness)
            evaluations = [evaluations[i] for i in order]
            selected_mask = [selected_mask[i] for i in order]

            record = GenerationRecord(
                generation=generation,
                best_fitness=evaluations[0].fitness,
                mean_fitness=float(np.mean([e.fitness for e in evaluations])),
                fitnesses=[e.fitness for e in evaluations],
                num_partitions=[e.group.num_partitions for e in evaluations],
                selected_mask=list(selected_mask),
            )
            history.append(record)

            current_best = evaluations[0]
            if best_eval is None or current_best.fitness < best_eval.fitness * (
                1.0 - config.early_stop_tolerance
            ):
                best_eval = current_best
                stale_generations = 0
            else:
                if best_eval.fitness > current_best.fitness:
                    best_eval = current_best
                stale_generations += 1
            if stale_generations >= config.early_stop_patience:
                break

            # selection
            survivors = evaluations[: config.n_select]
            expectation = population_unit_expectation(evaluations, self.decomposition.num_units)
            # score every survivor once against this generation's expectation;
            # mutation draws below only index into the precomputed arrays
            survivor_scores = population_partition_scores(survivors, expectation)

            # mutation: draw n_mutate parents (with replacement) from the
            # survivors, and this generation's mutation-scheme permutations,
            # in two batched generator calls (per-call RNG overhead is the
            # bulk of the mutation loop otherwise)
            parent_indices = self.rng.integers(
                0, len(survivors), size=config.n_mutate
            ).tolist()
            kind_orders = self.rng.permuted(
                np.tile(np.arange(len(self.mutation_kinds)), (config.n_mutate, 1)),
                axis=1,
            )
            mutated: List[Tuple[int, ...]] = []
            for draw, parent_index in enumerate(parent_indices):
                mutated.append(
                    self._mutate_one(
                        survivors[parent_index],
                        survivor_scores[parent_index],
                        kind_orders[draw],
                    )
                )

            mutated_evals = self._evaluate_population(mutated)
            total_evaluations += len(mutated_evals)
            evaluations = list(survivors) + mutated_evals
            selected_mask = [True] * len(survivors) + [False] * len(mutated_evals)

        # final sort and pick (Algorithm 1, lines 19-21)
        order = sorted(range(len(evaluations)), key=lambda i: evaluations[i].fitness)
        evaluations = [evaluations[i] for i in order]
        final_best = evaluations[0]
        if best_eval is None or final_best.fitness < best_eval.fitness:
            best_eval = final_best

        assert best_eval is not None
        return GAResult(
            best_group=best_eval.group,
            best_evaluation=best_eval,
            history=history,
            generations_run=generations_run,
            evaluations=total_evaluations,
            unique_evaluations=len(self._eval_cache),
            dedup_hits=self._dedup_hits,
            span_stats=self._span_stats_delta(span_stats_baseline),
        )
