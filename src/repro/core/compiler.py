"""End-to-end COMPASS compiler driver.

Ties the three components of Fig. 3 together:

1. **Partition generator** — decompose the model into partition units and
   build the validity map.
2. **Partition optimizer** — run a :mod:`repro.search` engine (the COMPASS
   GA by default; the exact DP, beam search or simulated annealing via
   ``optimizer=``) or a baseline scheme to choose the partition group, using
   the on-chip estimator as fitness oracle.
3. **Scheduler** — build per-partition execution plans and generate the
   per-core instruction streams, then simulate the execution to obtain the
   final latency/energy report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.baselines import greedy_partition, layerwise_partition
from repro.core.decomposition import ModelDecomposition, decompose_model
from repro.core.fitness import FitnessEvaluator, FitnessMode
from repro.core.ga import CompassGA, GAConfig, GAResult
from repro.core.partition import PartitionGroup
from repro.core.validity import ValidityMap
from repro.graph.graph import Graph
from repro.hardware.chip import ChipConfig
from repro.hardware.dram import DRAMConfig, LPDDR3_8GB
from repro.isa.scheduler import InstructionScheduler, ModelSchedule
from repro.onchip.plan import PartitionPlan
from repro.perf.spantable import span_table_for
from repro.sim.simulator import ExecutionReport, ExecutionSimulator

if TYPE_CHECKING:
    from repro.search import SearchResult

# repro.search is imported lazily inside the functions below:
# ``repro.core.__init__`` imports this module eagerly, and the search
# package imports ``repro.core`` submodules, so a top-level import here
# would close an import cycle.

#: Recognised partitioning schemes.
SCHEMES = ("compass", "greedy", "layerwise")


@dataclass(frozen=True)
class CompilerOptions:
    """User-facing knobs of the COMPASS compiler."""

    scheme: str = "compass"
    batch_size: int = 1
    weight_bits: int = 4
    activation_bits: int = 4
    fitness_mode: FitnessMode = FitnessMode.LATENCY
    #: partition-search engine for the ``compass`` scheme: one of the
    #: :data:`repro.search.OPTIMIZERS` names (``ga``, ``dp``, ``beam``,
    #: ``anneal``)
    optimizer: str = "ga"
    #: extra engine constructor arguments (e.g. ``{"width": 16}`` for beam,
    #: ``{"steps": 1000}`` for annealing, ``{"max_frontier": 0}`` for DP)
    optimizer_options: Dict[str, object] = field(default_factory=dict)
    ga_config: GAConfig = field(default_factory=GAConfig)
    dram_config: DRAMConfig = LPDDR3_8GB
    #: generate per-core instruction streams (slower; off for pure estimation)
    generate_instructions: bool = True
    #: replay the scheduler's DRAM trace through the LPDDR3 model
    simulate_dram_trace: bool = False
    #: dense span-matrix engine for the GA fitness oracle; ``None`` follows
    #: the ``REPRO_SPAN_MATRIX`` environment default (on)
    use_span_matrix: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.optimizer != "ga":  # defer the search import for the default
            from repro.search import validate_optimizer

            validate_optimizer(self.optimizer)


@dataclass
class CompilationResult:
    """Everything the compiler produces for one (model, chip, options) triple."""

    graph: Graph
    chip: ChipConfig
    options: CompilerOptions
    decomposition: ModelDecomposition
    validity: ValidityMap
    group: PartitionGroup
    plans: List[PartitionPlan]
    report: ExecutionReport
    schedule: Optional[ModelSchedule] = None
    ga_result: Optional[GAResult] = None
    #: full search outcome when a :mod:`repro.search` engine chose the group
    #: (``None`` for the greedy/layerwise baseline schemes)
    search_result: Optional["SearchResult"] = None

    # ------------------------------------------------------------------
    @property
    def supported(self) -> bool:
        """Whether the model could be compiled for this chip at all."""
        return self.group is not None

    @property
    def num_partitions(self) -> int:
        """Number of partitions in the chosen group."""
        return self.group.num_partitions

    @property
    def throughput(self) -> float:
        """Throughput of the compiled execution (inferences/s)."""
        return self.report.throughput

    @property
    def edp_per_inference(self) -> float:
        """EDP per inference of the compiled execution (mJ x ms)."""
        return self.report.edp_per_inference

    def summary(self) -> str:
        """One-paragraph text summary."""
        lines = [
            f"COMPASS compilation of {self.graph.name} for Chip-{self.chip.name} "
            f"({self.options.scheme}, batch {self.options.batch_size})",
            f"  model weights        : {self.decomposition.total_weight_bytes() / 1e6:.2f} MB "
            f"(chip capacity {self.chip.weight_capacity_mb:.3f} MB)",
            f"  partition units      : {self.decomposition.num_units}",
            f"  partitions           : {self.num_partitions}",
            f"  throughput           : {self.report.throughput:.1f} inf/s",
            f"  energy per inference : {self.report.energy_per_inference_mj:.3f} mJ",
            f"  EDP per inference    : {self.report.edp_per_inference:.4f} mJ*ms",
        ]
        if self.schedule is not None:
            lines.append(f"  instructions         : {self.schedule.total_instructions:,}")
        if self.ga_result is not None:
            lines.append(
                f"  GA generations       : {self.ga_result.generations_run} "
                f"({self.ga_result.evaluations} evaluations)"
            )
        elif self.search_result is not None:
            result = self.search_result
            exactness = "exact optimum" if result.exact else "heuristic"
            lines.append(
                f"  optimizer            : {result.optimizer} ({exactness}, "
                f"{result.evaluations} evaluations)"
            )
        return "\n".join(lines)


class CompassCompiler:
    """Compiles a DNN graph onto a resource-constrained crossbar PIM chip."""

    def __init__(self, chip: ChipConfig, options: CompilerOptions = CompilerOptions()) -> None:
        self.chip = chip
        self.options = options

    # ------------------------------------------------------------------
    def _choose_group(
        self,
        decomposition: ModelDecomposition,
        validity: ValidityMap,
    ) -> (PartitionGroup, Optional[GAResult], "Optional[SearchResult]"):
        options = self.options
        if options.scheme == "greedy":
            return greedy_partition(decomposition, validity), None, None
        if options.scheme == "layerwise":
            return layerwise_partition(decomposition, validity), None, None
        from repro.search import make_search

        evaluator = FitnessEvaluator(
            decomposition,
            batch_size=options.batch_size,
            mode=options.fitness_mode,
            dram_config=options.dram_config,
            use_span_matrix=options.use_span_matrix,
        )
        kwargs = dict(options.optimizer_options)
        if options.optimizer == "ga":
            kwargs.setdefault("ga_config", options.ga_config)
        search = make_search(
            options.optimizer, decomposition, evaluator, validity, **kwargs
        )
        result = search.run()
        return result.best_group, result.ga_result, result

    # ------------------------------------------------------------------
    def compile(
        self,
        graph: Graph,
        decomposition: Optional[ModelDecomposition] = None,
        validity: Optional[ValidityMap] = None,
    ) -> CompilationResult:
        """Compile a model graph and return the full compilation result.

        A ``decomposition`` (and its ``validity`` map) built elsewhere may be
        passed in to reuse them across compilations — the sweep runner does
        this so all schemes and batch sizes of one (model, chip) pair share
        one decomposition and hence one span table.  The caller must ensure
        they were built for the same graph, chip and precisions.
        """
        options = self.options
        if decomposition is None:
            decomposition = decompose_model(
                graph, self.chip, weight_bits=options.weight_bits,
                activation_bits=options.activation_bits,
            )
        if validity is None:
            validity = ValidityMap(decomposition)
        group, ga_result, search_result = self._choose_group(decomposition, validity)

        # Plans come from the shared span table: spans already profiled by the
        # partition optimiser (or by a previous compilation on the same
        # decomposition) are not re-planned.
        span_table = span_table_for(decomposition, options.dram_config)
        plans = [span_table.plan(s, e) for s, e in group.spans()]

        schedule: Optional[ModelSchedule] = None
        dram_trace = None
        if options.generate_instructions:
            scheduler = InstructionScheduler(self.chip, batch_size=options.batch_size)
            schedule = scheduler.schedule_model(plans)
            if options.simulate_dram_trace:
                dram_trace = schedule.dram_trace()

        simulator = ExecutionSimulator(
            self.chip, batch_size=options.batch_size, dram_config=options.dram_config
        )
        report = simulator.simulate(
            group,
            model_name=graph.name,
            scheme=options.scheme,
            plans=plans,
            dram_trace=dram_trace,
            span_table=span_table,
        )

        return CompilationResult(
            graph=graph,
            chip=self.chip,
            options=options,
            decomposition=decomposition,
            validity=validity,
            group=group,
            plans=plans,
            report=report,
            schedule=schedule,
            ga_result=ga_result,
            search_result=search_result,
        )


def compile_model(
    graph: Graph,
    chip: ChipConfig,
    scheme: str = "compass",
    batch_size: int = 1,
    **option_overrides,
) -> CompilationResult:
    """Convenience wrapper: compile ``graph`` for ``chip`` with default options.

    Extra keyword arguments override fields of :class:`CompilerOptions`
    (e.g. ``ga_config=GAConfig(generations=10)``).
    """
    options = CompilerOptions(scheme=scheme, batch_size=batch_size, **option_overrides)
    return CompassCompiler(chip, options).compile(graph)
