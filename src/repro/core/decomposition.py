"""Model decomposition into partition units (Sec. III-B, Fig. 4).

The weight matrix of every Conv/Linear layer is divided along its *output*
dimension into partition units sized to fit within the in-memory footprint of
a single PIM core (validity condition 1).  The ordered list of units — in the
topological order of their layers — is the string the genetic algorithm
partitions: a partition is a span of consecutive units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.graph.graph import Graph, GraphNode
from repro.graph.traversal import attach_non_crossbar_layers, crossbar_layer_order
from repro.hardware.chip import ChipConfig
from repro.mapping.geometry import WeightMatrixGeometry, layer_geometry


class DecompositionError(ValueError):
    """Raised when a model cannot be decomposed for the given chip."""


@dataclass(frozen=True)
class PartitionUnit:
    """The minimum granularity of partitioning: a slice of one layer.

    A unit covers output columns ``[col_start, col_end)`` of its layer's
    im2col weight matrix and fits within a single core's crossbar capacity.
    """

    index: int
    layer_name: str
    unit_in_layer: int
    units_in_layer: int
    col_start: int
    col_end: int
    weight_bytes: int
    crossbars: int
    #: MVM tile operations needed per sliding window for this unit
    tile_ops_per_window: int
    #: sliding windows per inference (shared by all units of the layer)
    windows: int

    @property
    def cols(self) -> int:
        """Output columns covered by this unit."""
        return self.col_end - self.col_start

    def __str__(self) -> str:
        return (
            f"x{self.index}({self.layer_name}[{self.col_start}:{self.col_end}], "
            f"{self.weight_bytes}B, {self.crossbars}xb)"
        )


@dataclass
class ModelDecomposition:
    """A model decomposed into partition units for a specific chip.

    Holds everything partitioning needs: the ordered unit list, per-layer
    geometry, the attachment of non-crossbar layers to their producing
    Conv/Linear layer, and per-layer unit index ranges.
    """

    graph: Graph
    chip: ChipConfig
    weight_bits: int
    activation_bits: int
    units: List[PartitionUnit]
    geometries: Dict[str, WeightMatrixGeometry]
    #: crossbar layer name -> names of attached non-crossbar layers
    attachments: Dict[str, List[str]]
    #: layer name -> (first unit index, last unit index + 1)
    layer_unit_ranges: Dict[str, tuple]

    # ------------------------------------------------------------------
    @property
    def num_units(self) -> int:
        """Number of partition units (M in Fig. 5)."""
        return len(self.units)

    @property
    def crossbar_layers(self) -> List[str]:
        """Crossbar-mapped layer names in decomposition order."""
        return list(self.layer_unit_ranges.keys())

    def units_of_layer(self, layer_name: str) -> List[PartitionUnit]:
        """All units belonging to the given layer."""
        start, end = self.layer_unit_ranges[layer_name]
        return self.units[start:end]

    def layer_of_unit(self, unit_index: int) -> str:
        """Layer owning the given unit index."""
        return self.units[unit_index].layer_name

    def node(self, layer_name: str) -> GraphNode:
        """Graph node for a layer name."""
        return self.graph.node(layer_name)

    def span_weight_bytes(self, start: int, end: int) -> int:
        """Single-copy weight bytes of units in ``[start, end)``."""
        return sum(u.weight_bytes for u in self.units[start:end])

    def span_crossbars(self, start: int, end: int) -> int:
        """Single-copy crossbar count of units in ``[start, end)``."""
        return sum(u.crossbars for u in self.units[start:end])

    def total_weight_bytes(self) -> int:
        """Single-copy weight bytes of the whole decomposed model."""
        return self.span_weight_bytes(0, self.num_units)

    def fits_fully_on_chip(self) -> bool:
        """Whether the entire model fits on chip without partitioning."""
        return self.total_weight_bytes() <= self.chip.weight_capacity_bytes


def _split_columns(total_cols: int, num_units: int) -> List[tuple]:
    """Split ``total_cols`` into ``num_units`` near-equal contiguous ranges."""
    base = total_cols // num_units
    extra = total_cols % num_units
    ranges = []
    start = 0
    for i in range(num_units):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def decompose_model(
    graph: Graph,
    chip: ChipConfig,
    weight_bits: int = 4,
    activation_bits: int = 4,
) -> ModelDecomposition:
    """Decompose a model into partition units for the given chip.

    Every Conv/Linear layer is split along the output dimension into the
    smallest number of units whose weight bytes fit within one core's
    crossbar capacity (validity condition 1 of Sec. III-B).

    Raises :class:`DecompositionError` if any single output column of a layer
    exceeds a core's capacity (the model cannot run on this chip at all).
    """
    xbar = chip.core.crossbar
    if xbar.weight_bits != weight_bits:
        # The crossbar capacity model depends on the weight precision; keep
        # them consistent rather than silently mixing precisions.
        raise DecompositionError(
            f"weight_bits={weight_bits} does not match the crossbar configuration "
            f"({xbar.weight_bits}-bit weights)"
        )

    core_capacity = chip.core.weight_capacity_bytes
    units: List[PartitionUnit] = []
    geometries: Dict[str, WeightMatrixGeometry] = {}
    layer_unit_ranges: Dict[str, tuple] = {}

    for layer_name in crossbar_layer_order(graph):
        node = graph.node(layer_name)
        geom = layer_geometry(node, xbar)
        geometries[layer_name] = geom

        total_cols = geom.cols * geom.groups
        bytes_per_col = (geom.rows * weight_bits + 7) // 8
        if bytes_per_col > core_capacity:
            raise DecompositionError(
                f"layer {layer_name!r}: a single output column needs {bytes_per_col} B "
                f"but a core only holds {core_capacity} B"
            )

        max_cols_per_unit = max(1, core_capacity // bytes_per_col)
        num_layer_units = math.ceil(total_cols / max_cols_per_unit)
        col_ranges = _split_columns(total_cols, num_layer_units)

        first_index = len(units)
        for unit_in_layer, (col_start, col_end) in enumerate(col_ranges):
            cols = col_end - col_start
            weight_bytes = cols * bytes_per_col
            crossbars = max(1, math.ceil(weight_bytes / xbar.capacity_bytes))
            tile_ops = geom.row_tiles * math.ceil(cols / xbar.weight_cols)
            units.append(
                PartitionUnit(
                    index=len(units),
                    layer_name=layer_name,
                    unit_in_layer=unit_in_layer,
                    units_in_layer=num_layer_units,
                    col_start=col_start,
                    col_end=col_end,
                    weight_bytes=weight_bytes,
                    crossbars=crossbars,
                    tile_ops_per_window=tile_ops,
                    windows=geom.windows,
                )
            )
        layer_unit_ranges[layer_name] = (first_index, len(units))

    if not units:
        raise DecompositionError("model has no crossbar-mapped (Conv/Linear) layers")

    return ModelDecomposition(
        graph=graph,
        chip=chip,
        weight_bits=weight_bits,
        activation_bits=activation_bits,
        units=units,
        geometries=geometries,
        attachments=attach_non_crossbar_layers(graph),
        layer_unit_ranges=layer_unit_ranges,
    )
