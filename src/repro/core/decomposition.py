"""Model decomposition into partition units (Sec. III-B, Fig. 4).

The weight matrix of every Conv/Linear layer is divided along its *output*
dimension into partition units sized to fit within the in-memory footprint of
a single PIM core (validity condition 1).  The ordered list of units — in the
topological order of their layers — is the string the genetic algorithm
partitions: a partition is a span of consecutive units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.graph.graph import Graph, GraphNode
from repro.graph.traversal import attach_non_crossbar_layers, crossbar_layer_order
from repro.hardware.chip import ChipConfig
from repro.mapping.geometry import WeightMatrixGeometry, layer_geometry


class DecompositionError(ValueError):
    """Raised when a model cannot be decomposed for the given chip."""


@dataclass(frozen=True)
class PartitionUnit:
    """The minimum granularity of partitioning: a slice of one layer.

    A unit covers output columns ``[col_start, col_end)`` of its layer's
    im2col weight matrix and fits within a single core's crossbar capacity.
    """

    index: int
    layer_name: str
    unit_in_layer: int
    units_in_layer: int
    col_start: int
    col_end: int
    weight_bytes: int
    crossbars: int
    #: MVM tile operations needed per sliding window for this unit
    tile_ops_per_window: int
    #: sliding windows per inference (shared by all units of the layer)
    windows: int

    @property
    def cols(self) -> int:
        """Output columns covered by this unit."""
        return self.col_end - self.col_start

    def __str__(self) -> str:
        return (
            f"x{self.index}({self.layer_name}[{self.col_start}:{self.col_end}], "
            f"{self.weight_bytes}B, {self.crossbars}xb)"
        )


class DecompositionIndex:
    """Precomputed lookup tables for O(1) span queries on a decomposition.

    The genetic algorithm evaluates thousands of partition spans; every span
    quantity that is a sum over units (weight bytes, crossbars, output
    columns, tile operations) is served from a prefix-sum array instead of
    re-traversing the unit list, and every per-node graph attribute the
    partition I/O analysis needs (output sizes, connectivity, crossbar
    mapping) is resolved once here.  All sums are integer, so prefix-sum
    results are bit-identical to direct summation.
    """

    def __init__(self, decomposition: "ModelDecomposition") -> None:
        units = decomposition.units
        graph = decomposition.graph
        bits = decomposition.activation_bits

        def prefix(values: List[int]) -> List[int]:
            # plain Python ints: scalar indexing beats numpy for the O(1)
            # span lookups this index exists to serve, and the sums stay exact
            out = [0] * (len(values) + 1)
            running = 0
            for i, value in enumerate(values):
                running += value
                out[i + 1] = running
            return out

        #: prefix sums over the unit string (index i holds the sum of units [0, i))
        self.weight_prefix = prefix([u.weight_bytes for u in units])
        self.crossbar_prefix = prefix([u.crossbars for u in units])
        self.cols_prefix = prefix([u.cols for u in units])
        self.tile_ops_prefix = prefix([u.tile_ops_per_window for u in units])

        #: crossbar layers in decomposition order and their unit ranges
        self.layers: List[str] = list(decomposition.layer_unit_ranges.keys())
        layer_pos = {name: i for i, name in enumerate(self.layers)}
        #: layer index owning each unit
        self.unit_layer: List[int] = [layer_pos[u.layer_name] for u in units]
        #: total output columns of every crossbar layer (the layer_fraction denominator)
        self.layer_total_cols: Dict[str, int] = {}
        for name in self.layers:
            start, end = decomposition.layer_unit_ranges[name]
            self.layer_total_cols[name] = self.cols_prefix[end] - self.cols_prefix[start]

        #: graph-node attributes used by partition I/O analysis and estimation
        self.node_size_bytes: Dict[str, int] = {}
        self.node_num_elements: Dict[str, int] = {}
        self.node_inputs: Dict[str, Tuple[str, ...]] = {}
        self.node_outputs: Dict[str, Tuple[str, ...]] = {}
        self.node_is_crossbar: Dict[str, bool] = {}
        for node in graph.nodes():
            name = node.name
            assert node.output_shape is not None
            self.node_size_bytes[name] = node.output_shape.size_bytes(bits)
            self.node_num_elements[name] = node.output_shape.num_elements
            self.node_inputs[name] = tuple(node.inputs)
            self.node_outputs[name] = tuple(node.outputs)
            self.node_is_crossbar[name] = node.layer.is_crossbar_mapped

        #: nodes executed with each crossbar layer (the layer plus attachments)
        self.layer_owned: Dict[str, frozenset] = {}
        #: total output elements of the non-crossbar layers attached to a layer
        self.layer_attached_elements: Dict[str, int] = {}
        for name in self.layers:
            attached = decomposition.attachments.get(name, [])
            self.layer_owned[name] = frozenset([name, *attached])
            self.layer_attached_elements[name] = sum(
                self.node_num_elements[a] for a in attached
            )
        #: lazily built single-layer I/O templates, see single_layer_io_template
        self._io_templates: Dict[str, Tuple] = {}

    # ------------------------------------------------------------------
    def single_layer_io_template(self, layer: str) -> Tuple:
        """Entry/exit template of a span holding (part of) exactly one layer.

        For a single-layer span the *structure* of the partition I/O is
        independent of how many of the layer's units the span holds: the
        entry set (and its byte sizes) is constant, and only the layer's own
        exit bytes scale with the owned-column fraction — its attachments'
        outputs are modelled at full size.  Returns
        ``(entries, exits)`` where ``entries`` is the final sorted tuple of
        ``(src, bytes)`` and ``exits`` is a sorted tuple of
        ``(name, bytes, scales_with_fraction)``.
        """
        template = self._io_templates.get(layer)
        if template is not None:
            return template
        owned = self.layer_owned[layer]
        entries: Dict[str, int] = {}
        exits = []
        for name in sorted(owned):
            for src in self.node_inputs[name]:
                if src not in owned:
                    size = self.node_size_bytes[src]
                    if size > entries.get(src, 0):
                        entries[src] = size
            outputs = self.node_outputs[name]
            consumed_outside = any(succ not in owned for succ in outputs)
            if not outputs or consumed_outside:
                exits.append((name, self.node_size_bytes[name], name == layer))
        template = (tuple(sorted(entries.items())), tuple(sorted(exits)))
        self._io_templates[layer] = template
        return template

    # ------------------------------------------------------------------
    def layers_in_span(self, start: int, end: int) -> List[str]:
        """Crossbar layers with at least one unit in ``[start, end)``, in order."""
        if start >= end:
            return []
        return self.layers[self.unit_layer[start]:self.unit_layer[end - 1] + 1]


@dataclass
class ModelDecomposition:
    """A model decomposed into partition units for a specific chip.

    Holds everything partitioning needs: the ordered unit list, per-layer
    geometry, the attachment of non-crossbar layers to their producing
    Conv/Linear layer, and per-layer unit index ranges.
    """

    graph: Graph
    chip: ChipConfig
    weight_bits: int
    activation_bits: int
    units: List[PartitionUnit]
    geometries: Dict[str, WeightMatrixGeometry]
    #: crossbar layer name -> names of attached non-crossbar layers
    attachments: Dict[str, List[str]]
    #: layer name -> (first unit index, last unit index + 1)
    layer_unit_ranges: Dict[str, tuple]

    # ------------------------------------------------------------------
    @property
    def index(self) -> DecompositionIndex:
        """Lazily built prefix-sum/lookup index for O(1) span queries."""
        idx = self.__dict__.get("_index")
        if idx is None:
            idx = DecompositionIndex(self)
            self.__dict__["_index"] = idx
        return idx

    @property
    def num_units(self) -> int:
        """Number of partition units (M in Fig. 5)."""
        return len(self.units)

    @property
    def crossbar_layers(self) -> List[str]:
        """Crossbar-mapped layer names in decomposition order."""
        return list(self.layer_unit_ranges.keys())

    def units_of_layer(self, layer_name: str) -> List[PartitionUnit]:
        """All units belonging to the given layer."""
        start, end = self.layer_unit_ranges[layer_name]
        return self.units[start:end]

    def layer_of_unit(self, unit_index: int) -> str:
        """Layer owning the given unit index."""
        return self.units[unit_index].layer_name

    def node(self, layer_name: str) -> GraphNode:
        """Graph node for a layer name."""
        return self.graph.node(layer_name)

    def span_weight_bytes(self, start: int, end: int) -> int:
        """Single-copy weight bytes of units in ``[start, end)`` (O(1))."""
        prefix = self.index.weight_prefix
        return prefix[end] - prefix[start]

    def span_crossbars(self, start: int, end: int) -> int:
        """Single-copy crossbar count of units in ``[start, end)`` (O(1))."""
        prefix = self.index.crossbar_prefix
        return prefix[end] - prefix[start]

    def total_weight_bytes(self) -> int:
        """Single-copy weight bytes of the whole decomposed model."""
        return self.span_weight_bytes(0, self.num_units)

    def fits_fully_on_chip(self) -> bool:
        """Whether the entire model fits on chip without partitioning."""
        return self.total_weight_bytes() <= self.chip.weight_capacity_bytes


def _split_columns(total_cols: int, num_units: int) -> List[tuple]:
    """Split ``total_cols`` into ``num_units`` near-equal contiguous ranges."""
    base = total_cols // num_units
    extra = total_cols % num_units
    ranges = []
    start = 0
    for i in range(num_units):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def decompose_model(
    graph: Graph,
    chip: ChipConfig,
    weight_bits: int = 4,
    activation_bits: int = 4,
) -> ModelDecomposition:
    """Decompose a model into partition units for the given chip.

    Every Conv/Linear layer is split along the output dimension into the
    smallest number of units whose weight bytes fit within one core's
    crossbar capacity (validity condition 1 of Sec. III-B).

    Raises :class:`DecompositionError` if any single output column of a layer
    exceeds a core's capacity (the model cannot run on this chip at all).
    """
    xbar = chip.core.crossbar
    if xbar.weight_bits != weight_bits:
        # The crossbar capacity model depends on the weight precision; keep
        # them consistent rather than silently mixing precisions.
        raise DecompositionError(
            f"weight_bits={weight_bits} does not match the crossbar configuration "
            f"({xbar.weight_bits}-bit weights)"
        )

    core_capacity = chip.core.weight_capacity_bytes
    units: List[PartitionUnit] = []
    geometries: Dict[str, WeightMatrixGeometry] = {}
    layer_unit_ranges: Dict[str, tuple] = {}

    for layer_name in crossbar_layer_order(graph):
        node = graph.node(layer_name)
        geom = layer_geometry(node, xbar)
        geometries[layer_name] = geom

        total_cols = geom.cols * geom.groups
        bytes_per_col = (geom.rows * weight_bits + 7) // 8
        if bytes_per_col > core_capacity:
            raise DecompositionError(
                f"layer {layer_name!r}: a single output column needs {bytes_per_col} B "
                f"but a core only holds {core_capacity} B"
            )

        max_cols_per_unit = max(1, core_capacity // bytes_per_col)
        num_layer_units = math.ceil(total_cols / max_cols_per_unit)
        col_ranges = _split_columns(total_cols, num_layer_units)

        first_index = len(units)
        for unit_in_layer, (col_start, col_end) in enumerate(col_ranges):
            cols = col_end - col_start
            weight_bytes = cols * bytes_per_col
            crossbars = max(1, math.ceil(weight_bytes / xbar.capacity_bytes))
            tile_ops = geom.row_tiles * math.ceil(cols / xbar.weight_cols)
            units.append(
                PartitionUnit(
                    index=len(units),
                    layer_name=layer_name,
                    unit_in_layer=unit_in_layer,
                    units_in_layer=num_layer_units,
                    col_start=col_start,
                    col_end=col_end,
                    weight_bytes=weight_bytes,
                    crossbars=crossbars,
                    tile_ops_per_window=tile_ops,
                    windows=geom.windows,
                )
            )
        layer_unit_ranges[layer_name] = (first_index, len(units))

    if not units:
        raise DecompositionError("model has no crossbar-mapped (Conv/Linear) layers")

    return ModelDecomposition(
        graph=graph,
        chip=chip,
        weight_bits=weight_bits,
        activation_bits=activation_bits,
        units=units,
        geometries=geometries,
        attachments=attach_non_crossbar_layers(graph),
        layer_unit_ranges=layer_unit_ranges,
    )
