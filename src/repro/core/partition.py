"""Partitions and partition groups, with global-memory entry/exit analysis.

A *partition* is a span of consecutive partition units plus the non-crossbar
layers attached to them.  A *partition group* is an ordered list of
partitions covering the entire decomposed model; partitions execute
sequentially with weight replacement in between (Sec. II-B).

Unlike a fully on-chip model, each partition can have multiple entry and exit
nodes (Sec. III-B3): e.g. a ResNet residual connection that is not fully
contained in a partition forces the producing partition to store the skip
feature map to global memory and the consuming partition to load it back.
This module computes those load/store attributes, which feed DRAM latency
and energy estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.decomposition import ModelDecomposition, PartitionUnit
from repro.graph.layers import LayerKind


@dataclass(frozen=True, slots=True)
class PartitionIO:
    """Global-memory traffic of one partition, per input sample."""

    #: (source node name, bytes loaded from global memory) per entry
    entries: Tuple[Tuple[str, int], ...]
    #: (node name, bytes stored to global memory) per exit
    exits: Tuple[Tuple[str, int], ...]

    @property
    def load_bytes(self) -> int:
        """Bytes loaded from global memory per sample."""
        return sum(b for _, b in self.entries)

    @property
    def store_bytes(self) -> int:
        """Bytes stored to global memory per sample."""
        return sum(b for _, b in self.exits)

    @property
    def num_entries(self) -> int:
        """Number of entry nodes (multi-endpoint dependences)."""
        return len(self.entries)

    @property
    def num_exits(self) -> int:
        """Number of exit nodes."""
        return len(self.exits)


@dataclass
class Partition:
    """A span ``[start, end)`` of partition units."""

    decomposition: ModelDecomposition
    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end <= self.decomposition.num_units:
            raise ValueError(
                f"invalid partition span [{self.start}, {self.end}) for "
                f"{self.decomposition.num_units} units"
            )

    # ------------------------------------------------------------------
    @property
    def units(self) -> List[PartitionUnit]:
        """Units contained in this partition."""
        return self.decomposition.units[self.start:self.end]

    @property
    def num_units(self) -> int:
        """Number of units in this partition (|P| in the paper)."""
        return self.end - self.start

    @property
    def weight_bytes(self) -> int:
        """Single-copy weight bytes of this partition."""
        return self.decomposition.span_weight_bytes(self.start, self.end)

    @property
    def crossbars(self) -> int:
        """Single-copy crossbar count of this partition."""
        return self.decomposition.span_crossbars(self.start, self.end)

    def layer_names(self) -> List[str]:
        """Crossbar layers with at least one unit in this partition, in order."""
        return self.decomposition.index.layers_in_span(self.start, self.end)

    def layer_units(self) -> Dict[str, List[PartitionUnit]]:
        """Units grouped by layer, preserving order."""
        grouped: Dict[str, List[PartitionUnit]] = {}
        for unit in self.units:
            grouped.setdefault(unit.layer_name, []).append(unit)
        return grouped

    def layer_fraction(self, layer_name: str) -> float:
        """Fraction of the layer's output columns held by this partition.

        O(1) via the decomposition's prefix-sum index: a layer's units are
        contiguous, so the columns owned here are the prefix-sum difference
        over the intersection of the layer's unit range with this span.
        """
        total_range = self.decomposition.layer_unit_ranges.get(layer_name)
        if total_range is None:
            return 0.0
        layer_start, layer_end = total_range
        lo = max(self.start, layer_start)
        hi = min(self.end, layer_end)
        if lo >= hi:
            return 0.0
        index = self.decomposition.index
        cols_prefix = index.cols_prefix
        owned = cols_prefix[hi] - cols_prefix[lo]
        if owned == 0:
            return 0.0
        total = index.layer_total_cols[layer_name]
        return owned / total if total else 0.0

    def owned_nodes(self) -> Set[str]:
        """Graph nodes executed by this partition.

        Crossbar layers with units here plus their attached non-crossbar
        layers (ReLU/BatchNorm/Pool/Add/...).  Cached per instance — the
        estimator and the I/O analysis both need it.
        """
        owned = self.__dict__.get("_owned_nodes")
        if owned is None:
            layer_owned = self.decomposition.index.layer_owned
            owned = set()
            for layer in self.layer_names():
                owned.update(layer_owned[layer])
            self.__dict__["_owned_nodes"] = owned
        return owned

    # ------------------------------------------------------------------
    def io(self) -> PartitionIO:
        """Compute the entry/exit nodes and their DRAM traffic.

        Entry: any input edge whose producer is a model input or a node not
        executed by this partition.  Exit: any node executed here whose output
        is a model output or is consumed by a node outside this partition.
        Feature-map bytes of a layer split across partitions are scaled by the
        fraction of output columns this partition owns.
        """
        index = self.decomposition.index
        unit_layer = index.unit_layer
        if unit_layer[self.start] == unit_layer[self.end - 1]:
            # single-layer span: the entry set is constant and only the
            # layer's own exit bytes scale with the owned fraction
            layer = index.layers[unit_layer[self.start]]
            entries_template, exits_template = index.single_layer_io_template(layer)
            fraction_of_layer = self.layer_fraction(layer)
            exit_items = []
            for name, size, scales in exits_template:
                if scales:
                    size = int(round(size * fraction_of_layer))
                exit_items.append((name, max(size, 1)))
            return PartitionIO(entries=entries_template, exits=tuple(exit_items))

        sizes = index.node_size_bytes
        node_inputs = index.node_inputs
        node_outputs = index.node_outputs
        is_crossbar = index.node_is_crossbar
        owned = self.owned_nodes()
        ordered = sorted(owned)

        # Only the span's two edge layers can be partially owned: an owned
        # crossbar layer has fraction < 1 iff its unit range sticks out of
        # [start, end), which only the first and last layer of the span can
        # do.  Every other owned crossbar layer has fraction exactly 1.0.
        ranges = self.decomposition.layer_unit_ranges
        layers = index.layers
        fractions: Dict[str, float] = {}
        partial: set = set()
        for layer in (layers[unit_layer[self.start]], layers[unit_layer[self.end - 1]]):
            layer_start, layer_end = ranges[layer]
            if layer_start < self.start or layer_end > self.end:
                fractions[layer] = self.layer_fraction(layer)
                partial.add(layer)

        def fraction(name: str) -> float:
            return fractions.get(name, 1.0)

        def partially_owned(name: str) -> bool:
            """A crossbar layer with only part of its output columns here."""
            return name in partial

        entries: Dict[str, int] = {}
        for name in ordered:
            consumer_is_crossbar = is_crossbar[name]
            for src in node_inputs[name]:
                full_size = sizes[src]
                if src not in owned:
                    size = full_size
                elif src in partial and consumer_is_crossbar:
                    # a Conv/Linear consumer needs the producer's full output,
                    # but this partition only computed a slice of it; the rest
                    # was produced elsewhere and must be fetched from DRAM.
                    # (Element-wise consumers operate slice-locally and need
                    # no such load.)
                    size = max(1, int(round(full_size * (1.0 - fraction(src)))))
                else:
                    continue
                if size > entries.get(src, 0):
                    entries[src] = size

        exits: Dict[str, int] = {}
        for name in ordered:
            outputs = node_outputs[name]
            is_model_output = not outputs
            consumed_outside = False
            for succ in outputs:
                if succ not in owned or partially_owned(succ):
                    consumed_outside = True
                    break
            if not (is_model_output or consumed_outside):
                continue
            size = sizes[name]
            # a partition holding only a slice of the producing layer stores
            # only its slice of the feature map
            if is_crossbar[name]:
                size = int(round(size * fraction(name)))
            exits[name] = max(size, 1)

        return PartitionIO(
            entries=tuple(sorted(entries.items())),
            exits=tuple(sorted(exits.items())),
        )

    def __str__(self) -> str:
        return f"P[{self.start}:{self.end}]({self.num_units} units, {self.weight_bytes}B)"


@dataclass
class PartitionGroup:
    """An ordered list of partitions covering the whole decomposed model.

    Represented compactly by the partition end positions (``boundaries``);
    the i-th partition is ``[boundaries[i-1], boundaries[i])`` with an
    implicit leading 0.
    """

    decomposition: ModelDecomposition
    boundaries: Tuple[int, ...]

    def __post_init__(self) -> None:
        bounds = tuple(self.boundaries)
        self.boundaries = bounds
        if not bounds:
            raise ValueError("partition group needs at least one partition")
        prev = 0
        for b in bounds:
            if b <= prev:
                raise ValueError(f"boundaries must be strictly increasing, got {bounds}")
            prev = b
        if bounds[-1] != self.decomposition.num_units:
            raise ValueError(
                f"boundaries must cover all {self.decomposition.num_units} units, got {bounds}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_boundaries(cls, decomposition: ModelDecomposition,
                        boundaries: Sequence[int]) -> "PartitionGroup":
        """Build a group from partition end positions."""
        return cls(decomposition=decomposition, boundaries=tuple(boundaries))

    @classmethod
    def single_partition(cls, decomposition: ModelDecomposition) -> "PartitionGroup":
        """A group with everything in one partition (only valid if it fits)."""
        return cls(decomposition=decomposition, boundaries=(decomposition.num_units,))

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Number of partitions in the group."""
        return len(self.boundaries)

    def spans(self) -> List[Tuple[int, int]]:
        """(start, end) spans of all partitions."""
        result = []
        start = 0
        for end in self.boundaries:
            result.append((start, end))
            start = end
        return result

    def partitions(self) -> List[Partition]:
        """Materialised :class:`Partition` objects."""
        return [Partition(self.decomposition, s, e) for s, e in self.spans()]

    def partition(self, index: int) -> Partition:
        """The i-th partition."""
        spans = self.spans()
        start, end = spans[index]
        return Partition(self.decomposition, start, end)

    def is_valid(self, capacity_crossbars: int) -> bool:
        """Whether every partition fits on chip at a single copy (in crossbars)."""
        return all(
            self.decomposition.span_crossbars(s, e) <= capacity_crossbars
            for s, e in self.spans()
        )

    def total_dram_feature_bytes(self) -> int:
        """Total per-sample activation bytes moved to/from DRAM."""
        total = 0
        for partition in self.partitions():
            io = partition.io()
            total += io.load_bytes + io.store_bytes
        return total

    def total_weight_bytes(self) -> int:
        """Single-copy weight bytes across partitions (equals the model's)."""
        return sum(p.weight_bytes for p in self.partitions())

    def signature(self) -> Tuple[int, ...]:
        """Hashable identity of the partitioning (for caching/dedup)."""
        return self.boundaries

    def __str__(self) -> str:
        return f"PartitionGroup({self.num_partitions} partitions, boundaries={list(self.boundaries)})"
