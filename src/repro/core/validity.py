"""Partition validity map (Sec. III-B1, Fig. 5).

A partition is a span ``[i, j)`` of consecutive partition units.  It is valid
when a single copy of every unit in the span fits on chip simultaneously
(validity condition 3 with replication factor 1; replication only ever *adds*
copies, so a span that fails at one copy can never be made valid).

Randomly choosing span boundaries would mostly produce invalid partitions for
large models on small chips, so the validity map pre-computes, for every
start position ``i``, the largest end position ``max_end(i)`` such that
``[i, max_end(i))`` still fits.  Because unit sizes are positive, validity is
monotone: every ``j <= max_end(i)`` is also valid, which makes sampling a
valid random partition O(1).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.decomposition import ModelDecomposition


class ValidityMap:
    """Pre-computed valid partition spans for a decomposed model.

    The on-chip constraint is expressed in *crossbars*: a span is valid when
    a single copy of every unit in it fits within the chip's crossbar count.
    (Byte capacity is exactly ``crossbars x 8 KiB``, but counting crossbars
    also accounts for the fragmentation of units that do not fill their last
    crossbar, which is the constraint the mapper actually faces.)
    """

    def __init__(self, decomposition: ModelDecomposition,
                 capacity_crossbars: Optional[int] = None) -> None:
        self.decomposition = decomposition
        self.capacity_crossbars = (
            capacity_crossbars if capacity_crossbars is not None
            else decomposition.chip.total_crossbars
        )
        self._max_end = self._compute_max_end()

    # ------------------------------------------------------------------
    def _compute_max_end(self) -> List[int]:
        units = self.decomposition.units
        n = len(units)
        sizes = [u.crossbars for u in units]
        max_end: List[int] = [0] * n
        end = 0
        running = 0
        # two-pointer sweep: O(n)
        for start in range(n):
            if end < start:
                end = start
                running = 0
            while end < n and running + sizes[end] <= self.capacity_crossbars:
                running += sizes[end]
                end += 1
            if end == start:
                raise ValueError(
                    f"partition unit {start} ({units[start].layer_name}) alone exceeds "
                    f"the chip capacity of {self.capacity_crossbars} crossbars"
                )
            max_end[start] = end
            running -= sizes[start]
        return max_end

    # ------------------------------------------------------------------
    @property
    def num_units(self) -> int:
        """Number of partition units (matrix dimension M in Fig. 5)."""
        return self.decomposition.num_units

    def max_end(self, start: int) -> int:
        """Largest valid end position for a partition starting at ``start``."""
        if not 0 <= start < self.num_units:
            raise IndexError(f"start position {start} out of range [0, {self.num_units})")
        return self._max_end[start]

    def is_valid(self, start: int, end: int) -> bool:
        """Whether the span ``[start, end)`` forms a valid partition."""
        if not 0 <= start < end <= self.num_units:
            return False
        return end <= self._max_end[start]

    def valid_fraction(self) -> float:
        """Fraction of (start < end) position pairs that are valid.

        This is the quantity visualised in Fig. 5: it shrinks as the model
        grows or the chip shrinks.
        """
        n = self.num_units
        total_pairs = n * (n + 1) // 2
        valid_pairs = sum(self._max_end[i] - i for i in range(n))
        return valid_pairs / total_pairs if total_pairs else 0.0

    def as_matrix(self) -> np.ndarray:
        """Boolean matrix ``V[i, j]`` = span ``[i, j+1)`` is valid (Fig. 5)."""
        n = self.num_units
        matrix = np.zeros((n, n), dtype=bool)
        for i in range(n):
            matrix[i, i:self._max_end[i]] = True
        return matrix

    def random_valid_end(self, start: int, rng: np.random.Generator) -> int:
        """Sample a uniformly random valid end position for ``start``."""
        hi = self.max_end(start)
        return int(rng.integers(start + 1, hi + 1))

    def random_partition_boundaries(self, rng: np.random.Generator) -> List[int]:
        """Sample a random valid partitioning of the whole unit string.

        Returns the list of partition end positions (the last one is always
        ``num_units``).  Every partition respects the validity map.
        """
        boundaries: List[int] = []
        start = 0
        while start < self.num_units:
            end = self.random_valid_end(start, rng)
            boundaries.append(end)
            start = end
        return boundaries
