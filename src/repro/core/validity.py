"""Partition validity map (Sec. III-B1, Fig. 5).

A partition is a span ``[i, j)`` of consecutive partition units.  It is valid
when a single copy of every unit in the span fits on chip simultaneously
(validity condition 3 with replication factor 1; replication only ever *adds*
copies, so a span that fails at one copy can never be made valid).

Randomly choosing span boundaries would mostly produce invalid partitions for
large models on small chips, so the validity map pre-computes, for every
start position ``i``, the largest end position ``max_end(i)`` such that
``[i, max_end(i))`` still fits.  Because unit sizes are positive, validity is
monotone: every ``j <= max_end(i)`` is also valid, which makes sampling a
valid random partition O(1).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.decomposition import ModelDecomposition


class ValidityMap:
    """Pre-computed valid partition spans for a decomposed model.

    The on-chip constraint is expressed in *crossbars*: a span is valid when
    a single copy of every unit in it fits within the chip's crossbar count.
    (Byte capacity is exactly ``crossbars x 8 KiB``, but counting crossbars
    also accounts for the fragmentation of units that do not fill their last
    crossbar, which is the constraint the mapper actually faces.)
    """

    def __init__(self, decomposition: ModelDecomposition,
                 capacity_crossbars: Optional[int] = None) -> None:
        self.decomposition = decomposition
        self.capacity_crossbars = (
            capacity_crossbars if capacity_crossbars is not None
            else decomposition.chip.total_crossbars
        )
        self._max_end = self._compute_max_end()
        self._num_units = len(self._max_end)
        self._matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _compute_max_end(self) -> List[int]:
        units = self.decomposition.units
        n = len(units)
        sizes = [u.crossbars for u in units]
        max_end: List[int] = [0] * n
        end = 0
        running = 0
        # two-pointer sweep: O(n)
        for start in range(n):
            if end < start:
                end = start
                running = 0
            while end < n and running + sizes[end] <= self.capacity_crossbars:
                running += sizes[end]
                end += 1
            if end == start:
                raise ValueError(
                    f"partition unit {start} ({units[start].layer_name}) alone exceeds "
                    f"the chip capacity of {self.capacity_crossbars} crossbars"
                )
            max_end[start] = end
            running -= sizes[start]
        return max_end

    # ------------------------------------------------------------------
    @property
    def num_units(self) -> int:
        """Number of partition units (matrix dimension M in Fig. 5)."""
        return self._num_units

    def max_end(self, start: int) -> int:
        """Largest valid end position for a partition starting at ``start``."""
        if not 0 <= start < self._num_units:
            raise IndexError(f"start position {start} out of range [0, {self._num_units})")
        return self._max_end[start]

    def is_valid(self, start: int, end: int) -> bool:
        """Whether the span ``[start, end)`` forms a valid partition."""
        if not 0 <= start < end <= self.num_units:
            return False
        return end <= self._max_end[start]

    def group_valid(self, boundaries) -> bool:
        """Whether every span of a boundary list forms a valid partition.

        Equivalent to ``all(is_valid(s, e))`` over the implied spans, but as
        one chained sweep over the boundary list — this sits inside every
        mutation attempt of the GA, where the per-span call overhead
        dominates the check itself.
        """
        max_end = self._max_end
        num_units = len(max_end)
        start = 0
        for end in boundaries:
            # end > num_units also fails here before max_end is indexed:
            # max_end[start] <= num_units for every start
            if end <= start or end > num_units or end > max_end[start]:
                return False
            start = end
        return True

    def valid_fraction(self) -> float:
        """Fraction of (start < end) position pairs that are valid.

        This is the quantity visualised in Fig. 5: it shrinks as the model
        grows or the chip shrinks.
        """
        n = self.num_units
        total_pairs = n * (n + 1) // 2
        valid_pairs = sum(self._max_end[i] - i for i in range(n))
        return valid_pairs / total_pairs if total_pairs else 0.0

    def as_matrix(self) -> np.ndarray:
        """Boolean matrix ``V[i, j]`` = span ``[i, j+1)`` is valid (Fig. 5).

        Built once and cached: beyond Fig. 5 this is the transition mask of
        every :mod:`repro.search` DP/beam run on the decomposition, which may
        consult it thousands of times.  The returned array is marked
        read-only since all callers share it.
        """
        matrix = self._matrix
        if matrix is None:
            n = self.num_units
            matrix = np.zeros((n, n), dtype=bool)
            for i in range(n):
                matrix[i, i:self._max_end[i]] = True
            matrix.setflags(write=False)
            self._matrix = matrix
        return matrix

    def random_valid_end(self, start: int, rng: np.random.Generator) -> int:
        """Sample a uniformly random valid end position for ``start``."""
        hi = self.max_end(start)
        return int(rng.integers(start + 1, hi + 1))

    def sampled_end(self, start: int, uniform: float) -> int:
        """Valid end position for ``start`` from one uniform double in [0, 1).

        The block-sampling kernel shared by :meth:`random_partition_boundaries`
        and the fixed-random mutation operator: callers draw uniform doubles
        in batches (one ``Generator.random(k)`` call instead of ``k``
        ``integers`` calls, whose per-call overhead dominates the GA's
        samplers) and convert each here.  The result is uniform over
        ``[start + 1, max_end(start)]``.
        """
        size = self._max_end[start] - start
        offset = int(uniform * size)
        if offset >= size:  # guard the u -> 1.0 rounding edge
            offset = size - 1
        return start + 1 + offset

    def random_partition_boundaries(self, rng: np.random.Generator) -> List[int]:
        """Sample a random valid partitioning of the whole unit string.

        Returns the list of partition end positions (the last one is always
        ``num_units``).  Every partition respects the validity map.
        Randomness is consumed as one block of uniform doubles
        (``rng.random(num_units)``, the worst-case number of segments)
        converted through :meth:`sampled_end`.
        """
        num_units = self._num_units
        uniform = rng.random(num_units)
        sampled_end = self.sampled_end
        boundaries: List[int] = []
        start = 0
        draw = 0
        while start < num_units:
            end = sampled_end(start, uniform[draw])
            draw += 1
            boundaries.append(end)
            start = end
        return boundaries
