"""Fitness evaluation of partitions and partition groups (Sec. III-C1).

The model is optimised for the fitness the user specifies — latency
(throughput) or energy-delay product.  Each partition is a sub-model fully
mapped on chip, so its fitness comes from the on-chip optimizer/estimator
(:mod:`repro.onchip`); the partition-group fitness (PGF) is the sum of its
partitions' fitnesses.  Lower is better, matching the ascending sorts of
Algorithm 1.

Partition estimates are cached by span so the genetic algorithm can evaluate
thousands of partition groups without recomputing shared partitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.decomposition import ModelDecomposition
from repro.core.partition import Partition, PartitionGroup
from repro.hardware.chip import ChipConfig
from repro.hardware.dram import DRAMConfig, LPDDR3_8GB
from repro.onchip.estimator import PartitionEstimate, PartitionEstimator


class FitnessMode(enum.Enum):
    """What the optimiser minimises."""

    LATENCY = "latency"
    EDP = "edp"


@dataclass
class GroupEvaluation:
    """Fitness of a partition group and of each of its partitions."""

    group: PartitionGroup
    partition_fitness: List[float]
    estimates: List[PartitionEstimate]

    @property
    def fitness(self) -> float:
        """Partition-group fitness (PGF): sum of partition fitnesses."""
        return sum(self.partition_fitness)

    @property
    def total_latency_ns(self) -> float:
        """Total latency of executing all partitions sequentially."""
        return sum(e.latency_ns for e in self.estimates)

    @property
    def total_energy_pj(self) -> float:
        """Total energy of executing all partitions."""
        return sum(e.energy_pj for e in self.estimates)

    @property
    def edp(self) -> float:
        """Energy-delay product of the whole execution (pJ * ns)."""
        return self.total_energy_pj * self.total_latency_ns


class FitnessEvaluator:
    """Cached fitness oracle used by the GA and the baseline partitioners."""

    def __init__(
        self,
        decomposition: ModelDecomposition,
        batch_size: int = 1,
        mode: FitnessMode = FitnessMode.LATENCY,
        dram_config: DRAMConfig = LPDDR3_8GB,
    ) -> None:
        self.decomposition = decomposition
        self.chip: ChipConfig = decomposition.chip
        self.batch_size = batch_size
        self.mode = mode
        self.estimator = PartitionEstimator(self.chip, dram_config, batch_size)
        self._cache: Dict[Tuple[int, int], PartitionEstimate] = {}

    # ------------------------------------------------------------------
    @property
    def cache_size(self) -> int:
        """Number of distinct partition spans evaluated so far."""
        return len(self._cache)

    def estimate_span(self, start: int, end: int) -> PartitionEstimate:
        """Estimate (with caching) the partition covering units [start, end)."""
        key = (start, end)
        estimate = self._cache.get(key)
        if estimate is None:
            partition = Partition(self.decomposition, start, end)
            estimate = self.estimator.estimate(partition, batch_size=self.batch_size)
            self._cache[key] = estimate
        return estimate

    def partition_fitness(self, estimate: PartitionEstimate) -> float:
        """Scalar fitness of one partition (lower is better)."""
        if self.mode is FitnessMode.LATENCY:
            return estimate.latency_ns
        # EDP mode: scale to keep magnitudes manageable (pJ*ns -> uJ*us)
        return estimate.edp * 1e-12

    def evaluate(self, group: PartitionGroup) -> GroupEvaluation:
        """Evaluate a partition group: per-partition fitness and the PGF.

        In latency mode the PGF (sum of partition fitnesses) is exactly the
        end-to-end latency.  In EDP mode the end-to-end metric is
        ``(sum of energies) x (sum of latencies)``, which is not additive over
        partitions, so the per-partition fitnesses are rescaled to keep their
        sum equal to the group EDP while preserving their relative ordering
        (which is what the partition score of Sec. III-C2 consumes).
        """
        estimates = [self.estimate_span(s, e) for s, e in group.spans()]
        fitness = [self.partition_fitness(est) for est in estimates]
        if self.mode is FitnessMode.EDP:
            group_edp = (
                sum(e.energy_pj for e in estimates)
                * sum(e.latency_ns for e in estimates)
                * 1e-12
            )
            share_total = sum(fitness)
            if share_total > 0 and group_edp > 0:
                fitness = [f / share_total * group_edp for f in fitness]
        return GroupEvaluation(group=group, partition_fitness=fitness, estimates=estimates)
