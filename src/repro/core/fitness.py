"""Fitness evaluation of partitions and partition groups (Sec. III-C1).

The model is optimised for the fitness the user specifies — latency
(throughput) or energy-delay product.  Each partition is a sub-model fully
mapped on chip, so its fitness comes from the on-chip optimizer/estimator
(:mod:`repro.onchip`); the partition-group fitness (PGF) is the sum of its
partitions' fitnesses.  Lower is better, matching the ascending sorts of
Algorithm 1.

Partition estimates are served by the shared span table
(:mod:`repro.perf`), so the genetic algorithm can evaluate thousands of
partition groups without recomputing shared partitions — within one run,
across runs on the same decomposition, and across batch sizes (the
batch-independent span profile is reused).  ``use_span_table=False``
falls back to a private per-evaluator cache over the naive estimation
path; both paths are bit-identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import envflags
from repro.core.decomposition import ModelDecomposition
from repro.core.partition import Partition, PartitionGroup
from repro.hardware.chip import ChipConfig
from repro.hardware.dram import DRAMConfig, LPDDR3_8GB
from repro.onchip.estimator import PartitionEstimate, PartitionEstimator
from repro.perf.spanmatrix import SpanMatrix, span_matrix_for
from repro.perf.spantable import SpanTable, span_table_for


class FitnessMode(enum.Enum):
    """What the optimiser minimises."""

    LATENCY = "latency"
    EDP = "edp"


@dataclass
class GroupEvaluation:
    """Fitness of a partition group and of each of its partitions.

    ``estimates`` materialise lazily: in latency mode the GA only consumes
    the scalar per-partition fitnesses, so the full per-partition
    latency/energy breakdowns are fetched from the span table on first
    access (bit-identical — the table caches, it never approximates).
    """

    group: PartitionGroup
    partition_fitness: List[float]
    _estimates: Optional[List[PartitionEstimate]] = None
    _span_table: Optional["SpanTable"] = None
    _batch_size: int = 0
    #: cached PGF — the GA reads ``fitness`` many times per individual
    #: (sorting, selection, records), so the sum is computed once
    _fitness: Optional[float] = field(default=None, repr=False, compare=False)
    _fitness_array: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _span_bounds: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def estimates(self) -> List[PartitionEstimate]:
        """Per-partition estimates (materialised on demand)."""
        if self._estimates is None:
            if self._span_table is None:
                raise ValueError("evaluation has neither estimates nor a span table")
            self._estimates = self._span_table.estimate_group(self.group, self._batch_size)
        return self._estimates

    @property
    def fitness(self) -> float:
        """Partition-group fitness (PGF): sum of partition fitnesses (cached)."""
        value = self._fitness
        if value is None:
            value = sum(self.partition_fitness)
            self._fitness = value
        return value

    @property
    def fitness_array(self) -> np.ndarray:
        """Per-partition fitnesses as a float64 array (cached)."""
        array = self._fitness_array
        if array is None:
            array = np.asarray(self.partition_fitness, dtype=float)
            self._fitness_array = array
        return array

    @property
    def span_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """(starts, ends) index arrays of the group's partition spans (cached)."""
        bounds = self._span_bounds
        if bounds is None:
            ends = np.asarray(self.group.boundaries, dtype=np.int64)
            starts = np.empty_like(ends)
            starts[0] = 0
            starts[1:] = ends[:-1]
            bounds = (starts, ends)
            self._span_bounds = bounds
        return bounds

    @property
    def total_latency_ns(self) -> float:
        """Total latency of executing all partitions sequentially."""
        return sum(e.latency_ns for e in self.estimates)

    @property
    def total_energy_pj(self) -> float:
        """Total energy of executing all partitions."""
        return sum(e.energy_pj for e in self.estimates)

    @property
    def edp(self) -> float:
        """Energy-delay product of the whole execution (pJ * ns)."""
        return self.total_energy_pj * self.total_latency_ns


class FitnessEvaluator:
    """Cached fitness oracle used by the GA and the baseline partitioners."""

    def __init__(
        self,
        decomposition: ModelDecomposition,
        batch_size: int = 1,
        mode: FitnessMode = FitnessMode.LATENCY,
        dram_config: DRAMConfig = LPDDR3_8GB,
        use_span_table: bool = True,
        use_span_matrix: Optional[bool] = None,
    ) -> None:
        self.decomposition = decomposition
        self.chip: ChipConfig = decomposition.chip
        self.batch_size = batch_size
        self.mode = mode
        self.estimator = PartitionEstimator(self.chip, dram_config, batch_size)
        self.span_table: Optional[SpanTable] = (
            span_table_for(decomposition, dram_config) if use_span_table else None
        )
        # the dense matrix layer rides on the span table; default on, opt
        # out per evaluator or globally with REPRO_SPAN_MATRIX=0
        if use_span_matrix is None:
            use_span_matrix = envflags.span_matrix_enabled()
        self.span_matrix: Optional[SpanMatrix] = (
            span_matrix_for(decomposition, dram_config)
            if (use_span_table and use_span_matrix)
            else None
        )
        #: naive-path span cache (used when the span table is disabled)
        self._cache: Dict[Tuple[int, int], PartitionEstimate] = {}
        #: spans this evaluator has requested, packed as start*stride+end ints
        #: (the span table is shared, so its size cannot serve as this
        #: evaluator's cache footprint; ints keep the set GC-light)
        self._span_stride = decomposition.num_units + 1
        self._seen_spans: Set[int] = set()

    # ------------------------------------------------------------------
    @property
    def cache_size(self) -> int:
        """Number of distinct partition spans evaluated so far."""
        if self.span_table is not None:
            return len(self._seen_spans)
        return len(self._cache)

    @property
    def span_stats(self) -> Dict[str, float]:
        """Cache statistics of the span-table engine backing this evaluator.

        Returns an empty dict when the span table is disabled (naive path).
        """
        if self.span_table is None:
            return {}
        return self.span_table.stats.as_dict()

    def estimate_span(self, start: int, end: int) -> PartitionEstimate:
        """Estimate (with caching) the partition covering units [start, end)."""
        key = (start, end)
        if self.span_table is not None:
            self._seen_spans.add(start * self._span_stride + end)
            return self.span_table.estimate(start, end, self.batch_size)
        estimate = self._cache.get(key)
        if estimate is None:
            partition = Partition(self.decomposition, start, end)
            estimate = self.estimator.estimate(partition, batch_size=self.batch_size)
            self._cache[key] = estimate
        return estimate

    def partition_fitness(self, estimate: PartitionEstimate) -> float:
        """Scalar fitness of one partition (lower is better)."""
        if self.mode is FitnessMode.LATENCY:
            return estimate.latency_ns
        # EDP mode: scale to keep magnitudes manageable (pJ*ns -> uJ*us)
        return estimate.edp * 1e-12

    def evaluate(self, group: PartitionGroup) -> GroupEvaluation:
        """Evaluate a partition group: per-partition fitness and the PGF.

        In latency mode the PGF (sum of partition fitnesses) is exactly the
        end-to-end latency.  In EDP mode the end-to-end metric is
        ``(sum of energies) x (sum of latencies)``, which is not additive over
        partitions, so the per-partition fitnesses are rescaled to keep their
        sum equal to the group EDP while preserving their relative ordering
        (which is what the partition score of Sec. III-C2 consumes).

        With the span table engaged, latency mode reads scalar span latencies
        straight from the table and defers the full per-partition estimates
        until something actually asks for them.
        """
        if self.span_table is not None and self.mode is FitnessMode.LATENCY:
            table = self.span_table
            batch = self.batch_size
            spans = group.spans()
            fitness = [table.latency_ns(s, e, batch) for s, e in spans]
            stride = self._span_stride
            self._seen_spans.update(s * stride + e for s, e in spans)
            return GroupEvaluation(
                group=group, partition_fitness=fitness,
                _span_table=table, _batch_size=batch,
            )

        estimates = [self.estimate_span(s, e) for s, e in group.spans()]
        fitness = [self.partition_fitness(est) for est in estimates]
        if self.mode is FitnessMode.EDP:
            group_edp = (
                sum(e.energy_pj for e in estimates)
                * sum(e.latency_ns for e in estimates)
                * 1e-12
            )
            share_total = sum(fitness)
            if share_total > 0 and group_edp > 0:
                fitness = [f / share_total * group_edp for f in fitness]
        return GroupEvaluation(group=group, partition_fitness=fitness, _estimates=estimates)

    # ------------------------------------------------------------------
    def evaluate_many(self, groups: Sequence[PartitionGroup]) -> List[GroupEvaluation]:
        """Evaluate a whole population of partition groups at once.

        With the dense span matrix engaged, the populations' cut vectors are
        flattened into parallel (start, end) index arrays, missing spans are
        profiled once (the delta), and every per-partition fitness comes from
        one fancy-indexed gather plus elementwise math — no per-span Python.
        The per-group fitness sums stay sequential so results are
        bit-identical to calling :meth:`evaluate` per group (NumPy's pairwise
        reductions are not).  Without the matrix this degenerates to exactly
        that per-group loop.
        """
        matrix = self.span_matrix
        if matrix is None or not groups:
            return [self.evaluate(group) for group in groups]

        counts = [group.num_partitions for group in groups]
        total = sum(counts)
        ends = np.fromiter(
            (end for group in groups for end in group.boundaries),
            dtype=np.int64, count=total,
        )
        starts = np.empty(total, dtype=np.int64)
        starts[0] = 0
        starts[1:] = ends[:-1]
        first = np.zeros(len(groups), dtype=np.int64)
        np.cumsum(counts[:-1], out=first[1:])
        starts[first] = 0

        stride = self._span_stride
        self._seen_spans.update((starts * stride + ends).tolist())
        table = self.span_table
        batch = self.batch_size

        if self.mode is FitnessMode.LATENCY:
            values = matrix.gather_latency(starts, ends, batch).tolist()
            evaluations: List[GroupEvaluation] = []
            position = 0
            for group, count in zip(groups, counts):
                fitness = values[position:position + count]
                position += count
                evaluations.append(
                    GroupEvaluation(
                        group=group, partition_fitness=fitness,
                        _span_table=table, _batch_size=batch,
                    )
                )
            return evaluations

        energy, latency = matrix.gather_energy_latency(starts, ends, batch)
        # same elementwise association as estimate.edp * 1e-12 per span
        span_fitness = ((energy * latency) * 1e-12).tolist()
        energy_list = energy.tolist()
        latency_list = latency.tolist()
        evaluations = []
        position = 0
        for group, count in zip(groups, counts):
            stop = position + count
            fitness = span_fitness[position:stop]
            group_edp = (
                sum(energy_list[position:stop])
                * sum(latency_list[position:stop])
                * 1e-12
            )
            share_total = sum(fitness)
            if share_total > 0 and group_edp > 0:
                fitness = [f / share_total * group_edp for f in fitness]
            position = stop
            evaluations.append(
                GroupEvaluation(
                    group=group, partition_fitness=fitness,
                    _span_table=table, _batch_size=batch,
                )
            )
        return evaluations
