"""Partition score used to select mutation targets (Sec. III-C2).

For a partition ``P = {x_i | a <= i < b}``:

* the partition-unit fitness is ``m(x_i) = f(P) / |P|`` — the partition's
  fitness spread evenly over its units;
* ``F[p, q]`` is the *expected* fitness of the span ``[p, q)``: the
  population mean of ``sum_{i in [p,q)} m(x_i)``;
* the partition score is ``R = f(P) / F[a, b]``.

A score above one means these units perform worse here than they do on
average across the population, so the partition is a good mutation target;
Algorithm 1 sorts partitions ascending by R and mutates the last (worst) one.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.fitness import GroupEvaluation


def unit_fitness_profile(evaluation: GroupEvaluation, num_units: int) -> np.ndarray:
    """Per-unit fitness m(x_i) for every unit index of one partition group."""
    spans = evaluation.group.spans()
    if spans and spans[0][0] == 0 and spans[-1][1] == num_units:
        # partitions tile [0, num_units) exactly — one vectorised repeat
        values = [f / (e - s) for (s, e), f in zip(spans, evaluation.partition_fitness)]
        sizes = [e - s for s, e in spans]
        return np.repeat(np.asarray(values, dtype=float), sizes)
    profile = np.zeros(num_units, dtype=float)
    for (start, end), fitness in zip(spans, evaluation.partition_fitness):
        size = end - start
        if size > 0:
            profile[start:end] = fitness / size
    return profile


def population_unit_expectation(
    evaluations: Sequence[GroupEvaluation], num_units: int
) -> np.ndarray:
    """Population mean of m(x_i) for every unit index (the E[...] of the paper)."""
    if not evaluations:
        raise ValueError("population is empty")
    profiles = np.stack([unit_fitness_profile(ev, num_units) for ev in evaluations])
    return profiles.mean(axis=0)


def partition_scores(
    evaluation: GroupEvaluation,
    expectation: np.ndarray,
) -> List[float]:
    """Score R of every partition in a group against the population expectation.

    ``expectation`` is the array returned by
    :func:`population_unit_expectation`.  A small epsilon guards against a
    zero expected fitness (cannot happen with physical latencies, but keeps
    the math total).
    """
    prefix = np.concatenate(([0.0], np.cumsum(expectation)))
    scores: List[float] = []
    for (start, end), fitness in zip(evaluation.group.spans(), evaluation.partition_fitness):
        expected = prefix[end] - prefix[start]
        scores.append(fitness / max(expected, 1e-12))
    return scores
