"""Partition score used to select mutation targets (Sec. III-C2).

For a partition ``P = {x_i | a <= i < b}``:

* the partition-unit fitness is ``m(x_i) = f(P) / |P|`` — the partition's
  fitness spread evenly over its units;
* ``F[p, q]`` is the *expected* fitness of the span ``[p, q)``: the
  population mean of ``sum_{i in [p,q)} m(x_i)``;
* the partition score is ``R = f(P) / F[a, b]``.

A score above one means these units perform worse here than they do on
average across the population, so the partition is a good mutation target;
Algorithm 1 sorts partitions ascending by R and mutates the last (worst) one.

The implementations operate on the population's span arrays in one shot:
every partition group tiles ``[0, num_units)``, so the whole population's
unit-fitness profiles are a single ``np.repeat`` of the concatenated
``f / |P|`` values reshaped to ``(population, num_units)``, and the R
scores of many groups are gathers into one prefix-sum of the expectation.
Element values (and hence all downstream sorts) are bit-identical to the
historical per-group loops.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.fitness import GroupEvaluation


def unit_fitness_profile(evaluation: GroupEvaluation, num_units: int) -> np.ndarray:
    """Per-unit fitness m(x_i) for every unit index of one partition group."""
    spans = evaluation.group.spans()
    if spans and spans[0][0] == 0 and spans[-1][1] == num_units:
        # partitions tile [0, num_units) exactly — one vectorised repeat
        starts, ends = evaluation.span_bounds
        sizes = ends - starts
        return np.repeat(evaluation.fitness_array / sizes, sizes)
    profile = np.zeros(num_units, dtype=float)
    for (start, end), fitness in zip(spans, evaluation.partition_fitness):
        size = end - start
        if size > 0:
            profile[start:end] = fitness / size
    return profile


def population_unit_expectation(
    evaluations: Sequence[GroupEvaluation], num_units: int
) -> np.ndarray:
    """Population mean of m(x_i) for every unit index (the E[...] of the paper).

    When every group tiles ``[0, num_units)`` (always true for GA
    populations) the whole population's profiles are built with one
    concatenated repeat and reshaped to ``(population, num_units)`` — no
    per-group Python loop.  Values and the axis-0 mean are bit-identical to
    stacking :func:`unit_fitness_profile` rows.
    """
    if not evaluations:
        raise ValueError("population is empty")
    if all(ev.group.boundaries[-1] == num_units for ev in evaluations):
        sizes = np.concatenate(
            [ev.span_bounds[1] - ev.span_bounds[0] for ev in evaluations]
        )
        values = np.concatenate([ev.fitness_array for ev in evaluations]) / sizes
        profiles = np.repeat(values, sizes).reshape(len(evaluations), num_units)
        return profiles.mean(axis=0)
    profiles = np.stack([unit_fitness_profile(ev, num_units) for ev in evaluations])
    return profiles.mean(axis=0)


def partition_scores(
    evaluation: GroupEvaluation,
    expectation: np.ndarray,
) -> List[float]:
    """Score R of every partition in a group against the population expectation.

    ``expectation`` is the array returned by
    :func:`population_unit_expectation`.  A small epsilon guards against a
    zero expected fitness (cannot happen with physical latencies, but keeps
    the math total).
    """
    prefix = np.concatenate(([0.0], np.cumsum(expectation)))
    starts, ends = evaluation.span_bounds
    expected = prefix[ends] - prefix[starts]
    scores = evaluation.fitness_array / np.maximum(expected, 1e-12)
    return scores.tolist()


def population_partition_scores(
    evaluations: Sequence[GroupEvaluation],
    expectation: np.ndarray,
) -> List[np.ndarray]:
    """R scores of many groups against one expectation, as float64 arrays.

    The expectation prefix sum is built once and every group's scores are a
    pair of gathers — this is what lets the GA score all survivors once per
    generation instead of re-deriving scores per mutation draw.  Values are
    bit-identical to :func:`partition_scores` per group.
    """
    prefix = np.concatenate(([0.0], np.cumsum(expectation)))
    scores: List[np.ndarray] = []
    for evaluation in evaluations:
        starts, ends = evaluation.span_bounds
        expected = prefix[ends] - prefix[starts]
        scores.append(evaluation.fitness_array / np.maximum(expected, 1e-12))
    return scores
