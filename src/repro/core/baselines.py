"""Baseline partitioning schemes the paper compares against (Sec. IV-A2).

* **Greedy** packs as many consecutive partition units as possible into each
  partition, iterating the unit string and tracking the remaining on-chip
  memory footprint.  It minimises the number of partitions (and hence weight
  replacement phases) but leaves little room for replication, so early
  partitions become deep, unbalanced pipelines.
* **Layerwise** maps a single Conv/Linear layer at a time (splitting a layer
  that does not fit by itself), with the trailing non-Conv/Linear nodes kept
  with their producer as in all schemes.  It maximises replication per
  partition but multiplies DRAM traffic for intermediate features.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.core.decomposition import ModelDecomposition
from repro.core.partition import PartitionGroup
from repro.core.validity import ValidityMap

if TYPE_CHECKING:
    from repro.core.fitness import FitnessEvaluator, GroupEvaluation


def greedy_partition(decomposition: ModelDecomposition,
                     validity: ValidityMap = None) -> PartitionGroup:
    """Greedy baseline: each partition takes the longest valid span available."""
    validity = validity if validity is not None else ValidityMap(decomposition)
    boundaries: List[int] = []
    start = 0
    while start < decomposition.num_units:
        end = validity.max_end(start)
        boundaries.append(end)
        start = end
    return PartitionGroup.from_boundaries(decomposition, boundaries)


def layerwise_partition(decomposition: ModelDecomposition,
                        validity: ValidityMap = None) -> PartitionGroup:
    """Layerwise baseline: one Conv/Linear layer per partition.

    A layer whose single copy exceeds the chip capacity is split into the
    minimum number of valid partitions (this is what lets the baseline run
    VGG16's fully-connected layers at all).
    """
    validity = validity if validity is not None else ValidityMap(decomposition)
    boundaries: List[int] = []
    for layer_name in decomposition.crossbar_layers:
        layer_start, layer_end = decomposition.layer_unit_ranges[layer_name]
        start = layer_start
        while start < layer_end:
            end = min(validity.max_end(start), layer_end)
            boundaries.append(end)
            start = end
    return PartitionGroup.from_boundaries(decomposition, boundaries)


def baseline_evaluations(
    decomposition: ModelDecomposition,
    evaluator: "FitnessEvaluator",
    validity: ValidityMap = None,
) -> Dict[str, "GroupEvaluation"]:
    """Fitness of both baseline partitionings, scored as one batch.

    Returns ``{"greedy": ..., "layerwise": ...}``.  Both groups go through
    :meth:`~repro.core.fitness.FitnessEvaluator.evaluate_many`, so with the
    dense span-matrix engine engaged their spans land in the same matrices
    the GA gathers from — comparing a GA result against the baselines costs
    one fill pass plus gathers, not a separate estimation walk.
    """
    validity = validity if validity is not None else ValidityMap(decomposition)
    schemes = {
        "greedy": greedy_partition(decomposition, validity),
        "layerwise": layerwise_partition(decomposition, validity),
    }
    evaluations = evaluator.evaluate_many(list(schemes.values()))
    return dict(zip(schemes, evaluations))
