"""Whole-model execution simulation of a partition group.

Partitions execute sequentially (Fig. 2): weight replacement, then pipelined
execution of the batch, then the next partition.  The simulator aggregates
the per-partition estimates, optionally replays the scheduler's DRAM trace
through the LPDDR3 model, and produces an :class:`ExecutionReport` with all
quantities the paper's figures use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.partition import PartitionGroup
from repro.hardware.chip import ChipConfig
from repro.hardware.dram import DRAMConfig, DRAMModel, DRAMStats, LPDDR3_8GB
from repro.hardware.power import EnergyBreakdown
from repro.onchip.estimator import PartitionEstimate, PartitionEstimator
from repro.onchip.plan import PartitionPlan, build_partition_plan
from repro.perf.spantable import SpanTable, span_table_for
from repro.sim.metrics import edp_mj_ms, energy_per_inference_mj, throughput_inferences_per_sec


@dataclass
class ExecutionReport:
    """Latency/energy summary of executing a partition group once."""

    model_name: str
    chip_name: str
    scheme: str
    batch_size: int
    group: PartitionGroup
    estimates: List[PartitionEstimate]
    dram_stats: Optional[DRAMStats] = None

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Number of partitions executed."""
        return len(self.estimates)

    @property
    def total_latency_ns(self) -> float:
        """End-to-end latency of the whole batch."""
        return sum(e.latency_ns for e in self.estimates)

    @property
    def latency_per_inference_ms(self) -> float:
        """Amortised latency per inference, in milliseconds."""
        return (self.total_latency_ns / self.batch_size) * 1e-6

    @property
    def throughput(self) -> float:
        """Throughput in inferences per second."""
        return throughput_inferences_per_sec(self.batch_size, self.total_latency_ns)

    @property
    def total_energy_pj(self) -> float:
        """Total energy of the whole batch."""
        return sum(e.energy_pj for e in self.estimates)

    @property
    def energy_per_inference_mj(self) -> float:
        """Energy per inference, in millijoules."""
        return energy_per_inference_mj(self.total_energy_pj, self.batch_size)

    @property
    def edp_per_inference(self) -> float:
        """Energy-delay product per inference (mJ x ms)."""
        return edp_mj_ms(self.total_energy_pj, self.total_latency_ns, self.batch_size)

    @property
    def energy_breakdown(self) -> EnergyBreakdown:
        """Aggregate energy breakdown over all partitions."""
        total = EnergyBreakdown()
        for estimate in self.estimates:
            total.add(estimate.energy)
        return total

    def partition_latencies_ns(self) -> List[float]:
        """Per-partition latency (for the Fig. 7 breakdown)."""
        return [e.latency_ns for e in self.estimates]

    def partition_latency_fractions(self) -> List[float]:
        """Per-partition share of the total latency."""
        total = self.total_latency_ns
        return [e.latency_ns / total for e in self.estimates] if total else []

    def weight_traffic_bytes(self) -> int:
        """Weight bytes loaded from DRAM over the whole execution."""
        return sum(e.plan.single_copy_weight_bytes for e in self.estimates)

    def feature_traffic_bytes(self) -> int:
        """Activation bytes moved to/from DRAM over the whole execution."""
        return sum(
            (e.io.load_bytes + e.io.store_bytes) * self.batch_size for e in self.estimates
        )

    def summary_row(self) -> Dict[str, float]:
        """Flat dictionary used by the evaluation harness tables."""
        return {
            "model": self.model_name,
            "chip": self.chip_name,
            "scheme": self.scheme,
            "batch": self.batch_size,
            "partitions": self.num_partitions,
            "latency_ms": self.total_latency_ns * 1e-6,
            "throughput_ips": self.throughput,
            "energy_per_inf_mj": self.energy_per_inference_mj,
            "edp_mj_ms": self.edp_per_inference,
        }


class ExecutionSimulator:
    """Simulates sequential execution of a partition group on a chip."""

    def __init__(
        self,
        chip: ChipConfig,
        batch_size: int = 1,
        dram_config: DRAMConfig = LPDDR3_8GB,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.chip = chip
        self.batch_size = batch_size
        self.dram_config = dram_config
        self.estimator = PartitionEstimator(chip, dram_config, batch_size)

    # ------------------------------------------------------------------
    def simulate(
        self,
        group: PartitionGroup,
        model_name: str = "",
        scheme: str = "",
        plans: Optional[List[PartitionPlan]] = None,
        dram_trace=None,
        span_table: Optional[SpanTable] = None,
    ) -> ExecutionReport:
        """Simulate one partition group and return the execution report.

        ``plans`` may be passed to reuse plans built elsewhere (e.g. by the
        compiler); otherwise estimation goes through the decomposition's
        shared span table (:mod:`repro.perf`), which reuses any plan and
        profile work done by the partition optimiser.  A ``span_table`` may
        also be passed explicitly (the compiler does) to reuse its caches
        even when plans are supplied.  ``dram_trace`` (an iterable of
        :class:`~repro.hardware.dram.DRAMRequest`) is replayed through the
        LPDDR3 model when provided, populating ``dram_stats``.
        """
        partitions = group.partitions()
        if plans is not None and len(plans) != len(partitions):
            raise ValueError("number of plans does not match number of partitions")
        if span_table is None and plans is None:
            span_table = span_table_for(group.decomposition, self.dram_config)

        if span_table is not None:
            estimates = span_table.estimate_group(group, self.batch_size)
        else:
            estimates = [
                self.estimator.estimate(partition, plan=plan, batch_size=self.batch_size)
                for partition, plan in zip(partitions, plans)
            ]

        dram_stats = None
        if dram_trace is not None:
            dram_model = DRAMModel(self.dram_config)
            dram_stats = dram_model.process_trace(dram_trace)

        return ExecutionReport(
            model_name=model_name or group.decomposition.graph.name,
            chip_name=self.chip.name,
            scheme=scheme,
            batch_size=self.batch_size,
            group=group,
            estimates=estimates,
            dram_stats=dram_stats,
        )
