"""Metric helpers shared by the simulator, evaluation harness and benchmarks."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def nearest_rank_percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    The exact (sample-storing) percentile definition every serving surface
    shares: the simulator's terminal report, the control plane's hedge
    budget and the telemetry sketches' accuracy tests all call this one
    function, so "p95" means the same sample everywhere.  Returns 0.0 for
    an empty sequence.
    """
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def throughput_inferences_per_sec(batch_size: int, total_latency_ns: float) -> float:
    """Inferences per second for a batch completing in ``total_latency_ns``."""
    if total_latency_ns <= 0:
        raise ValueError("total latency must be positive")
    return batch_size / (total_latency_ns * 1e-9)


def energy_per_inference_mj(total_energy_pj: float, batch_size: int) -> float:
    """Energy per inference in millijoules."""
    if batch_size <= 0:
        raise ValueError("batch size must be positive")
    return (total_energy_pj / batch_size) * 1e-9


def edp_mj_ms(total_energy_pj: float, total_latency_ns: float, batch_size: int) -> float:
    """Energy-delay product per inference, in mJ x ms.

    Both energy and latency are amortised per inference before multiplying,
    matching the per-sample EDP the paper reports in Fig. 8.
    """
    energy_mj = energy_per_inference_mj(total_energy_pj, batch_size)
    latency_ms = (total_latency_ns / batch_size) * 1e-6
    return energy_mj * latency_ms


def speedup(baseline: float, improved: float) -> float:
    """Ratio baseline/improved (e.g. latency speed-up or EDP gain)."""
    if improved <= 0:
        raise ValueError("improved value must be positive")
    return baseline / improved


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for cross-workload averages).

    ``exp(mean(log x))`` can drift just past ``max(values)`` (or below
    ``min(values)``) through float rounding; the log-sum uses ``math.fsum``
    and the result is clamped into ``[min(values), max(values)]``, which the
    exact geometric mean always satisfies.
    """
    items = [v for v in values]
    if not items:
        raise ValueError("geometric_mean of an empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geometric_mean requires positive values")
    mean = math.exp(math.fsum(math.log(v) for v in items) / len(items))
    return min(max(mean, min(items)), max(items))
