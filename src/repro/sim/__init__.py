"""Execution simulator for partitioned models.

Combines the per-partition estimates of :mod:`repro.onchip` into whole-model
latency, throughput, energy and EDP numbers, optionally replaying the
scheduler's DRAM trace through the LPDDR3 model for memory statistics.
"""

from repro.sim.simulator import ExecutionReport, ExecutionSimulator
from repro.sim.metrics import (
    throughput_inferences_per_sec,
    energy_per_inference_mj,
    edp_mj_ms,
    speedup,
    geometric_mean,
)
from repro.sim.report import format_table, render_execution_report

__all__ = [
    "ExecutionReport",
    "ExecutionSimulator",
    "throughput_inferences_per_sec",
    "energy_per_inference_mj",
    "edp_mj_ms",
    "speedup",
    "geometric_mean",
    "format_table",
    "render_execution_report",
]
