"""Plain-text reporting helpers for execution results and benchmark tables."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.sim.simulator import ExecutionReport

if TYPE_CHECKING:
    from repro.search import SearchResult
    from repro.serve import ServingReport


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = None,
                 float_format: str = "{:.3f}") -> str:
    """Render a list of dictionaries as an aligned text table.

    ``columns`` selects and orders the columns; by default the keys of the
    first row are used.  Floats are formatted with ``float_format``.
    """
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered
    ]
    return "\n".join([header, separator] + body)


def render_execution_report(report: ExecutionReport) -> str:
    """Multi-line human-readable summary of one execution report."""
    lines = [
        f"Execution of {report.model_name} on Chip-{report.chip_name} "
        f"({report.scheme or 'unspecified scheme'}, batch {report.batch_size})",
        f"  partitions            : {report.num_partitions}",
        f"  total latency         : {report.total_latency_ns * 1e-6:.3f} ms",
        f"  throughput            : {report.throughput:.1f} inferences/s",
        f"  energy per inference  : {report.energy_per_inference_mj:.3f} mJ",
        f"  EDP per inference     : {report.edp_per_inference:.4f} mJ*ms",
        f"  DRAM weight traffic   : {report.weight_traffic_bytes() / 1e6:.2f} MB",
        f"  DRAM feature traffic  : {report.feature_traffic_bytes() / 1e6:.2f} MB",
    ]
    breakdown = report.energy_breakdown
    lines.append("  energy breakdown (uJ):")
    for key, value in breakdown.as_dict().items():
        if value:
            lines.append(f"    {key:<20s}: {value / 1e6:.2f}")
    if report.dram_stats is not None:
        stats = report.dram_stats
        lines.append(
            f"  DRAM trace: {stats.num_requests} requests, "
            f"row-hit rate {stats.row_hit_rate:.2f}, "
            f"avg latency {stats.average_latency_ns:.1f} ns"
        )
    lines.append("  per-partition latency (ms): "
                 + ", ".join(f"{v * 1e-6:.3f}" for v in report.partition_latencies_ns()))
    return "\n".join(lines)


def render_search_summary(result: "SearchResult") -> str:
    """Multi-line summary of a :mod:`repro.search` run.

    Printed by ``repro compile --optimizer ...`` for the non-GA engines (the
    GA keeps its historical summary line); shows what the engine did and how
    hard the shared span engine worked for it.
    """
    lines = [
        f"Partition search ({result.optimizer}"
        f"{', exact optimum' if result.exact else ''})",
        f"  best fitness          : {result.best_fitness:.6g}",
        f"  partitions            : {result.best_group.num_partitions}",
        f"  steps                 : {result.steps_run}",
        f"  evaluations           : {result.evaluations}",
    ]
    stats = result.span_stats
    if stats:
        fills = int(stats.get("matrix_fills", 0))
        hits = int(stats.get("matrix_hits", 0))
        if fills or hits:
            lines.append(
                f"  span matrix           : {fills} fills, {hits} gather-served "
                f"({stats.get('matrix_hit_rate', 0.0):.1%} hit rate)"
            )
        profiles = int(stats.get("profiles_computed", 0))
        if profiles:
            lines.append(f"  span profiles         : {profiles} computed")
    return "\n".join(lines)


def render_serving_report(report: "ServingReport") -> str:
    """Multi-line human-readable summary of one serving run.

    Printed by ``repro serve``: the traffic/fleet configuration, the
    throughput and tail-latency headline, the batching mix (nominal batch
    histogram, plus the served histogram when padded batches make the two
    differ), plan-switch counts when switch cost is modelled, per-model
    SLO attainment when targets are set, a fault/availability section when
    faults were injected or fault-tolerance machinery was active, a
    control-plane section (detections vs injected truth, hedge outcomes,
    scale events, re-placements) when the self-healing controller ran, the
    per-chip utilisation table and the plan-cache counters.
    """
    traffic = report.traffic
    batches_line = (
        f"  batches               : {report.batches} "
        f"(mean size {report.mean_batch:.2f}, {report.padded_batches} padded); "
        "histogram "
        + ", ".join(f"{b}x{n}" for b, n in sorted(report.batch_histogram.items()))
    )
    if report.served_histogram != report.batch_histogram:
        # nominal sizes above (what occupied the chip); actually-served
        # counts only differ on padded batches
        batches_line += ("; served " + ", ".join(
            f"{b}x{n}" for b, n in sorted(report.served_histogram.items())))
    lines = [
        f"Serving {', '.join(report.models)} on fleet {report.fleet_spec} "
        f"({traffic.get('traffic', 'unspecified')} traffic, policy {report.policy}, "
        f"optimizer {report.optimizer})",
        f"  requests              : {report.completed}/{report.num_requests} served"
        f" (seed {traffic.get('seed', '?')})",
        f"  makespan              : {report.makespan_ms:.3f} ms",
        f"  offered load          : {report.offered_rps:.1f} req/s",
        f"  throughput            : {report.throughput_rps:.1f} req/s",
        f"  latency (ms)          : mean {report.latency_ms['mean']:.3f}, "
        f"p50 {report.latency_ms['p50']:.3f}, p95 {report.latency_ms['p95']:.3f}, "
        f"p99 {report.latency_ms['p99']:.3f}, max {report.latency_ms['max']:.3f}",
        f"  queueing wait (ms)    : mean {report.wait_ms['mean']:.3f}, "
        f"p95 {report.wait_ms['p95']:.3f}, max {report.wait_ms['max']:.3f}",
        f"  queue depth           : mean {report.queue_depth['mean']:.2f}, "
        f"max {report.queue_depth['max']:.0f}",
        batches_line,
        f"  energy                : {report.total_energy_mj:.3f} mJ total, "
        f"{report.energy_per_request_mj:.4f} mJ/request",
    ]
    if report.switch_cost:
        lines.append(
            f"  plan switches         : {report.plan_switches} "
            f"({report.switch_ms:.3f} ms weight replacement)"
        )
    for model, block in sorted(report.slo.items()):
        lines.append(
            f"  SLO {model:<17s} : target {block['target_ms']:.3f} ms, "
            f"attainment {block['attainment']:.1%} "
            f"(p50 {block['p50_ms']:.3f}, p95 {block['p95_ms']:.3f}, "
            f"p99 {block['p99_ms']:.3f})"
        )
    if report.fault_tolerance:
        lines.append(
            f"  faults                : {report.failures} chip failures, "
            f"{report.retries} retries, {report.timeouts} timeouts, "
            f"{report.shed} shed, {report.lost} lost"
        )
        lines.append(
            f"  availability          : {report.availability:.2%} "
            f"({report.lost_work_ms:.3f} ms lost work, "
            f"{report.degraded_dispatches} degraded dispatches)"
        )
    control = report.control
    if control:
        lines.append(
            f"  control plane         : {int(control.get('ticks', 0))} ticks "
            f"every {control.get('interval_us', 0.0):g} us; "
            f"{int(control.get('detections', 0))} detections "
            f"({int(control.get('true_detections', 0))} true, "
            f"{int(control.get('false_detections', 0))} false), "
            f"{int(control.get('quarantines', 0))} quarantines, "
            f"{int(control.get('readmissions', 0))} re-admissions"
        )
        if control.get("hedges"):
            lines.append(
                f"  hedging               : {int(control['hedges'])} hedges "
                f"({int(control.get('hedges_won', 0))} won, "
                f"{int(control.get('hedges_wasted', 0))} wasted, "
                f"{int(control.get('hedges_cancelled', 0))} originals cancelled)"
            )
        if control.get("scale_ups") or control.get("scale_downs"):
            lines.append(
                f"  autoscale             : {int(control.get('scale_ups', 0))} up, "
                f"{int(control.get('scale_downs', 0))} down "
                f"({int(control.get('base_chips', 0))} -> "
                f"{int(control.get('final_chips', 0))} chips)"
            )
        if control.get("replacements"):
            lines.append(
                f"  plan re-placement     : {int(control['replacements'])} rounds, "
                f"{control.get('replacement_ms', 0.0):.3f} ms weight replacement"
            )
    if report.per_chip:
        lines.append("  per-chip utilisation:")
        columns = ["chip", "batches", "requests", "busy_ms", "utilisation", "energy_mj"]
        if report.switch_cost:
            columns += ["plan_switches", "switch_ms"]
        if report.fault_tolerance:
            columns += ["failures", "downtime_ms", "lost_requests"]
        table = format_table(report.per_chip, columns=columns)
        lines.extend("    " + row for row in table.splitlines())
    cache = report.plan_cache
    if cache:
        lines.append(
            f"  plan cache            : {int(cache.get('hits', 0))} hits, "
            f"{int(cache.get('misses', 0))} misses "
            f"({cache.get('hit_rate', 0.0):.1%} hit rate), "
            f"{int(cache.get('warmup_compiles', 0))} warmed, "
            f"{int(cache.get('evictions', 0))} evicted, "
            f"{int(cache.get('size', 0))}/{int(cache.get('capacity', 0))} resident"
        )
    telemetry = report.telemetry
    if telemetry:
        config = telemetry.get("config", {})
        parts = []
        if config.get("timeline_interval_us"):
            parts.append(
                f"{len(report.timeline)} windows every "
                f"{config['timeline_interval_us']:g} us")
        if config.get("trace_every"):
            parts.append(f"tracing every {int(config['trace_every'])}th request")
        if config.get("streaming_percentiles"):
            parts.append("streaming percentiles (P^2 sketch)")
        lines.append("  telemetry             : " + (", ".join(parts) or "on"))
    return "\n".join(lines)


#: timeline columns always rendered, in order
_TIMELINE_COLUMNS = [
    "window", "t_ms", "arrivals", "completed", "throughput_rps",
    "p50_ms", "p95_ms", "p99_ms", "queue_depth", "utilisation", "attainment",
]
#: event columns rendered only when some window has a nonzero count
_TIMELINE_EVENT_COLUMNS = [
    "failures", "recoveries", "shed", "timeouts", "lost", "retries",
    "quarantines", "readmissions", "hedges", "scale_ups", "scale_downs",
    "replacements",
]


def render_timeline(timeline: Sequence[Dict[str, object]],
                    max_rows: int = 0) -> str:
    """Render a serving report's metrics timeline as an aligned table.

    One row per window (headline metrics first); fault/control event
    columns appear only when some window actually saw such an event, so a
    quiet run prints a compact table.  Printed by ``repro serve`` under
    ``--timeline-us``.

    ``max_rows`` caps the table for long runs (a fine-grained timeline
    can have thousands of windows): when the timeline is longer, the
    middle is elided with a marker row and the first/last windows are
    kept — the head shows ramp-up, the tail shows the drain.  0 (the
    default) renders everything.
    """
    if not timeline:
        return "(empty timeline)"
    columns = list(_TIMELINE_COLUMNS)
    columns += [col for col in _TIMELINE_EVENT_COLUMNS
                if any(row.get(col) for row in timeline)]
    rows = list(timeline)
    elided = 0
    if max_rows > 0 and len(rows) > max_rows:
        # keep at least one head and one tail row whatever the cap
        keep = max(2, max_rows)
        head = (keep + 1) // 2
        tail = keep - head
        elided = len(rows) - keep
        rows = rows[:head] + rows[len(rows) - tail:]
        table_lines = format_table(rows, columns=columns).splitlines()
        # line 0 is the header, line 1 the separator; the marker replaces
        # the seam between the kept head and tail body rows
        marker = f"... {elided} windows elided ..."
        table_lines.insert(2 + head, marker)
        return "\n".join(table_lines)
    return format_table(rows, columns=columns)
