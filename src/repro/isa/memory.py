"""Core-local memory allocator used during instruction scheduling.

Each PIM core has a small local data memory (64 kB in Table I) that holds
input activations, partial sums and outputs while a partition executes.  The
scheduler uses this allocator to reserve space for every buffer it touches;
the peak usage per core tells us whether the schedule fits, and by how much
it overflows (overflow would force extra DRAM spills on real hardware, which
the simulator charges as additional global-memory traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class AllocationError(ValueError):
    """Raised when an allocation request is malformed (not when memory is full)."""


@dataclass
class _Block:
    offset: int
    size: int
    tag: str


class LocalMemoryAllocator:
    """First-fit allocator with peak tracking for one core's local memory.

    Overflowing the physical capacity does not raise: the allocator keeps
    allocating past the end and records the overshoot, because the scheduler
    wants to *measure* pressure rather than fail.  ``peak_usage`` and
    ``overflow_bytes`` summarise the result.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise AllocationError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._blocks: Dict[int, _Block] = {}
        self._next_handle = 0
        self.peak_usage = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(block.size for block in self._blocks.values())

    @property
    def overflow_bytes(self) -> int:
        """How far the peak usage exceeded the physical capacity."""
        return max(0, self.peak_usage - self.capacity_bytes)

    @property
    def fits(self) -> bool:
        """Whether the schedule's peak footprint fit in local memory."""
        return self.peak_usage <= self.capacity_bytes

    # ------------------------------------------------------------------
    def _find_offset(self, size: int) -> int:
        """First-fit search over the gaps between live blocks."""
        blocks = sorted(self._blocks.values(), key=lambda b: b.offset)
        cursor = 0
        for block in blocks:
            if block.offset - cursor >= size:
                return cursor
            cursor = max(cursor, block.offset + block.size)
        return cursor

    def allocate(self, size: int, tag: str = "") -> int:
        """Allocate ``size`` bytes; returns an opaque handle."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        offset = self._find_offset(size)
        handle = self._next_handle
        self._next_handle += 1
        self._blocks[handle] = _Block(offset=offset, size=size, tag=tag)
        self.peak_usage = max(self.peak_usage, offset + size)
        return handle

    def free(self, handle: int) -> None:
        """Release a previously allocated block."""
        if handle not in self._blocks:
            raise AllocationError(f"unknown allocation handle {handle}")
        del self._blocks[handle]

    def reset(self) -> None:
        """Free everything but keep the peak statistics."""
        self._blocks.clear()

    def live_tags(self) -> List[str]:
        """Tags of currently live blocks (debugging aid)."""
        return [block.tag for block in sorted(self._blocks.values(), key=lambda b: b.offset)]
