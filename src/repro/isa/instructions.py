"""Instruction set of the crossbar PIM accelerator.

The opcodes mirror the instruction classes shown in Fig. 3 of the paper:
LOAD WEIGHT / WRITE WEIGHT for the weight-replacement phase, LOAD DATA /
STORE DATA for global-memory traffic, MVMUL for the matrix unit, VFU_OP for
vector work and SEND / RECV for inter-core transfers over the bus.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class Opcode(enum.Enum):
    """Instruction opcodes."""

    LOAD_WEIGHT = "load_weight"
    WRITE_WEIGHT = "write_weight"
    LOAD_DATA = "load_data"
    STORE_DATA = "store_data"
    MVMUL = "mvmul"
    VFU_OP = "vfu_op"
    SEND = "send"
    RECV = "recv"
    SYNC = "sync"


#: Opcodes that access global memory (DRAM).
GLOBAL_MEMORY_OPCODES = frozenset({Opcode.LOAD_WEIGHT, Opcode.LOAD_DATA, Opcode.STORE_DATA})


@dataclass(frozen=True)
class Instruction:
    """One instruction executed by a PIM core.

    ``size_bytes`` carries the data volume for memory/communication
    instructions; ``count`` lets one MVMUL/VFU_OP instruction stand for a
    run of identical operations (the hardware's repeat field), which keeps
    instruction streams compact without losing operation counts.
    """

    opcode: Opcode
    core_id: int
    layer: str = ""
    size_bytes: int = 0
    count: int = 1
    #: peer core for SEND/RECV
    peer_core: Optional[int] = None
    #: crossbar index within the core for WRITE_WEIGHT / MVMUL
    crossbar: Optional[int] = None
    #: free-form tag (e.g. "sample3", "entry:conv2")
    tag: str = ""

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("instruction count must be positive")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if self.opcode in (Opcode.SEND, Opcode.RECV) and self.peer_core is None:
            raise ValueError(f"{self.opcode.value} requires a peer core")

    @property
    def is_memory_access(self) -> bool:
        """True for instructions that touch global memory."""
        return self.opcode in GLOBAL_MEMORY_OPCODES

    def __str__(self) -> str:
        parts = [self.opcode.value.upper(), f"core={self.core_id}"]
        if self.layer:
            parts.append(f"layer={self.layer}")
        if self.size_bytes:
            parts.append(f"bytes={self.size_bytes}")
        if self.count > 1:
            parts.append(f"x{self.count}")
        if self.peer_core is not None:
            parts.append(f"peer={self.peer_core}")
        return " ".join(parts)


@dataclass
class CoreProgram:
    """Ordered instruction stream for one core."""

    core_id: int
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> None:
        """Append an instruction, checking it targets this core."""
        if instruction.core_id != self.core_id:
            raise ValueError(
                f"instruction for core {instruction.core_id} appended to program of core {self.core_id}"
            )
        self.instructions.append(instruction)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def count_by_opcode(self) -> Dict[Opcode, int]:
        """Number of instructions per opcode (repeat counts expanded)."""
        counts: Dict[Opcode, int] = {}
        for instruction in self.instructions:
            counts[instruction.opcode] = counts.get(instruction.opcode, 0) + instruction.count
        return counts

    def bytes_by_opcode(self) -> Dict[Opcode, int]:
        """Data volume per opcode."""
        volumes: Dict[Opcode, int] = {}
        for instruction in self.instructions:
            volumes[instruction.opcode] = (
                volumes.get(instruction.opcode, 0) + instruction.size_bytes * instruction.count
            )
        return volumes
