"""Instruction set and scheduler for the PIM accelerator.

The scheduler is COMPASS's third component (Fig. 3): once the optimal
partition group is found, it generates the per-core instruction streams that
execute each partition — weight loads and writes for the replacement phase,
activation loads/stores at partition boundaries, MVM and vector operations,
and inter-core SEND/RECV for pipelined execution.
"""

from repro.isa.instructions import Opcode, Instruction, CoreProgram
from repro.isa.memory import LocalMemoryAllocator, AllocationError
from repro.isa.scheduler import InstructionScheduler, PartitionSchedule, ModelSchedule

__all__ = [
    "Opcode",
    "Instruction",
    "CoreProgram",
    "LocalMemoryAllocator",
    "AllocationError",
    "InstructionScheduler",
    "PartitionSchedule",
    "ModelSchedule",
]
