"""Span-table evaluation engine: memoised partition-span estimation.

For a model decomposed into L partition units there are only O(L²)
contiguous spans, and the COMPASS genetic algorithm re-visits the same spans
thousands of times — across generations, across chromosomes, across batch
sizes and across the baseline partitioners.  The :class:`SpanTable` exploits
this twice:

* each span's batch-independent :class:`~repro.onchip.estimator.SpanProfile`
  (partition plan, global-memory I/O, per-sample pipeline stages and energy
  terms) is computed exactly once per (model, chip, DRAM config);
* each concrete (span, batch) :class:`~repro.onchip.estimator.PartitionEstimate`
  is O(1) arithmetic over the profile and is itself memoised.

Both layers keep hit/miss statistics so benchmarks can assert the engine is
actually engaged.  Tables are shared through :func:`span_table_for`, which
attaches them to the decomposition; every consumer — the fitness evaluator,
the execution simulator, the compiler and the baselines — therefore reads
from the same cache.

The table is filled lazily by default; :meth:`SpanTable.precompute` eagerly
profiles every valid span (the O(L²) triangle restricted by the validity
map) for workloads that prefer a warm table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.decomposition import ModelDecomposition
from repro.core.partition import Partition, PartitionGroup
from repro.hardware.dram import DRAMConfig, LPDDR3_8GB
from repro.onchip.estimator import PartitionEstimate, PartitionEstimator, SpanProfile
from repro.onchip.plan import PartitionPlan


@dataclass
class SpanTableStats:
    """Hit/miss counters of one span table (a snapshot, see ``SpanTable.stats``)."""

    #: spans whose batch-independent profile was computed (unique spans seen)
    profiles_computed: int = 0
    #: profile requests served from the table
    profile_hits: int = 0
    #: (span, batch) estimates finalised from a profile
    estimates_computed: int = 0
    #: (span, batch) estimate requests served from the table
    estimate_hits: int = 0
    #: (span, batch) scalar latencies derived from a profile
    latencies_computed: int = 0
    #: (span, batch) scalar latency requests served from the table *or* the
    #: dense span matrix (matrix-served gathers are folded in so the latency
    #: counters never silently read zero when the dense path is engaged;
    #: ``matrix_hits`` is the matrix-served sub-count)
    latency_hits: int = 0
    #: spans materialised into the dense span matrix (:mod:`repro.perf.spanmatrix`)
    matrix_fills: int = 0
    #: span lookups served by dense-matrix gathers (sub-count of latency_hits)
    matrix_hits: int = 0

    # ------------------------------------------------------------------
    @property
    def profile_requests(self) -> int:
        """Total profile lookups (hits + misses)."""
        return self.profiles_computed + self.profile_hits

    @property
    def estimate_requests(self) -> int:
        """Total estimate lookups (hits + misses)."""
        return self.estimates_computed + self.estimate_hits

    @property
    def latency_requests(self) -> int:
        """Total scalar-latency lookups (hits + misses)."""
        return self.latencies_computed + self.latency_hits

    @property
    def profile_hit_rate(self) -> float:
        """Fraction of profile lookups served from the table."""
        requests = self.profile_requests
        return self.profile_hits / requests if requests else 0.0

    @property
    def estimate_hit_rate(self) -> float:
        """Fraction of estimate lookups served from the table."""
        requests = self.estimate_requests
        return self.estimate_hits / requests if requests else 0.0

    @property
    def latency_hit_rate(self) -> float:
        """Fraction of scalar-latency lookups served from the table."""
        requests = self.latency_requests
        return self.latency_hits / requests if requests else 0.0

    @property
    def matrix_requests(self) -> int:
        """Total dense-matrix span lookups (fills + gather-served)."""
        return self.matrix_fills + self.matrix_hits

    @property
    def matrix_hit_rate(self) -> float:
        """Fraction of dense-matrix lookups served without a fill."""
        requests = self.matrix_requests
        return self.matrix_hits / requests if requests else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reports and benchmark assertions."""
        return {
            "profiles_computed": self.profiles_computed,
            "profile_hits": self.profile_hits,
            "profile_hit_rate": self.profile_hit_rate,
            "estimates_computed": self.estimates_computed,
            "estimate_hits": self.estimate_hits,
            "estimate_hit_rate": self.estimate_hit_rate,
            "latencies_computed": self.latencies_computed,
            "latency_hits": self.latency_hits,
            "latency_hit_rate": self.latency_hit_rate,
            "matrix_fills": self.matrix_fills,
            "matrix_hits": self.matrix_hits,
            "matrix_hit_rate": self.matrix_hit_rate,
        }


def stats_delta(current: Dict[str, float], baseline: Dict[str, float]) -> Dict[str, float]:
    """One consumer's share of a shared table's (cumulative) statistics.

    The span table is shared per decomposition, so its counters accumulate
    across every consumer in the process; a single run's contribution is the
    difference between a snapshot taken before the run (``baseline``) and the
    counters afterwards (``current``).  Rates are recomputed over the delta —
    differencing the cumulative rates would be meaningless.  Used by the GA
    and every :mod:`repro.search` engine to report per-run span statistics.
    """
    if not current:
        return {}
    delta = {
        key: value - baseline.get(key, 0)
        for key, value in current.items()
        if not key.endswith("_rate")
    }
    for kind, computed_key in (
        ("profile", "profiles_computed"),
        ("estimate", "estimates_computed"),
        ("latency", "latencies_computed"),
        ("matrix", "matrix_fills"),
    ):
        computed = delta.get(computed_key, 0)
        hits = delta.get(f"{kind}_hits", 0)
        requests = computed + hits
        delta[f"{kind}_hit_rate"] = hits / requests if requests else 0.0
    return delta


class SpanTable:
    """Memoised span → (profile, estimate) table for one decomposition.

    Produces values bit-identical to calling
    :meth:`~repro.onchip.estimator.PartitionEstimator.estimate` directly —
    the table only removes repeated work, never changes arithmetic.
    """

    def __init__(
        self,
        decomposition: ModelDecomposition,
        dram_config: DRAMConfig = LPDDR3_8GB,
    ) -> None:
        self.decomposition = decomposition
        self.dram_config = dram_config
        self.estimator = PartitionEstimator(decomposition.chip, dram_config, batch_size=1)
        self._profiles: Dict[Tuple[int, int], SpanProfile] = {}
        self._estimates: Dict[Tuple[int, int, int], PartitionEstimate] = {}
        #: slim latency records: span -> (weight_replace_ns, fill_ns, bottleneck_ns).
        #: The GA's latency-mode fitness only needs these three floats per
        #: span; keeping them instead of full profiles makes the table's
        #: retained object graph tiny (GC pressure matters at 10⁴+ spans).
        self._slim: Dict[Tuple[int, int], Tuple[float, float, float]] = {}
        # hit/miss counters (plain ints: incremented on the hottest paths);
        # the matrix counters are bumped by the dense SpanMatrix layer so a
        # matrix-served GA run never reports zero span-table activity
        self._profile_hits = 0
        self._profile_misses = 0
        self._estimate_hits = 0
        self._estimate_misses = 0
        self._latency_hits = 0
        self._latency_misses = 0
        self._matrix_fills = 0
        self._matrix_hits = 0

    # ------------------------------------------------------------------
    @property
    def stats(self) -> SpanTableStats:
        """Snapshot of the table's hit/miss counters."""
        return SpanTableStats(
            profiles_computed=self._profile_misses,
            profile_hits=self._profile_hits,
            estimates_computed=self._estimate_misses,
            estimate_hits=self._estimate_hits,
            latencies_computed=self._latency_misses,
            latency_hits=self._latency_hits,
            matrix_fills=self._matrix_fills,
            matrix_hits=self._matrix_hits,
        )

    def __len__(self) -> int:
        return len(self._slim)

    @property
    def num_spans(self) -> int:
        """Number of distinct spans profiled so far (slim or full)."""
        return len(self._slim)

    @property
    def num_estimates(self) -> int:
        """Number of distinct (span, batch) estimates materialised so far."""
        return len(self._estimates)

    # ------------------------------------------------------------------
    def _compute_profile(self, start: int, end: int) -> SpanProfile:
        partition = Partition(self.decomposition, start, end)
        return self.estimator.profile(partition)

    def profile(self, start: int, end: int) -> SpanProfile:
        """Batch-independent profile of the span ``[start, end)`` (cached)."""
        key = (start, end)
        profile = self._profiles.get(key)
        if profile is None:
            profile = self._compute_profile(start, end)
            self._profiles[key] = profile
            self._slim[key] = (profile.weight_replace_ns, profile.fill_ns,
                               profile.bottleneck_ns)
            self._profile_misses += 1
        else:
            self._profile_hits += 1
        return profile

    def plan(self, start: int, end: int) -> PartitionPlan:
        """On-chip plan of the span ``[start, end)`` (cached via the profile)."""
        return self.profile(start, end).plan

    def estimate(self, start: int, end: int, batch_size: int) -> PartitionEstimate:
        """Latency/energy estimate of ``[start, end)`` for a batch (cached)."""
        key = (start, end, batch_size)
        estimate = self._estimates.get(key)
        if estimate is None:
            profile = self.profile(start, end)
            estimate = self.estimator.estimate_from_profile(profile, batch_size)
            self._estimates[key] = estimate
            self._estimate_misses += 1
        else:
            self._estimate_hits += 1
        return estimate

    def slim_record(self, start: int, end: int) -> Tuple[float, float, float]:
        """Slim latency record ``(weight_replace_ns, fill_ns, bottleneck_ns)``.

        Computed via the estimator's latency-only profile replay
        (:meth:`~repro.onchip.estimator.PartitionEstimator.slim_profile`) on
        a miss — no plan, I/O analysis or energy breakdown is retained, so
        spans the GA merely explores stay three floats.  The full profile is
        built (and then cached) iff an estimate or plan is requested for the
        span later.  This is also the fill primitive of the dense
        :class:`~repro.perf.spanmatrix.SpanMatrix`.
        """
        slim = self._slim.get((start, end))
        if slim is None:
            slim = self.estimator.slim_profile(
                Partition(self.decomposition, start, end)
            )
            self._slim[(start, end)] = slim
            self._latency_misses += 1
        else:
            self._latency_hits += 1
        return slim

    def latency_ns(self, start: int, end: int, batch_size: int) -> float:
        """Total latency of ``[start, end)`` for a batch, as a scalar.

        Bit-identical to ``estimate(...).latency_ns`` but needs only the
        span's slim latency record — three floats — instead of a full
        profile or estimate object.  This is the value the latency-mode
        fitness oracle consumes for every chromosome gene.
        """
        weight_replace_ns, fill_ns, bottleneck_ns = self.slim_record(start, end)
        # same association as PhaseLatency.total_ns = replace + pipeline
        return weight_replace_ns + (fill_ns + (batch_size - 1) * bottleneck_ns)

    def estimate_group(self, group: PartitionGroup,
                       batch_size: int) -> List[PartitionEstimate]:
        """Estimates of every partition of a group, in order."""
        return [self.estimate(s, e, batch_size) for s, e in group.spans()]

    # ------------------------------------------------------------------
    def precompute(self, validity=None,
                   batch_sizes: Iterable[int] = ()) -> int:
        """Eagerly profile every valid span (and optionally warm estimates).

        ``validity`` is a :class:`~repro.core.validity.ValidityMap`; one is
        built if not supplied.  Returns the number of spans profiled.
        Lazy filling is the default everywhere — this exists for workloads
        that prefer paying the O(L²) cost up front (e.g. before forking
        sweep workers).
        """
        if validity is None:
            from repro.core.validity import ValidityMap

            validity = ValidityMap(self.decomposition)
        batches = list(batch_sizes)
        count = 0
        for start in range(self.decomposition.num_units):
            for end in range(start + 1, validity.max_end(start) + 1):
                self.profile(start, end)
                for batch in batches:
                    self.estimate(start, end, batch)
                count += 1
        return count


def span_table_for(
    decomposition: ModelDecomposition,
    dram_config: DRAMConfig = LPDDR3_8GB,
) -> SpanTable:
    """The shared :class:`SpanTable` of a (decomposition, DRAM config) pair.

    The table is attached to the decomposition object, so its lifetime —
    and the lifetime of everything it caches — is exactly the lifetime of
    the decomposition.  All consumers holding the same decomposition (GA
    fitness evaluator, baselines, simulator, compiler, sweep runner) share
    one table and therefore one set of span profiles.
    """
    tables: Dict[DRAMConfig, SpanTable] = decomposition.__dict__.setdefault(
        "_span_tables", {}
    )
    table = tables.get(dram_config)
    if table is None:
        table = SpanTable(decomposition, dram_config)
        tables[dram_config] = table
    return table
