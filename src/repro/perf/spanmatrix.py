"""Dense span-matrix engine: whole-population span scoring in array form.

The :class:`~repro.perf.spantable.SpanTable` removed *recomputation* from
partition-span estimation; what remains on the GA's hot path is per-span
Python — a dict lookup, a float expression and list bookkeeping for every
gene of every chromosome.  The :class:`SpanMatrix` removes the per-span
Python too: for a decomposition of L units every contiguous span ``[s, e)``
is one cell of an ``(L+1) × (L+1)`` float64 matrix, so scoring a whole
population is a fancy-indexed gather over flat start/end index arrays
followed by elementwise math.

Three layers of matrices, all filled lazily and only for spans actually
requested:

* **slim latency components** — ``weight_replace_ns``, ``fill_ns`` and
  ``bottleneck_ns`` per span, filled from the shared span table's exact
  :meth:`~repro.perf.spantable.SpanTable.slim_record` (bit-identical to the
  scalar path by construction);
* **per-batch latency** — ``WR + (FILL + (B-1)·BN)`` materialised once per
  batch size and invalidated by a version counter when new spans fill in;
  the elementwise expression matches the scalar association exactly;
* **per-batch energy** (EDP mode) — the per-sample/per-batch-constant energy
  terms of each span's full profile plus a static-power coefficient, combined
  in the exact field order of ``EnergyBreakdown.total_pj``.

**Delta re-scoring** falls out of the representation: a mutation changes at
most a few cut points, so a child's spans are almost all already-filled
matrix cells — ``ensure_spans`` profiles only the set difference (the few
spans the mutation actually touched) and everything else is a pure gather.
The final per-group fitness *sums* deliberately stay sequential Python sums
over the gathered values: NumPy reductions use pairwise summation, which is
not bit-identical to the naive path's left-to-right ``sum``; the sums are
O(#partitions) and cheap, the per-span math is the hot part.

Fills and gathers are accounted on the shared table's counters
(``matrix_fills`` / ``matrix_hits``, with gathers folded into
``latency_hits``), so ``SpanTable.stats`` never silently reads zero when the
dense path is engaged.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import numpy.ma  # noqa: F401  (np.unique touches np.ma lazily; load at import,
#                  not inside the first timed population gather)

from repro.core.decomposition import ModelDecomposition
from repro.hardware.dram import DRAMConfig, LPDDR3_8GB
from repro.perf.spantable import SpanTable, span_table_for

#: per-span energy component matrices, in the exact summation order of
#: ``EnergyBreakdown.total_pj`` (static and dram-background are handled
#: separately because they scale with total latency, not batch size)
_PER_SAMPLE_PARTS = (
    "mvm_pj_per_sample",
    "data_load_pj_per_sample",
    "data_store_pj_per_sample",
    "vfu_pj_per_sample",
    "interconnect_pj_per_sample",
    "local_memory_pj_per_sample",
)
_CONSTANT_PARTS = ("weight_write_pj", "weight_load_pj")


class SpanMatrix:
    """Dense O(L²) span matrices over one decomposition's span table.

    Values are bit-identical to the scalar :class:`SpanTable` paths — the
    matrix only changes *where* span records live (dense float64 cells
    instead of dict entries) and lets consumers read thousands of spans per
    call with NumPy gathers.
    """

    def __init__(self, table: SpanTable) -> None:
        self.table = table
        self.decomposition: ModelDecomposition = table.decomposition
        n = self.decomposition.num_units
        self.num_units = n
        shape = (n + 1, n + 1)
        self._have_slim = np.zeros(shape, dtype=bool)
        self._weight_replace = np.zeros(shape)
        self._fill = np.zeros(shape)
        self._bottleneck = np.zeros(shape)
        self._slim_version = 0
        #: batch -> (slim version, dense latency matrix)
        self._latency_cache: Dict[int, Tuple[int, np.ndarray]] = {}
        # energy matrices (EDP mode), allocated on first use
        self._have_energy: Optional[np.ndarray] = None
        self._energy_parts: Optional[Dict[str, np.ndarray]] = None
        self._static_coeff: Optional[np.ndarray] = None
        self._energy_version = 0
        #: batch -> (energy version, slim version, dense total-energy matrix)
        self._energy_cache: Dict[int, Tuple[int, int, np.ndarray]] = {}

    # ------------------------------------------------------------------
    @property
    def num_spans(self) -> int:
        """Number of spans materialised in the dense latency matrices."""
        return int(self._have_slim.sum())

    # ------------------------------------------------------------------
    # slim (latency) layer
    # ------------------------------------------------------------------
    def ensure_spans(self, starts: np.ndarray, ends: np.ndarray) -> None:
        """Materialise every requested span's slim record in the matrices.

        This is the delta step: only spans missing from the matrix — for GA
        children, the few spans their mutation introduced — are profiled;
        every other lookup is counted as a matrix-served hit.
        """
        table = self.table
        have = self._have_slim
        missing = ~have[starts, ends]
        fills = 0
        if missing.any():
            stride = self.num_units + 1
            packed = starts[missing] * stride + ends[missing]
            codes = np.unique(packed)
            slim_record = table.slim_record
            weight_replace = self._weight_replace
            fill = self._fill
            bottleneck = self._bottleneck
            for code in codes.tolist():
                s, e = divmod(code, stride)
                weight_replace[s, e], fill[s, e], bottleneck[s, e] = slim_record(s, e)
                have[s, e] = True
            fills = len(codes)
            self._slim_version += 1
            table._matrix_fills += fills
        served = int(starts.size) - fills
        table._matrix_hits += served
        table._latency_hits += served

    def latency_matrix(self, batch_size: int) -> np.ndarray:
        """Dense total-latency matrix for one batch size (version-cached).

        Cell ``[s, e]`` equals ``SpanTable.latency_ns(s, e, batch_size)`` for
        every filled span (same elementwise association); unfilled cells are
        meaningless and must not be gathered.
        """
        entry = self._latency_cache.get(batch_size)
        if entry is not None and entry[0] == self._slim_version:
            return entry[1]
        matrix = self._weight_replace + (
            self._fill + (batch_size - 1) * self._bottleneck
        )
        self._latency_cache[batch_size] = (self._slim_version, matrix)
        return matrix

    def gather_latency(self, starts: np.ndarray, ends: np.ndarray,
                       batch_size: int) -> np.ndarray:
        """Latencies of many spans at once: fill the deltas, then gather."""
        self.ensure_spans(starts, ends)
        return self.latency_matrix(batch_size)[starts, ends]

    def gather_components(
        self, starts: np.ndarray, ends: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(weight_replace, fill, bottleneck) ns of many spans at once.

        The slim components behind the per-batch latency curve
        ``WR + (FILL + (B-1)*BN)`` — the serving layer's plan cache stores
        their per-group totals so ``CompiledPlan.latency_at`` can evaluate a
        group at any batch size without touching the matrices again.
        """
        self.ensure_spans(starts, ends)
        return (
            self._weight_replace[starts, ends],
            self._fill[starts, ends],
            self._bottleneck[starts, ends],
        )

    # ------------------------------------------------------------------
    # energy (EDP) layer
    # ------------------------------------------------------------------
    def _allocate_energy(self) -> None:
        shape = self._have_slim.shape
        self._have_energy = np.zeros(shape, dtype=bool)
        self._energy_parts = {
            name: np.zeros(shape) for name in _PER_SAMPLE_PARTS + _CONSTANT_PARTS
        }
        self._static_coeff = np.zeros(shape)

    def ensure_energy(self, starts: np.ndarray, ends: np.ndarray) -> None:
        """Materialise the energy component matrices for the given spans.

        Energy fills need the span's *full* profile (cached in the shared
        table, exactly as the scalar EDP path caches it); the slim latency
        record is written as a side effect, so a follow-up
        :meth:`ensure_spans` never re-profiles these spans.
        """
        if self._have_energy is None:
            self._allocate_energy()
        have = self._have_energy
        missing = ~have[starts, ends]
        if not missing.any():
            return
        table = self.table
        chip = self.decomposition.chip
        num_cores = chip.num_cores
        static_power_mw = chip.core.static_power_mw
        stride = self.num_units + 1
        packed = starts[missing] * stride + ends[missing]
        parts = self._energy_parts
        static_coeff = self._static_coeff
        for code in np.unique(packed).tolist():
            s, e = divmod(code, stride)
            profile = table.profile(s, e)
            for name in _PER_SAMPLE_PARTS + _CONSTANT_PARTS:
                parts[name][s, e] = getattr(profile, name)
            # same first product as PowerModel.static_energy_pj
            active_cores = max(0, min(profile.cores_used, num_cores))
            static_coeff[s, e] = static_power_mw * active_cores
            have[s, e] = True
        self._energy_version += 1

    def energy_matrix(self, batch_size: int) -> np.ndarray:
        """Dense total-energy matrix for one batch size (version-cached).

        Replicates ``PartitionEstimator.estimate_from_profile`` +
        ``EnergyBreakdown.total_pj`` term for term, in the exact field order
        and association, so cell ``[s, e]`` is bit-identical to
        ``estimate(s, e, batch_size).energy_pj`` for every filled span.
        """
        entry = self._energy_cache.get(batch_size)
        if entry is not None and entry[0] == self._energy_version and entry[1] == self._slim_version:
            return entry[2]
        parts = self._energy_parts
        batch = batch_size
        total_ns = self.latency_matrix(batch)
        dram_background_mw = self.table.estimator.dram.config.background_power_mw
        # EnergyBreakdown.total_pj sums its fields left to right:
        # mvm, weight_write, weight_load, data_load, data_store, vfu,
        # interconnect, local_memory, static, dram_background
        matrix = (
            parts["mvm_pj_per_sample"] * batch
            + parts["weight_write_pj"]
            + parts["weight_load_pj"]
            + batch * parts["data_load_pj_per_sample"]
            + batch * parts["data_store_pj_per_sample"]
            + parts["vfu_pj_per_sample"] * batch
            + parts["interconnect_pj_per_sample"] * batch
            + parts["local_memory_pj_per_sample"] * batch
            + self._static_coeff * np.maximum(total_ns, 0.0)
            + dram_background_mw * total_ns
        )
        self._energy_cache[batch] = (self._energy_version, self._slim_version, matrix)
        return matrix

    def gather_energy_latency(
        self, starts: np.ndarray, ends: np.ndarray, batch_size: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(energy_pj, latency_ns) of many spans at once, for EDP fitness."""
        self.ensure_energy(starts, ends)
        self.ensure_spans(starts, ends)
        latency = self.latency_matrix(batch_size)[starts, ends]
        energy = self.energy_matrix(batch_size)[starts, ends]
        return energy, latency


def span_matrix_for(
    decomposition: ModelDecomposition,
    dram_config: DRAMConfig = LPDDR3_8GB,
) -> SpanMatrix:
    """The shared :class:`SpanMatrix` of a (decomposition, DRAM config) pair.

    Wraps the same shared table as :func:`~repro.perf.spantable.span_table_for`
    and is attached to the decomposition alongside it, so matrix fills, slim
    records and full profiles all amortise against every consumer of the
    decomposition.
    """
    matrices: Dict[DRAMConfig, SpanMatrix] = decomposition.__dict__.setdefault(
        "_span_matrices", {}
    )
    matrix = matrices.get(dram_config)
    if matrix is None:
        matrix = SpanMatrix(span_table_for(decomposition, dram_config))
        matrices[dram_config] = matrix
    return matrix
