"""Performance layer: the vectorized span-table evaluation engine.

This package holds the cross-cutting performance machinery described in the
"Performance architecture" section of ROADMAP.md:

* :class:`~repro.perf.spantable.SpanTable` — memoised per-span partition
  profiles and (span, batch) estimates with hit/miss statistics;
* :func:`~repro.perf.spantable.span_table_for` — the per-decomposition
  registry through which the fitness evaluator, the baselines, the
  execution simulator and the compiler share one table.

The engine is an exact accelerator: every value it returns is bit-identical
to the naive per-call estimation path (enforced by
``tests/test_perf_equivalence.py``).
"""

from repro.perf.spantable import SpanTable, SpanTableStats, span_table_for

__all__ = ["SpanTable", "SpanTableStats", "span_table_for"]
