"""Performance layer: the span-table + dense span-matrix evaluation engine.

This package holds the cross-cutting performance machinery described in the
"Performance architecture" section of ROADMAP.md:

* :class:`~repro.perf.spantable.SpanTable` — memoised per-span partition
  profiles and (span, batch) estimates with hit/miss statistics;
* :class:`~repro.perf.spanmatrix.SpanMatrix` — dense ``(L+1)×(L+1)``
  float64 span matrices over the table, letting the GA score whole
  populations with fancy-indexed gathers instead of per-span Python;
* :func:`~repro.perf.spantable.span_table_for` /
  :func:`~repro.perf.spanmatrix.span_matrix_for` — the per-decomposition
  registries through which the fitness evaluator, the baselines, the
  execution simulator and the compiler share one cache hierarchy.

The engine is an exact accelerator: every value it returns is bit-identical
to the naive per-call estimation path (enforced by
``tests/test_perf_equivalence.py``).
"""

from repro.perf.spanmatrix import SpanMatrix, span_matrix_for
from repro.perf.spantable import SpanTable, SpanTableStats, span_table_for

__all__ = [
    "SpanMatrix",
    "SpanTable",
    "SpanTableStats",
    "span_matrix_for",
    "span_table_for",
]
