"""COMPASS reproduction: a compiler framework for resource-constrained
crossbar-array based in-memory deep learning accelerators.

Public API highlights
---------------------

* :func:`repro.models.build_model` — build a benchmark DNN graph by name.
* :data:`repro.hardware.CHIP_S` / ``CHIP_M`` / ``CHIP_L`` — the Table I chips.
* :func:`repro.core.compile_model` — one-call compilation of a model for a
  chip with the COMPASS GA or a baseline partitioning scheme.
* :class:`repro.evaluation.ExperimentSuite` — reproduce the paper's tables
  and figures.
"""

from repro.core import (
    CompassCompiler,
    CompilationResult,
    CompilerOptions,
    compile_model,
)
from repro.hardware import CHIP_L, CHIP_M, CHIP_S, get_chip_config
from repro.models import build_model, list_models

__version__ = "1.0.0"

__all__ = [
    "CompassCompiler",
    "CompilationResult",
    "CompilerOptions",
    "compile_model",
    "CHIP_S",
    "CHIP_M",
    "CHIP_L",
    "get_chip_config",
    "build_model",
    "list_models",
    "__version__",
]
