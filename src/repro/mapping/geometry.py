"""Weight-matrix geometry: how a layer's weights tile onto crossbars.

Conv/Linear weights are viewed as im2col matrices of shape
``(rows = Cin·K·K or in_features, cols = Cout or out_features)``.  A crossbar
stores a ``weight_rows × weight_cols`` tile (256 × 64 at the default 4-bit
precision), so a layer needs ``ceil(rows/256) × ceil(cols/64)`` crossbars per
copy.  Grouped convolutions are block-diagonal; their per-group blocks are
packed into crossbars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graph.graph import GraphNode
from repro.graph.layers import Layer, LayerKind
from repro.hardware.crossbar import CrossbarConfig


@dataclass(frozen=True, slots=True)
class WeightMatrixGeometry:
    """Crossbar-tiling geometry for one Conv/Linear layer."""

    layer_name: str
    rows: int
    cols: int
    groups: int
    #: crossbars needed for ONE copy of the weights
    crossbars_per_copy: int
    #: weight parameters in one copy (excluding bias, which lives in VFU regs)
    weights_per_copy: int
    #: MVM operations per inference per copy (sliding-window count)
    windows: int
    #: bytes of one copy of the weights at the crossbar's weight precision
    weight_bytes: int
    #: number of row-tiles the input vector is split into (partial sums to add)
    row_tiles: int
    #: number of column-tiles the output vector is split into
    col_tiles: int

    @property
    def total_mvms(self) -> int:
        """MVM invocations per inference counting every crossbar tile."""
        return self.windows * self.crossbars_per_copy

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations per inference."""
        return self.windows * self.rows * self.cols * self.groups


def _tiles_for_dense(rows: int, cols: int, xbar: CrossbarConfig) -> int:
    return math.ceil(rows / xbar.weight_rows) * math.ceil(cols / xbar.weight_cols)


def _tiles_for_grouped(rows_per_group: int, cols_per_group: int, groups: int,
                       xbar: CrossbarConfig) -> int:
    """Pack block-diagonal group blocks into crossbars.

    Each group's block is ``rows_per_group × cols_per_group``.  Blocks from
    different groups can share a crossbar as long as both dimensions fit
    (they occupy disjoint row and column ranges, diagonal packing), which is
    how depthwise convolutions avoid wasting a whole crossbar per channel.
    """
    if rows_per_group > xbar.weight_rows or cols_per_group > xbar.weight_cols:
        # each group itself needs tiling; fall back to per-group dense tiling
        per_group = _tiles_for_dense(rows_per_group, cols_per_group, xbar)
        return per_group * groups
    groups_per_xbar_rows = xbar.weight_rows // rows_per_group
    groups_per_xbar_cols = xbar.weight_cols // cols_per_group
    groups_per_xbar = max(1, min(groups_per_xbar_rows, groups_per_xbar_cols))
    return math.ceil(groups / groups_per_xbar)


def layer_geometry(node: GraphNode, xbar: CrossbarConfig) -> WeightMatrixGeometry:
    """Compute the crossbar-tiling geometry of a Conv/Linear graph node."""
    layer = node.layer
    if not layer.is_crossbar_mapped:
        raise ValueError(f"layer {layer.name!r} ({layer.kind.value}) is not crossbar-mapped")
    assert node.output_shape is not None

    groups = layer.attrs.get("groups", 1) if layer.kind is LayerKind.CONV2D else 1
    rows = layer.matrix_rows()
    if layer.kind is LayerKind.CONV2D:
        cols = layer.attrs["out_channels"] // groups
    else:
        cols = layer.matrix_cols()

    if groups == 1:
        crossbars = _tiles_for_dense(rows, cols, xbar)
    else:
        crossbars = _tiles_for_grouped(rows, cols, groups, xbar)

    weights = rows * cols * groups
    weight_bytes = (weights * xbar.weight_bits + 7) // 8
    windows = layer.num_windows(node.output_shape)
    return WeightMatrixGeometry(
        layer_name=layer.name,
        rows=rows,
        cols=cols,
        groups=groups,
        crossbars_per_copy=crossbars,
        weights_per_copy=weights,
        windows=windows,
        weight_bytes=weight_bytes,
        row_tiles=math.ceil(rows / xbar.weight_rows),
        col_tiles=math.ceil(cols * groups / xbar.weight_cols),
    )
