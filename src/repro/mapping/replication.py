"""Weight-replication allocation within a partition.

Inside a partition the layers execute as a pipeline over the MVM window
stream, so the slowest layer (most sliding windows per replica) limits
throughput.  Replicating a layer's weights R times lets R windows be
processed in parallel, cutting its service time to ``ceil(windows / R)``
MVM slots.  The allocator spends the partition's leftover crossbar budget on
replicas of whichever layer is currently the bottleneck — the same
"replication balances pipelined layers" policy the paper inherits from
PipeLayer/PIMCOMP, here applied per partition (Sec. II-B).

Constraint 2 of Sec. III-B is honoured by construction: replication is
allocated per *layer*, so every partition unit originating from the same
kernel shares the replication count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.mapping.geometry import WeightMatrixGeometry


@dataclass
class ReplicationPlan:
    """Result of replication allocation for one partition."""

    #: replication factor per layer name (>= 1)
    factors: Dict[str, int] = field(default_factory=dict)
    #: crossbars consumed by each layer including replication
    crossbars_used: Dict[str, int] = field(default_factory=dict)
    #: total crossbars consumed by the partition
    total_crossbars: int = 0
    #: pipeline bottleneck: max over layers of ceil(windows / replication)
    bottleneck_slots: int = 0

    def factor(self, layer_name: str) -> int:
        """Replication factor of a layer (1 if the layer is not in the plan)."""
        return self.factors.get(layer_name, 1)


def _bottleneck(geometries: Sequence[WeightMatrixGeometry], factors: Mapping[str, int]) -> int:
    slots = 0
    for geom in geometries:
        slots = max(slots, math.ceil(geom.windows / factors[geom.layer_name]))
    return slots


def allocate_replication(
    geometries: Sequence[WeightMatrixGeometry],
    crossbar_budget: int,
    max_replication: int = 64,
) -> ReplicationPlan:
    """Allocate replication factors for the layers of one partition.

    Parameters
    ----------
    geometries:
        Geometry of every crossbar-mapped layer (or layer slice) in the
        partition.  Layers with zero windows (e.g. unused) are kept at one
        copy.
    crossbar_budget:
        Total crossbars available to the partition (normally the whole chip).
    max_replication:
        Upper bound on any single layer's replication factor; replicating a
        layer beyond its window count is never useful, so the effective bound
        is ``min(max_replication, windows)``.

    Raises
    ------
    ValueError
        If even a single copy of every layer does not fit in the budget
        (the partition is invalid).
    """
    if not geometries:
        return ReplicationPlan(factors={}, crossbars_used={}, total_crossbars=0, bottleneck_slots=0)

    factors: Dict[str, int] = {g.layer_name: 1 for g in geometries}
    used = sum(g.crossbars_per_copy for g in geometries)
    if used > crossbar_budget:
        raise ValueError(
            f"partition needs {used} crossbars for a single copy of each layer "
            f"but only {crossbar_budget} are available"
        )

    # Greedily replicate the current bottleneck layer while budget remains.
    while True:
        # find the bottleneck layer that can still be replicated
        best_geom = None
        best_slots = -1
        for geom in geometries:
            factor = factors[geom.layer_name]
            slots = math.ceil(geom.windows / factor) if geom.windows else 0
            limit = min(max_replication, max(geom.windows, 1))
            if factor >= limit:
                continue
            if used + geom.crossbars_per_copy > crossbar_budget:
                continue
            if slots > best_slots:
                best_slots = slots
                best_geom = geom
        if best_geom is None or best_slots <= 1:
            break
        # check that replicating actually reduces the global bottleneck or the
        # layer's own service time (avoid burning budget for nothing)
        factors[best_geom.layer_name] += 1
        used += best_geom.crossbars_per_copy

    crossbars_used = {
        g.layer_name: g.crossbars_per_copy * factors[g.layer_name] for g in geometries
    }
    return ReplicationPlan(
        factors=factors,
        crossbars_used=crossbars_used,
        total_crossbars=sum(crossbars_used.values()),
        bottleneck_slots=_bottleneck(geometries, factors),
    )
