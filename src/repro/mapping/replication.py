"""Weight-replication allocation within a partition.

Inside a partition the layers execute as a pipeline over the MVM window
stream, so the slowest layer (most sliding windows per replica) limits
throughput.  Replicating a layer's weights R times lets R windows be
processed in parallel, cutting its service time to ``ceil(windows / R)``
MVM slots.  The allocator spends the partition's leftover crossbar budget on
replicas of whichever layer is currently the bottleneck — the same
"replication balances pipelined layers" policy the paper inherits from
PipeLayer/PIMCOMP, here applied per partition (Sec. II-B).

Constraint 2 of Sec. III-B is honoured by construction: replication is
allocated per *layer*, so every partition unit originating from the same
kernel shares the replication count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.mapping.geometry import WeightMatrixGeometry


@dataclass(slots=True)
class ReplicationPlan:
    """Result of replication allocation for one partition."""

    #: replication factor per layer name (>= 1)
    factors: Dict[str, int] = field(default_factory=dict)
    #: crossbars consumed by each layer including replication
    crossbars_used: Dict[str, int] = field(default_factory=dict)
    #: total crossbars consumed by the partition
    total_crossbars: int = 0
    #: pipeline bottleneck: max over layers of ceil(windows / replication)
    bottleneck_slots: int = 0

    def factor(self, layer_name: str) -> int:
        """Replication factor of a layer (1 if the layer is not in the plan)."""
        return self.factors.get(layer_name, 1)


def _bottleneck(geometries: Sequence[WeightMatrixGeometry], factors: Mapping[str, int]) -> int:
    slots = 0
    for geom in geometries:
        slots = max(slots, math.ceil(geom.windows / factors[geom.layer_name]))
    return slots


def replication_factor_list(
    names: Sequence[str],
    windows: Sequence[int],
    copies: Sequence[int],
    crossbar_budget: int,
    max_replication: int = 64,
) -> List[int]:
    """Per-geometry replication factors for *unique* layer names, as a list.

    This is the single greedy core of the allocator: with distinct layer
    names (one slice per layer, which every span produces) factors live in
    a parallel list, and the selected bottleneck layer keeps being selected
    until its service time drops below the runner-up's, so its factor is
    advanced in one batched jump per selection — an exact replay of the
    one-at-a-time greedy loop (ties select the lowest index; competitors'
    service times cannot change while the selected layer replicates, and
    validity only ever shrinks, which at worst ends a batch early before
    the next reselection).  :func:`replication_factors` wraps this for the
    name-keyed dict API; the latency-only span profiler calls it directly.
    """
    n = len(names)
    factors = [1] * n
    if n == 0:
        return factors
    used = sum(copies)
    if used > crossbar_budget:
        raise ValueError(
            f"partition needs {used} crossbars for a single copy of each layer "
            f"but only {crossbar_budget} are available"
        )
    limits = [min(max_replication, max(w, 1)) for w in windows]
    if n == 1:
        # Closed form of the greedy loop for the (very common) single-layer
        # partition: the loop replicates its only candidate until the factor
        # hits the limit or the next copy would blow the budget.  The
        # service-time stop (slots <= 1) never fires first because the limit
        # is already capped at the window count.
        w = windows[0]
        if w > 0:
            factors[0] = min(limits[0], crossbar_budget // copies[0])
        return factors
    ceil = math.ceil
    slots_cache = [ceil(w / 1) if w else 0 for w in windows]
    while True:
        # find the bottleneck layer that can still be replicated
        best_index = -1
        best_slots = -1
        for i in range(n):
            if factors[i] >= limits[i]:
                continue
            if used + copies[i] > crossbar_budget:
                continue
            if slots_cache[i] > best_slots:
                best_slots = slots_cache[i]
                best_index = i
        if best_index < 0 or best_slots <= 1:
            break
        copy = copies[best_index]
        factor = factors[best_index]
        # the selected layer stays selected while its slots beat every valid
        # earlier index strictly and every later index weakly; replicate
        # until its slots would fall below that threshold
        runner_up = 1
        for i in range(n):
            if i == best_index:
                continue
            if factors[i] >= limits[i]:
                continue
            if used + copies[i] > crossbar_budget:
                continue
            required = slots_cache[i] + 1 if i < best_index else slots_cache[i]
            if required > runner_up:
                runner_up = required
        threshold = runner_up if runner_up > 2 else 2
        w = windows[best_index]
        # smallest factor whose slots drop below the threshold
        target_factor = -(-w // (threshold - 1))
        budget_factor = factor + (crossbar_budget - used) // copy
        new_factor = min(target_factor, limits[best_index], budget_factor)
        used += (new_factor - factor) * copy
        factors[best_index] = new_factor
        if w:
            slots_cache[best_index] = ceil(w / new_factor)
    return factors


def replication_factors(
    names: Sequence[str],
    windows: Sequence[int],
    copies: Sequence[int],
    crossbar_budget: int,
    max_replication: int = 64,
) -> Dict[str, int]:
    """Per-layer replication factors as a name-keyed dict.

    Unique names (every span's slice list) delegate to the batched greedy
    core :func:`replication_factor_list`.  Repeated names fall back to the
    historical one-factor-at-a-time greedy: units of one kernel share a
    replication count, so the factor advances by one per selection with
    every same-name slot refreshed.
    """
    n = len(names)
    if len(set(names)) == n:
        return dict(zip(names, replication_factor_list(
            names, windows, copies, crossbar_budget, max_replication
        )))

    factors: Dict[str, int] = {name: 1 for name in names}
    used = sum(copies)
    if used > crossbar_budget:
        raise ValueError(
            f"partition needs {used} crossbars for a single copy of each layer "
            f"but only {crossbar_budget} are available"
        )
    limits = [min(max_replication, max(w, 1)) for w in windows]
    slots_cache = [
        math.ceil(w / factors[name]) if w else 0 for w, name in zip(windows, names)
    ]
    while True:
        # find the bottleneck layer that can still be replicated
        best_index = -1
        best_slots = -1
        for i in range(n):
            if factors[names[i]] >= limits[i]:
                continue
            if used + copies[i] > crossbar_budget:
                continue
            if slots_cache[i] > best_slots:
                best_slots = slots_cache[i]
                best_index = i
        if best_index < 0 or best_slots <= 1:
            break
        best_name = names[best_index]
        new_factor = factors[best_name] + 1
        used += copies[best_index]
        factors[best_name] = new_factor
        for i in range(n):
            if names[i] == best_name and windows[i]:
                slots_cache[i] = math.ceil(windows[i] / new_factor)
    return factors


def allocate_replication_arrays(
    names: Sequence[str],
    windows: Sequence[int],
    copies: Sequence[int],
    crossbar_budget: int,
    max_replication: int = 64,
) -> ReplicationPlan:
    """Array-based core of :func:`allocate_replication`.

    Takes the three geometry attributes the allocator actually reads
    (layer name, window count, crossbars per copy) as parallel sequences, so
    hot callers (the span-table engine building thousands of plans) need not
    materialise :class:`WeightMatrixGeometry` objects.
    """
    factors = replication_factors(names, windows, copies, crossbar_budget, max_replication)
    if not names:
        return ReplicationPlan(factors={}, crossbars_used={}, total_crossbars=0, bottleneck_slots=0)

    crossbars_used = {
        name: copy * factors[name] for name, copy in zip(names, copies)
    }
    bottleneck = 0
    for name, w in zip(names, windows):
        slots = math.ceil(w / factors[name])
        if slots > bottleneck:
            bottleneck = slots
    return ReplicationPlan(
        factors=factors,
        crossbars_used=crossbars_used,
        total_crossbars=sum(crossbars_used.values()),
        bottleneck_slots=bottleneck,
    )


def allocate_replication(
    geometries: Sequence[WeightMatrixGeometry],
    crossbar_budget: int,
    max_replication: int = 64,
) -> ReplicationPlan:
    """Allocate replication factors for the layers of one partition.

    Parameters
    ----------
    geometries:
        Geometry of every crossbar-mapped layer (or layer slice) in the
        partition.  Layers with zero windows (e.g. unused) are kept at one
        copy.
    crossbar_budget:
        Total crossbars available to the partition (normally the whole chip).
    max_replication:
        Upper bound on any single layer's replication factor; replicating a
        layer beyond its window count is never useful, so the effective bound
        is ``min(max_replication, windows)``.

    Raises
    ------
    ValueError
        If even a single copy of every layer does not fit in the budget
        (the partition is invalid).
    """
    return allocate_replication_arrays(
        [g.layer_name for g in geometries],
        [g.windows for g in geometries],
        [g.crossbars_per_copy for g in geometries],
        crossbar_budget,
        max_replication,
    )
