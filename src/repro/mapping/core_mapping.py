"""Assignment of crossbar tiles to physical PIM cores.

After replication is decided, every (layer, replica) pair owns a number of
crossbar tiles.  The mapper packs these tiles onto cores, trying to keep all
tiles of one replica on as few cores as possible (so that partial-sum
reduction stays core-local) while spreading different layers across cores
(so the pipeline stages run on different cores and can overlap).

The resulting :class:`CoreMapping` is consumed by the instruction scheduler
(to emit SEND/RECV between producer and consumer cores) and by the latency
estimator (core utilisation and inter-core traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.chip import ChipConfig
from repro.mapping.geometry import WeightMatrixGeometry
from repro.mapping.replication import ReplicationPlan


@dataclass
class CoreAssignment:
    """Crossbar tiles placed on one physical core."""

    core_id: int
    #: (layer_name, replica_index, num_crossbar_tiles) entries on this core
    entries: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def crossbars_used(self) -> int:
        """Total crossbar tiles occupied on this core."""
        return sum(tiles for _, _, tiles in self.entries)

    @property
    def layers(self) -> List[str]:
        """Distinct layer names present on this core."""
        seen: List[str] = []
        for layer, _, _ in self.entries:
            if layer not in seen:
                seen.append(layer)
        return seen


@dataclass
class CoreMapping:
    """Complete core mapping for one partition."""

    assignments: List[CoreAssignment] = field(default_factory=list)
    #: layer name -> list of core ids hosting at least one of its tiles
    layer_cores: Dict[str, List[int]] = field(default_factory=dict)
    #: crossbars available per core (from the chip config)
    crossbars_per_core: int = 0

    @property
    def cores_used(self) -> int:
        """Number of cores holding at least one tile."""
        return sum(1 for a in self.assignments if a.entries)

    @property
    def total_crossbars_used(self) -> int:
        """Crossbar tiles occupied across all cores."""
        return sum(a.crossbars_used for a in self.assignments)

    def utilization(self) -> float:
        """Fraction of crossbars used on the cores that are active."""
        active = [a for a in self.assignments if a.entries]
        if not active or self.crossbars_per_core == 0:
            return 0.0
        capacity = len(active) * self.crossbars_per_core
        return self.total_crossbars_used / capacity

    def cores_for_layer(self, layer_name: str) -> List[int]:
        """Cores hosting tiles of the given layer."""
        return self.layer_cores.get(layer_name, [])

    def inter_core_edges(self, producer: str, consumer: str) -> int:
        """Number of distinct producer-core → consumer-core pairs.

        Used to estimate inter-core (SEND/RECV) traffic: an activation
        produced by layer ``producer`` must reach every core holding a tile of
        ``consumer`` that is not the producing core itself.
        """
        src = set(self.cores_for_layer(producer))
        dst = set(self.cores_for_layer(consumer))
        return sum(1 for s in src for d in dst if s != d)


class MappingError(ValueError):
    """Raised when a partition's tiles do not fit on the chip's cores."""


def map_partition_to_cores(
    geometries: Sequence[WeightMatrixGeometry],
    replication: ReplicationPlan,
    chip: ChipConfig,
) -> CoreMapping:
    """Pack the (replicated) crossbar tiles of a partition onto cores.

    A first-fit-decreasing bin packing is used at replica granularity:
    replicas with many tiles are placed first, each on the core with the most
    free crossbars (splitting across cores only when a replica is larger than
    a whole core).
    """
    per_core = chip.core.crossbars_per_core
    assignments = [CoreAssignment(core_id=i) for i in range(chip.num_cores)]
    free = [per_core] * chip.num_cores
    layer_cores: Dict[str, List[int]] = {}

    # Build the list of replicas to place, largest first for better packing.
    replicas: List[Tuple[str, int, int]] = []
    for geom in geometries:
        factor = replication.factor(geom.layer_name)
        for replica_index in range(factor):
            replicas.append((geom.layer_name, replica_index, geom.crossbars_per_copy))
    replicas.sort(key=lambda item: item[2], reverse=True)

    for layer_name, replica_index, tiles in replicas:
        remaining = tiles
        # Prefer the core with the largest free space (keeps replicas together).
        while remaining > 0:
            best_core = max(range(chip.num_cores), key=lambda c: free[c])
            if free[best_core] == 0:
                raise MappingError(
                    f"partition does not fit: layer {layer_name!r} replica {replica_index} "
                    f"needs {remaining} more crossbars but all cores are full"
                )
            placed = min(remaining, free[best_core])
            assignments[best_core].entries.append((layer_name, replica_index, placed))
            free[best_core] -= placed
            remaining -= placed
            cores = layer_cores.setdefault(layer_name, [])
            if best_core not in cores:
                cores.append(best_core)

    return CoreMapping(
        assignments=assignments,
        layer_cores=layer_cores,
        crossbars_per_core=per_core,
    )
