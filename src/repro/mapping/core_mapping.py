"""Assignment of crossbar tiles to physical PIM cores.

After replication is decided, every (layer, replica) pair owns a number of
crossbar tiles.  The mapper packs these tiles onto cores, trying to keep all
tiles of one replica on as few cores as possible (so that partial-sum
reduction stays core-local) while spreading different layers across cores
(so the pipeline stages run on different cores and can overlap).

The resulting :class:`CoreMapping` is consumed by the instruction scheduler
(to emit SEND/RECV between producer and consumer cores) and by the latency
estimator (core utilisation and inter-core traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.chip import ChipConfig
from repro.mapping.geometry import WeightMatrixGeometry
from repro.mapping.replication import ReplicationPlan


@dataclass(slots=True)
class CoreAssignment:
    """Crossbar tiles placed on one physical core."""

    core_id: int
    #: (layer_name, replica_index, num_crossbar_tiles) entries on this core
    entries: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def crossbars_used(self) -> int:
        """Total crossbar tiles occupied on this core."""
        return sum(tiles for _, _, tiles in self.entries)

    @property
    def layers(self) -> List[str]:
        """Distinct layer names present on this core."""
        seen: List[str] = []
        for layer, _, _ in self.entries:
            if layer not in seen:
                seen.append(layer)
        return seen


@dataclass(slots=True)
class CoreMapping:
    """Complete core mapping for one partition."""

    assignments: List[CoreAssignment] = field(default_factory=list)
    #: layer name -> list of core ids hosting at least one of its tiles
    layer_cores: Dict[str, List[int]] = field(default_factory=dict)
    #: crossbars available per core (from the chip config)
    crossbars_per_core: int = 0
    #: stats precomputed by the mapper (None -> derived from assignments)
    _cores_used: Optional[int] = field(default=None, repr=False, compare=False)
    _max_core_crossbars: Optional[int] = field(default=None, repr=False, compare=False)

    @property
    def cores_used(self) -> int:
        """Number of cores holding at least one tile."""
        if self._cores_used is not None:
            return self._cores_used
        return sum(1 for a in self.assignments if a.entries)

    @property
    def total_crossbars_used(self) -> int:
        """Crossbar tiles occupied across all cores."""
        return sum(a.crossbars_used for a in self.assignments)

    @property
    def max_core_crossbars(self) -> int:
        """Largest number of crossbar tiles occupied on any single core."""
        if self._max_core_crossbars is not None:
            return self._max_core_crossbars
        return max((a.crossbars_used for a in self.assignments), default=0)

    def utilization(self) -> float:
        """Fraction of crossbars used on the cores that are active."""
        active = [a for a in self.assignments if a.entries]
        if not active or self.crossbars_per_core == 0:
            return 0.0
        capacity = len(active) * self.crossbars_per_core
        return self.total_crossbars_used / capacity

    def cores_for_layer(self, layer_name: str) -> List[int]:
        """Cores hosting tiles of the given layer."""
        return self.layer_cores.get(layer_name, [])

    def inter_core_edges(self, producer: str, consumer: str) -> int:
        """Number of distinct producer-core → consumer-core pairs.

        Used to estimate inter-core (SEND/RECV) traffic: an activation
        produced by layer ``producer`` must reach every core holding a tile of
        ``consumer`` that is not the producing core itself.
        """
        src = set(self.cores_for_layer(producer))
        dst = set(self.cores_for_layer(consumer))
        return sum(1 for s in src for d in dst if s != d)


class MappingError(ValueError):
    """Raised when a partition's tiles do not fit on the chip's cores."""


def map_tiles_to_cores(
    names: Sequence[str],
    copies: Sequence[int],
    replication: ReplicationPlan,
    chip: ChipConfig,
) -> CoreMapping:
    """Array-based core of :func:`map_partition_to_cores`.

    Takes the two geometry attributes the packer actually reads (layer name
    and crossbars per copy) as parallel sequences, so hot callers need not
    materialise :class:`WeightMatrixGeometry` objects.
    """
    per_core = chip.core.crossbars_per_core
    num_cores = chip.num_cores
    n = len(names)
    factors = [replication.factor(name) for name in names]

    uniform_tiles = -1
    for tiles in copies:
        if uniform_tiles in (-1, tiles):
            uniform_tiles = tiles
        else:
            uniform_tiles = -2
            break

    # Fast path: when every replica has the same tile count t <= per-core
    # capacity and the replicas fit without splitting any of them, the
    # max-free-core policy degenerates to exact round-robin: replica k lands
    # on core k % C.  This is the overwhelmingly common case for spans whose
    # layers were decomposed into equal-size units.
    num_replicas = sum(factors)
    if (
        uniform_tiles > 0
        and per_core >= uniform_tiles
        and num_replicas <= num_cores * (per_core // uniform_tiles)
        and (n == 1 or len(set(names)) == n)
    ):
        # uniform tiles -> the largest-first sort is a no-op, so replicas sit
        # in geometry order, each layer's replicas one contiguous run
        replicas: List[Tuple[str, int, int]] = []
        for name, tiles, factor in zip(names, copies, factors):
            for replica_index in range(factor):
                replicas.append((name, replica_index, tiles))
        touched = min(num_replicas, num_cores)
        assignments = [
            CoreAssignment(core_id=core_id, entries=replicas[core_id::num_cores])
            for core_id in range(touched)
        ]
        # a layer run starting at global position run_start visits cores
        # (run_start + j) % num_cores chronologically — possibly wrapping
        layer_cores: Dict[str, List[int]] = {}
        run_start = 0
        for name, factor in zip(names, factors):
            if factor > 0:
                layer_cores[name] = [
                    (run_start + j) % num_cores for j in range(min(factor, num_cores))
                ]
            run_start += factor
        return CoreMapping(
            assignments=assignments,
            layer_cores=layer_cores,
            crossbars_per_core=per_core,
            _cores_used=touched,
            _max_core_crossbars=(
                uniform_tiles * len(assignments[0].entries) if assignments else 0
            ),
        )

    free = [per_core] * num_cores
    entries_by_core: Dict[int, List[Tuple[str, int, int]]] = {}
    layer_cores = {}
    layer_core_seen: Dict[str, set] = {}

    # Place replicas largest-first (stable order among equal sizes), without
    # materialising the flat replica list: geometry runs are placed whole.
    order = sorted(range(n), key=copies.__getitem__, reverse=True)
    for geom_index in order:
        layer_name = names[geom_index]
        tiles = copies[geom_index]
        for replica_index in range(factors[geom_index]):
            remaining = tiles
            # Prefer the core with the largest free space (keeps replicas
            # together).
            while remaining > 0:
                # first core with the maximum free space
                best_free = max(free)
                if best_free == 0:
                    raise MappingError(
                        f"partition does not fit: layer {layer_name!r} replica "
                        f"{replica_index} needs {remaining} more crossbars but "
                        f"all cores are full"
                    )
                best_core = free.index(best_free)
                placed = remaining if remaining < best_free else best_free
                core_entries = entries_by_core.get(best_core)
                if core_entries is None:
                    core_entries = entries_by_core[best_core] = []
                core_entries.append((layer_name, replica_index, placed))
                free[best_core] = best_free - placed
                remaining -= placed
                seen = layer_core_seen.get(layer_name)
                if seen is None:
                    seen = layer_core_seen[layer_name] = set()
                    layer_cores[layer_name] = []
                if best_core not in seen:
                    seen.add(best_core)
                    layer_cores[layer_name].append(best_core)

    assignments = [
        CoreAssignment(core_id=core_id, entries=entries_by_core[core_id])
        for core_id in sorted(entries_by_core)
    ]
    return CoreMapping(
        assignments=assignments,
        layer_cores=layer_cores,
        crossbars_per_core=per_core,
        _cores_used=len(assignments),
        _max_core_crossbars=(per_core - min(free)) if assignments else 0,
    )


def max_core_crossbars_only(
    names: Sequence[str],
    copies: Sequence[int],
    factors: Sequence[int],
    chip: ChipConfig,
) -> int:
    """``map_tiles_to_cores(...).max_core_crossbars`` without the mapping.

    The latency-only span profiler needs exactly one number from the core
    mapping — the largest per-core crossbar occupancy, which bounds the
    weight-write phase — so this replays the packer's placement decisions
    (the round-robin fast path and the max-free-core greedy loop) while
    tracking only the per-core free counts.  ``factors`` is the per-geometry
    replication factor (``replication.factor(name)`` for each name).  It is
    an exact replay: the bookkeeping skipped here (entries, layer→core
    lists) never influences where a tile lands.  Pinned against the full
    mapper by the perf equivalence tests.
    """
    per_core = chip.core.crossbars_per_core
    num_cores = chip.num_cores
    n = len(names)

    uniform_tiles = -1
    for tiles in copies:
        if uniform_tiles in (-1, tiles):
            uniform_tiles = tiles
        else:
            uniform_tiles = -2
            break

    num_replicas = sum(factors)
    if (
        uniform_tiles > 0
        and per_core >= uniform_tiles
        and num_replicas <= num_cores * (per_core // uniform_tiles)
        and (n == 1 or len(set(names)) == n)
    ):
        if num_replicas == 0:
            return 0
        # round-robin: core 0 receives ceil(num_replicas / num_cores) replicas
        return uniform_tiles * (-(-num_replicas // num_cores))

    # Fresh-core fast path: replicas are placed largest-first, and a touched
    # core's free space (per_core - tiles, tiles >= 1) is always below an
    # untouched core's, so while empty cores remain every non-empty replica
    # lands alone on a fresh core.  When all of them fit that way, the
    # fullest core simply holds the largest replica.
    max_tiles = 0
    nonzero_replicas = 0
    for tiles, factor in zip(copies, factors):
        if tiles > 0:
            nonzero_replicas += factor
            if tiles > max_tiles:
                max_tiles = tiles
    if max_tiles <= per_core and nonzero_replicas <= num_cores:
        return max_tiles

    # The greedy packer's state is fully described by the *multiset* of
    # per-core free counts: every placement takes from a core with the
    # maximum free space, and which of several equally-free cores is chosen
    # never changes the multiset that results.  Simulating value counts
    # instead of a core list turns each placement into O(1) bucket updates
    # (the max-value pointer only ever moves down).
    free_counts = [0] * (per_core + 1)
    free_counts[per_core] = num_cores
    max_free = per_core
    placed_any = False
    order = sorted(range(n), key=copies.__getitem__, reverse=True)
    for geom_index in order:
        layer_name = names[geom_index]
        tiles = copies[geom_index]
        for replica_index in range(factors[geom_index]):
            remaining = tiles
            while remaining > 0:
                while max_free > 0 and free_counts[max_free] == 0:
                    max_free -= 1
                if max_free == 0:
                    raise MappingError(
                        f"partition does not fit: layer {layer_name!r} replica "
                        f"{replica_index} needs {remaining} more crossbars but "
                        f"all cores are full"
                    )
                best_free = max_free
                placed = remaining if remaining < best_free else best_free
                free_counts[best_free] -= 1
                free_counts[best_free - placed] += 1
                remaining -= placed
                placed_any = True
    if not placed_any:
        return 0
    min_free = 0
    while free_counts[min_free] == 0:
        min_free += 1
    return per_core - min_free


def map_partition_to_cores(
    geometries: Sequence[WeightMatrixGeometry],
    replication: ReplicationPlan,
    chip: ChipConfig,
) -> CoreMapping:
    """Pack the (replicated) crossbar tiles of a partition onto cores.

    A first-fit-decreasing bin packing is used at replica granularity:
    replicas with many tiles are placed first, each on the core with the most
    free crossbars (splitting across cores only when a replica is larger than
    a whole core).  Only cores that receive tiles appear in the returned
    mapping's ``assignments`` (in core-id order); idle cores carry no
    information.
    """
    return map_tiles_to_cores(
        [g.layer_name for g in geometries],
        [g.crossbars_per_copy for g in geometries],
        replication,
        chip,
    )
