"""Weight-to-crossbar mapping: geometry, replication and core assignment.

This package answers three questions the compiler asks about every
Conv/Linear layer:

1. How many crossbars does one copy of the layer's weight matrix occupy?
   (:mod:`repro.mapping.geometry`)
2. How many copies (replicas) should be programmed to balance the pipeline,
   given the crossbar budget of a partition? (:mod:`repro.mapping.replication`)
3. Which physical cores hold which crossbar tiles?
   (:mod:`repro.mapping.core_mapping`)
"""

from repro.mapping.geometry import WeightMatrixGeometry, layer_geometry
from repro.mapping.replication import ReplicationPlan, allocate_replication
from repro.mapping.core_mapping import CoreAssignment, CoreMapping, map_partition_to_cores

__all__ = [
    "WeightMatrixGeometry",
    "layer_geometry",
    "ReplicationPlan",
    "allocate_replication",
    "CoreAssignment",
    "CoreMapping",
    "map_partition_to_cores",
]
