"""Command-line interface for the COMPASS reproduction.

Subcommands
-----------

``compile``
    Compile one model for one chip with a chosen partitioning scheme and
    print the execution summary (optionally dumping the full result to JSON).
``sweep``
    Run a throughput sweep (Fig. 6 style) over models / chips / batch sizes.
``serve``
    Simulate serving a request stream against a chip fleet using compiled
    partition plans (plan cache + dynamic batching + scheduling policy).
``observe``
    Run the live serving observatory: an asyncio REST + WebSocket service
    that accepts scenario submissions, streams per-window telemetry while
    they run, exposes Prometheus ``/metrics`` and takes mid-run commands.
    ``--follow ID`` turns the same command into a terminal stream client.
``lint``
    Run the AST-based invariant linter (:mod:`repro.analysis`) over the
    given paths: determinism (wall clock, unseeded RNG, unordered
    iteration, identity sort keys), sequential-sum bit-identity,
    telemetry purity, async-safety of the observatory, and the
    ``repro.envflags`` env-gate registry.  Exits 1 on non-baselined
    findings.
``models``
    List the models available in the zoo with their weight footprints.
``chips``
    Print the Table I chip configurations.

Examples
--------

::

    python -m repro compile resnet18 --chip M --scheme compass --batch 16
    python -m repro compile resnet18 --chip M --optimizer dp --batch 16
    python -m repro sweep --models squeezenet resnet18 --chips S M --batches 1 4 16
    python -m repro serve --model resnet18 --chip M --optimizer dp --traffic poisson --seed 0
    python -m repro serve --model resnet18 --fleet S:2,M:1 --traffic bursty --policy latency
    python -m repro serve --model resnet18 --traffic closed --clients 8 --think-us 100
    python -m repro serve --model resnet18 lenet5 --fleet S:2,M:1 --policy fair \
        --slo resnet18=8 --slo lenet5=2
    python -m repro serve --model resnet18 --fleet M:2 \
        --inject chip_fail@500:chip=0,until=2000 --retries 2 --timeout-us 5000
    python -m repro observe --port 8787
    python -m repro observe --submit scenario.json --and-follow
    python -m repro lint src/ --stats
    python -m repro models
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import List, Optional, Sequence

from repro import analysis
from repro.core.compiler import compile_model
from repro.core.fitness import FitnessMode
from repro.core.ga import GAConfig
from repro.evaluation.sweeps import SweepRunner
from repro.hardware.config import get_chip_config, hardware_configuration_table
from repro.models import build_model, list_models
from repro.search import OPTIMIZERS, validate_optimizer
from repro.serialization import (
    dump_chrome_trace,
    dump_compilation_result,
    dump_metrics_timeline,
    dump_serving_report,
)
from repro.serve import (
    POLICIES,
    TRAFFIC_GENERATORS,
    ClosedLoopTraffic,
    ControlConfig,
    FaultTolerance,
    Fleet,
    PlanCache,
    ServingSimulator,
    TelemetryConfig,
    TraceTraffic,
    fleet_capacity_rps,
    parse_inject,
    save_trace,
    validate_fault_targets,
    validate_policy,
)
from repro.sim.report import (
    format_table,
    render_execution_report,
    render_search_summary,
    render_serving_report,
    render_timeline,
)


def _ga_config_from_args(args: argparse.Namespace) -> GAConfig:
    return GAConfig(
        population_size=args.population,
        generations=args.generations,
        n_select=max(1, args.population // 5),
        n_mutate=args.population - max(1, args.population // 5),
        seed=args.seed,
    )


def _check_optimizer(name: str) -> Optional[str]:
    """Error message for an unrecognised ``--optimizer`` value, else ``None``."""
    try:
        validate_optimizer(name)
    except ValueError as error:
        return f"error: {error}"
    return None


def _cmd_compile(args: argparse.Namespace) -> int:
    error = _check_optimizer(args.optimizer)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    graph = build_model(args.model)
    chip = get_chip_config(args.chip)
    result = compile_model(
        graph,
        chip,
        scheme=args.scheme,
        batch_size=args.batch,
        optimizer=args.optimizer,
        ga_config=_ga_config_from_args(args),
        generate_instructions=not args.no_instructions,
    )
    print(result.summary())
    print()
    print(render_execution_report(result.report))
    if result.search_result is not None and args.optimizer != "ga":
        print()
        print(render_search_summary(result.search_result))
    if args.output:
        dump_compilation_result(result, args.output)
        print(f"\nfull result written to {args.output}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    error = _check_optimizer(args.optimizer)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    runner = SweepRunner(ga_config=_ga_config_from_args(args), optimizer=args.optimizer)
    rows = runner.run(
        models=args.models,
        chips=args.chips,
        schemes=args.schemes,
        batch_sizes=args.batches,
    )
    print(format_table(rows, columns=["label", "scheme", "partitions", "throughput_ips",
                                      "latency_ms", "energy_per_inf_mj", "edp_mj_ms"]))
    return 0


def _auto_rate(cache: PlanCache, fleet: Fleet, models: Sequence[str],
               batch_sizes: Sequence[int], utilization: float) -> float:
    """Offered rate targeting a utilisation fraction of the fleet's capacity."""
    return utilization * fleet_capacity_rps(cache, fleet, models, batch_sizes)


def _parse_slos(entries: Optional[Sequence[str]],
                models: Sequence[str]) -> dict:
    """Parse repeated ``--slo model=ms`` options into ``{model: target_ms}``."""
    slos: dict = {}
    for entry in entries or ():
        model, sep, value = entry.partition("=")
        model = model.strip()
        if not sep or not model:
            raise ValueError(f"bad --slo {entry!r}; expected MODEL=MS")
        if model not in models:
            raise ValueError(
                f"--slo names unknown model {model!r}; served models: "
                + ", ".join(sorted(models))
            )
        try:
            slos[model] = float(value)
        except ValueError:
            raise ValueError(f"bad --slo {entry!r}; expected MODEL=MS") from None
    return slos


def _parse_control(args: argparse.Namespace) -> Optional[ControlConfig]:
    """Build the control-plane config from the serve flags (None = off).

    ``--control-interval-us`` is the master switch; asking for any control
    feature (hedging, autoscaling) without it is an error rather than a
    silent no-op.
    """
    autoscale = args.autoscale is not None
    if args.control_interval_us <= 0:
        if args.hedge_after_pct > 0 or autoscale:
            raise ValueError(
                "--hedge-after-pct/--autoscale need the control plane: "
                "set --control-interval-us to a positive interval"
            )
        return None
    min_chips, max_chips = 1, 8
    if autoscale:
        spec = str(args.autoscale)
        lo, sep, hi = spec.partition(":")
        try:
            if not sep:
                raise ValueError(spec)
            min_chips, max_chips = int(lo), int(hi)
        except ValueError:
            raise ValueError(
                f"bad --autoscale {spec!r}; expected MIN:MAX chip counts"
            ) from None
    return ControlConfig(
        interval_us=args.control_interval_us,
        quarantine_after=args.quarantine_after,
        straggler_ratio=args.straggler_ratio,
        probation_us=args.probation_us,
        hedge_after_pct=args.hedge_after_pct,
        autoscale=autoscale,
        min_chips=min_chips,
        max_chips=max_chips,
        scale_up_below=args.scale_up_below,
        scale_down_util=args.scale_down_util,
        cooldown_us=args.cooldown_us,
        scale_chip=args.scale_chip,
        replace_plans=not args.no_replace_plans,
    )


def _parse_telemetry(args: argparse.Namespace) -> Optional[TelemetryConfig]:
    """Build the telemetry config from the serve flags (None = off).

    The export flags need their producer armed: ``--metrics-out`` without a
    ``--timeline-us`` interval (or ``--trace-out`` without
    ``--trace-requests``) is an error rather than a silently empty file.
    """
    if args.metrics_out and args.timeline_us <= 0:
        raise ValueError(
            "--metrics-out needs a metrics timeline: set --timeline-us "
            "to a positive window interval"
        )
    if args.trace_out and args.trace_requests <= 0:
        raise ValueError(
            "--trace-out needs request tracing: set --trace-requests "
            "to a positive sampling stride"
        )
    config = TelemetryConfig(
        timeline_interval_us=args.timeline_us,
        trace_every=args.trace_requests,
        streaming_percentiles=args.streaming_percentiles,
    )
    return config if config.active else None


def _cmd_serve(args: argparse.Namespace) -> int:
    error = _check_optimizer(args.optimizer)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    try:
        validate_policy(args.policy)
        fleet = Fleet.from_spec(args.fleet or f"{args.chip}:{args.num_chips}")
        # parse and target-check fault specs at parse time, before the
        # expensive plan-cache warmup: a typo'd chip index fails in
        # milliseconds, not after compiling a fleet's worth of plans —
        # and regardless of the REPRO_SERVE_FAULTS gate
        faults = [parse_inject(spec) for spec in (args.inject or ())]
        validate_fault_targets(faults, len(fleet.workers))
        control = _parse_control(args)
        telemetry = _parse_telemetry(args)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.traffic == "trace" and not args.trace:
        print("error: --traffic trace requires --trace <file>", file=sys.stderr)
        return 2

    mode = FitnessMode.EDP if args.mode == "edp" else FitnessMode.LATENCY
    # bad numeric inputs (--requests 0, --rate -5, --cache-capacity 0, a
    # non-positive --slo target, ...), unreadable or malformed trace files
    # and unknown model names surface as ValueError/OSError/KeyError from
    # the serve constructors — same friendly exit-2 contract as the checks
    # above
    try:
        cache = PlanCache(
            capacity=args.cache_capacity,
            optimizer=args.optimizer,
            mode=mode,
            ga_config=_ga_config_from_args(args),
        )
        models = list(args.model)
        batch_sizes = sorted(set(args.batches))
        requests = None
        if args.traffic == "trace":
            traffic = TraceTraffic(args.trace)
            models = list(traffic.models)
            cache.warmup(models, fleet.chip_names, batch_sizes)
        elif args.traffic == "closed":
            cache.warmup(models, fleet.chip_names, batch_sizes)
            traffic = ClosedLoopTraffic(
                models,
                num_requests=args.requests,
                seed=args.seed,
                clients=args.clients,
                concurrency=args.concurrency,
                mean_think_s=args.think_us * 1e-6,
            )
        else:
            cache.warmup(models, fleet.chip_names, batch_sizes)
            rate = args.rate if args.rate is not None else _auto_rate(
                cache, fleet, models, batch_sizes, args.utilization
            )
            kwargs = {
                "models": models,
                "num_requests": args.requests,
                "seed": args.seed,
            }
            if args.traffic == "diurnal":
                kwargs["base_rate_rps"] = rate
            else:
                kwargs["rate_rps"] = rate
            traffic = TRAFFIC_GENERATORS[args.traffic](**kwargs)

        slos = _parse_slos(args.slo, models)
        # negative fault-tolerance knobs raise ValueError here — same
        # friendly exit-2 contract as the other inputs (--inject specs
        # were already validated before warmup)
        fault_tolerance = FaultTolerance(
            timeout_us=args.timeout_us,
            max_retries=args.retries,
            retry_backoff_us=args.retry_backoff_us,
            shed_queue_depth=args.shed_queue_depth,
            shed_wait_us=args.shed_wait_us,
            degrade_below=args.degrade_below,
            retry_priority=args.retry_priority,
        )
        if args.traffic != "closed":
            requests = traffic.generate()
            if args.record_trace:
                save_trace(requests, args.record_trace)
                print(f"trace recorded to {args.record_trace}")
        simulator = ServingSimulator(
            fleet,
            cache,
            policy=args.policy,
            batch_sizes=batch_sizes,
            max_wait_us=args.max_wait_us,
            slos=slos,
            faults=faults,
            fault_tolerance=fault_tolerance,
            control=control,
            telemetry=telemetry,
        )
        report = simulator.run(
            traffic if args.traffic == "closed" else requests,
            traffic_info=traffic.describe(),
        )
        if args.traffic == "closed" and args.record_trace:
            # the realised closed-loop stream exists only after the run
            save_trace(traffic.last_session.issued, args.record_trace)
            print(f"trace recorded to {args.record_trace}")
    except (ValueError, OSError, KeyError) as err:
        # KeyError messages carry repr quotes (unknown model/missing field)
        print(f"error: {str(err).strip(chr(34))}", file=sys.stderr)
        return 2
    print(render_serving_report(report))
    if report.timeline:
        print("\nMetrics timeline:")
        print(render_timeline(report.timeline, max_rows=args.timeline_rows))
    if args.output:
        dump_serving_report(report, args.output)
        print(f"\nfull serving report written to {args.output}")
    # the export guards re-check the report, not just the flags: under
    # REPRO_SERVE_TELEMETRY=0 the producers never ran and the artifacts
    # would be empty shells, so the exports are skipped with a notice
    if args.metrics_out:
        if report.timeline:
            dump_metrics_timeline(report.timeline, args.metrics_out)
            print(f"metrics timeline written to {args.metrics_out}")
        else:
            print("telemetry disabled by REPRO_SERVE_TELEMETRY=0; "
                  "no metrics written", file=sys.stderr)
    if args.trace_out:
        session = simulator.telemetry_session
        if session is not None and session.tracer is not None:
            dump_chrome_trace(session.tracer.chrome_trace(), args.trace_out)
            print(f"request trace written to {args.trace_out} "
                  f"(load in Perfetto / chrome://tracing)")
        else:
            print("telemetry disabled by REPRO_SERVE_TELEMETRY=0; "
                  "no trace written", file=sys.stderr)
    return 0


async def _observe_serve(host: str, port: int) -> int:
    """Run the observatory server until interrupted."""
    from repro.serve.service import ObservatoryServer

    server = ObservatoryServer(host=host, port=port)
    bound_host, bound_port = await server.start()
    base = f"http://{bound_host}:{bound_port}"
    print(f"observatory listening on {base}")
    print(f"  submit : curl -s -X POST --data @scenario.json {base}/scenarios")
    print(f"  status : curl -s {base}/scenarios")
    print(f"  follow : repro observe --host {bound_host} "
          f"--port {bound_port} --follow <id>")
    print(f"  metrics: curl -s {base}/metrics")
    try:
        await asyncio.Event().wait()  # serve until cancelled
    finally:
        await server.close()
    return 0


def _observe_follow(host: str, port: int, job_id: str,
                    timeline_rows: int) -> int:
    """Stream one scenario's windows to the terminal, then the report."""
    from repro.serve.service import WebSocketClient, request_json

    try:
        client = WebSocketClient(host, port,
                                 f"/scenarios/{job_id}/stream")
    except (ConnectionError, OSError) as err:
        print(f"error: cannot reach scenario {job_id!r} at "
              f"{host}:{port}: {err}", file=sys.stderr)
        return 2
    windows: List[dict] = []
    failed = False
    try:
        for message in client.messages():
            kind = message.get("type")
            data = message.get("data") or {}
            if kind == "window":
                windows.append(data)
                print(f"  window {data.get('window'):>4}  "
                      f"t={data.get('t_ms', 0.0):9.3f} ms  "
                      f"arrivals={data.get('arrivals', 0):>4}  "
                      f"completed={data.get('completed', 0):>4}  "
                      f"p95={data.get('p95_ms', 0.0):7.3f} ms  "
                      f"util={data.get('utilisation', 0.0):5.2f}")
            elif kind == "event":
                print(f"  event: {json.dumps(data, sort_keys=True)}")
            elif kind == "error":
                print(f"error: scenario failed:\n{data.get('error')}",
                      file=sys.stderr)
                failed = True
            elif kind == "status":
                print(f"  scenario {job_id} is {data.get('state')}")
    finally:
        client.close()
    if failed:
        return 1
    print(f"\nstream closed after {len(windows)} windows; final timeline:")
    status, payload = request_json(host, port, "GET",
                                   f"/scenarios/{job_id}/report")
    if status == 200 and isinstance(payload, dict):
        timeline = payload.get("report", {}).get("timeline", [])
        print(render_timeline(timeline, max_rows=timeline_rows))
    else:
        print(render_timeline(windows, max_rows=timeline_rows))
    return 0


def _cmd_observe(args: argparse.Namespace) -> int:
    if args.submit:
        from repro.serve.service import request_json

        try:
            with open(args.submit, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        status, payload = request_json(args.host, args.port, "POST",
                                       "/scenarios", spec)
        print(json.dumps(payload, indent=2, sort_keys=True))
        if status != 201:
            return 1
        if args.follow is None and not args.and_follow:
            return 0
        job_id = payload["id"]
        return _observe_follow(args.host, args.port, job_id,
                               args.timeline_rows)
    if args.follow is not None:
        return _observe_follow(args.host, args.port, args.follow,
                               args.timeline_rows)
    try:
        return asyncio.run(_observe_serve(args.host, args.port))
    except KeyboardInterrupt:
        print("\nobservatory stopped")
        return 0


def _cmd_models(_: argparse.Namespace) -> int:
    rows = []
    for name in list_models():
        graph = build_model(name)
        rows.append(
            {
                "model": name,
                "layers": len(graph),
                "conv_mb": graph.conv_weight_bytes(4) / 2**20,
                "linear_mb": graph.linear_weight_bytes(4) / 2**20,
                "total_mb": graph.crossbar_weight_bytes(4) / 2**20,
            }
        )
    print(format_table(rows))
    return 0


def _cmd_chips(_: argparse.Namespace) -> int:
    print(format_table(hardware_configuration_table()))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    try:
        rule_classes = analysis.select_rules(args.rule)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    # repo-relative finding paths anchor at the project root (the nearest
    # ancestor with ROADMAP.md) so baseline keys don't depend on the cwd
    anchor = analysis.find_baseline(paths[0])
    root = (os.path.dirname(anchor) if anchor
            else analysis.find_project_root(paths[0])) or os.getcwd()

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        baseline_path = analysis.find_baseline(paths[0])
    try:
        baseline = ({} if args.no_baseline or args.write_baseline
                    else analysis.load_baseline(baseline_path))
    except (ValueError, OSError, KeyError) as error:
        print(f"error: bad baseline file: {error}", file=sys.stderr)
        return 2

    run = analysis.run_lint(paths, rule_classes, root=root, baseline=baseline)

    if args.write_baseline:
        target = baseline_path or os.path.join(root, analysis.BASELINE_FILENAME)
        analysis.save_baseline(target, run.reported)
        print(f"baseline with {len(run.reported)} finding(s) written to {target}")
        return 0

    if args.format == "json":
        print(analysis.render_json(run))
    else:
        print(analysis.render_text(run))
    if args.stats:
        stats = analysis.lint_stats(run, rule_classes)
        out = sys.stderr if args.format == "json" else sys.stdout
        print(stats.render(), file=out)
    return 1 if run.reported else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMPASS: compiler for resource-constrained crossbar PIM accelerators",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_ga_options(p: argparse.ArgumentParser, default_optimizer: str = "ga") -> None:
        p.add_argument("--population", type=int, default=30, help="GA population size")
        p.add_argument("--generations", type=int, default=10, help="GA generations")
        p.add_argument("--seed", type=int, default=0, help="random seed (GA and traffic)")
        p.add_argument(
            "--optimizer", default=default_optimizer, metavar="ENGINE",
            help="partition-search engine for the compass scheme: "
                 + ", ".join(sorted(OPTIMIZERS))
                 + f" (default: {default_optimizer})",
        )

    compile_parser = subparsers.add_parser("compile", help="compile one model for one chip")
    compile_parser.add_argument("model", choices=list_models())
    compile_parser.add_argument("--chip", default="M", help="chip configuration: S, M or L")
    compile_parser.add_argument("--scheme", default="compass",
                                choices=["compass", "greedy", "layerwise"])
    compile_parser.add_argument("--batch", type=int, default=1, help="batch size")
    compile_parser.add_argument("--no-instructions", action="store_true",
                                help="skip instruction generation (faster)")
    compile_parser.add_argument("--output", help="write the full result to this JSON file")
    add_ga_options(compile_parser)
    compile_parser.set_defaults(func=_cmd_compile)

    sweep_parser = subparsers.add_parser("sweep", help="run a Fig. 6 style sweep")
    sweep_parser.add_argument("--models", nargs="+", default=["squeezenet", "resnet18"],
                              choices=list_models())
    sweep_parser.add_argument("--chips", nargs="+", default=["S", "M", "L"])
    sweep_parser.add_argument("--schemes", nargs="+",
                              default=["greedy", "layerwise", "compass"],
                              choices=["greedy", "layerwise", "compass"])
    sweep_parser.add_argument("--batches", nargs="+", type=int, default=[1, 4, 16])
    # sweeps default to the exact DP engine: every compass point is the true
    # latency optimum and the sweep is deterministic (pass --optimizer ga
    # for the paper's original search)
    add_ga_options(sweep_parser, default_optimizer="dp")
    sweep_parser.set_defaults(func=_cmd_sweep)

    serve_parser = subparsers.add_parser(
        "serve", help="simulate serving a request stream on a chip fleet"
    )
    serve_parser.add_argument("--model", nargs="+", default=["resnet18"],
                              choices=list_models(), metavar="MODEL",
                              help="model(s) the traffic requests (default: resnet18)")
    serve_parser.add_argument("--chip", default="M",
                              help="chip configuration for a homogeneous fleet: S, M or L")
    serve_parser.add_argument("--num-chips", type=int, default=1,
                              help="fleet size when using --chip (default: 1)")
    serve_parser.add_argument("--fleet", default=None, metavar="SPEC",
                              help="heterogeneous fleet spec, e.g. S:2,M:1,L:1 "
                                   "(overrides --chip/--num-chips)")
    serve_parser.add_argument("--traffic", default="poisson",
                              choices=sorted(TRAFFIC_GENERATORS),
                              help="traffic generator (default: poisson)")
    serve_parser.add_argument("--rate", type=float, default=None,
                              help="offered request rate in req/s "
                                   "(default: auto from fleet capacity)")
    serve_parser.add_argument("--utilization", type=float, default=0.7,
                              help="target utilisation for the auto rate (default: 0.7)")
    serve_parser.add_argument("--clients", type=int, default=4,
                              help="closed-loop clients (--traffic closed; default: 4)")
    serve_parser.add_argument("--concurrency", type=int, default=1,
                              help="outstanding requests per closed-loop client "
                                   "(default: 1)")
    serve_parser.add_argument("--think-us", type=float, default=200.0,
                              help="mean closed-loop think time in microseconds "
                                   "(default: 200)")
    serve_parser.add_argument("--slo", action="append", metavar="MODEL=MS",
                              help="per-model latency SLO target in ms (repeatable); "
                                   "adds a per-model attainment block to the report")
    serve_parser.add_argument("--requests", type=int, default=200,
                              help="number of requests to simulate (default: 200)")
    serve_parser.add_argument("--policy", default="latency", choices=sorted(POLICIES),
                              help="chip scheduling policy (default: latency)")
    serve_parser.add_argument("--batches", nargs="+", type=int, default=[1, 2, 4, 8, 16],
                              help="allowed dynamic batch sizes (default: 1 2 4 8 16)")
    serve_parser.add_argument("--max-wait-us", type=float, default=200.0,
                              help="batching-delay budget in microseconds; "
                                   "0 disables holding (default: 200)")
    serve_parser.add_argument("--cache-capacity", type=int, default=64,
                              help="plan-cache capacity in plans (default: 64)")
    serve_parser.add_argument("--mode", default="latency", choices=["latency", "edp"],
                              help="plan-compilation fitness mode (default: latency)")
    serve_parser.add_argument("--inject", action="append", metavar="SPEC",
                              help="inject a fault event (repeatable): "
                                   "KIND@AT_US[:key=value,...], e.g. "
                                   "chip_fail@500:chip=0,until=1500 or "
                                   "chaos@0:seed=7,count=3,mtbf_us=3000,mttr_us=500")
    serve_parser.add_argument("--timeout-us", type=float, default=0.0,
                              help="per-request queueing timeout in microseconds; "
                                   "0 disables (default: 0)")
    serve_parser.add_argument("--retries", type=int, default=0,
                              help="max retry attempts for requests lost to chip "
                                   "failures or timeouts (default: 0)")
    serve_parser.add_argument("--retry-backoff-us", type=float, default=50.0,
                              help="base of the deterministic exponential retry "
                                   "backoff in microseconds (default: 50)")
    serve_parser.add_argument("--shed-queue-depth", type=int, default=0,
                              help="shed arrivals once this many requests are "
                                   "queued; 0 disables (default: 0)")
    serve_parser.add_argument("--shed-wait-us", type=float, default=0.0,
                              help="shed arrivals whose estimated queueing wait "
                                   "exceeds this budget in microseconds; "
                                   "0 disables (default: 0)")
    serve_parser.add_argument("--degrade-below", type=float, default=0.0,
                              help="fall back to latency-optimal dispatches when a "
                                   "model's running SLO attainment drops below this "
                                   "fraction; 0 disables (default: 0)")
    serve_parser.add_argument("--retry-priority", action="store_true",
                              help="serve a retry on its final attempt ahead of "
                                   "fresh arrivals instead of plain FIFO")
    serve_parser.add_argument("--control-interval-us", type=float, default=0.0,
                              help="self-healing control-plane tick interval in "
                                   "microseconds; 0 disables the controller "
                                   "(default: 0)")
    serve_parser.add_argument("--quarantine-after", type=int, default=2,
                              help="consecutive suspect control ticks before a "
                                   "straggling chip is quarantined (default: 2)")
    serve_parser.add_argument("--straggler-ratio", type=float, default=1.6,
                              help="service-ratio EMA vs fleet median above which "
                                   "a chip is suspected (default: 1.6)")
    serve_parser.add_argument("--probation-us", type=float, default=2000.0,
                              help="quarantine duration before re-admission, "
                                   "doubling per flap (default: 2000)")
    serve_parser.add_argument("--hedge-after-pct", type=float, default=0.0,
                              help="hedge requests stuck past this percentile of "
                                   "the observed latency window; 0 disables "
                                   "(default: 0)")
    serve_parser.add_argument("--autoscale", default=None, metavar="MIN:MAX",
                              help="enable the SLO-driven autoscaler between "
                                   "MIN and MAX chips (needs "
                                   "--control-interval-us)")
    serve_parser.add_argument("--scale-up-below", type=float, default=0.9,
                              help="windowed SLO attainment below which the "
                                   "fleet grows (default: 0.9)")
    serve_parser.add_argument("--scale-down-util", type=float, default=0.3,
                              help="utilisation EMA below which the fleet "
                                   "shrinks (default: 0.3)")
    serve_parser.add_argument("--cooldown-us", type=float, default=2000.0,
                              help="minimum simulated time between scale events "
                                   "(default: 2000)")
    serve_parser.add_argument("--scale-chip", default=None,
                              help="chip class the autoscaler adds (default: "
                                   "the fleet's first class)")
    serve_parser.add_argument("--no-replace-plans", action="store_true",
                              help="disable plan re-placement after "
                                   "quarantine/scale events")
    serve_parser.add_argument("--timeline-us", type=float, default=0.0,
                              help="emit a metrics timeline with this window "
                                   "interval in microseconds; 0 disables "
                                   "(default: 0)")
    serve_parser.add_argument("--timeline-rows", type=int, default=60,
                              help="cap the printed timeline table at this "
                                   "many rows, eliding the middle (exports "
                                   "keep every window); 0 prints everything "
                                   "(default: 60)")
    serve_parser.add_argument("--metrics-out", default=None, metavar="PATH",
                              help="write the metrics timeline to this file "
                                   "(.json or .csv; needs --timeline-us)")
    serve_parser.add_argument("--streaming-percentiles", action="store_true",
                              help="constant-memory P^2 percentile sketches for "
                                   "the terminal report instead of storing "
                                   "every latency sample (approximate)")
    serve_parser.add_argument("--trace-requests", type=int, default=0,
                              metavar="K",
                              help="trace the lifecycle of every K-th request; "
                                   "0 disables (default: 0)")
    serve_parser.add_argument("--trace-out", default=None, metavar="PATH",
                              help="write sampled request traces as Chrome "
                                   "trace-event JSON (needs --trace-requests)")
    serve_parser.add_argument("--trace", default=None,
                              help="trace file to replay (with --traffic trace)")
    serve_parser.add_argument("--record-trace", default=None, metavar="PATH",
                              help="record the generated request stream to a trace file")
    serve_parser.add_argument("--output", help="write the full serving report to this JSON file")
    add_ga_options(serve_parser, default_optimizer="dp")
    serve_parser.set_defaults(func=_cmd_serve)

    observe_parser = subparsers.add_parser(
        "observe",
        help="run the live serving observatory (or follow / submit to one)",
    )
    observe_parser.add_argument("--host", default="127.0.0.1",
                                help="bind / connect address "
                                     "(default: 127.0.0.1)")
    observe_parser.add_argument("--port", type=int, default=8787,
                                help="service port; 0 binds an ephemeral "
                                     "port (default: 8787)")
    observe_parser.add_argument("--follow", default=None, metavar="ID",
                                help="follow a running scenario's window "
                                     "stream instead of serving")
    observe_parser.add_argument("--submit", default=None, metavar="SPEC.json",
                                help="submit a scenario spec file to a "
                                     "running observatory")
    observe_parser.add_argument("--and-follow", action="store_true",
                                help="with --submit: follow the submitted "
                                     "scenario's stream")
    observe_parser.add_argument("--timeline-rows", type=int, default=60,
                                help="cap the final timeline table at this "
                                     "many rows (0 = everything; "
                                     "default: 60)")
    observe_parser.set_defaults(func=_cmd_observe)

    lint_parser = subparsers.add_parser(
        "lint",
        help="statically check the repo's determinism/purity/concurrency "
             "invariants",
    )
    lint_parser.add_argument("paths", nargs="*", metavar="PATH",
                             help="files/directories to lint "
                                  "(default: src/ if present, else .)")
    lint_parser.add_argument("--format", default="text",
                             choices=["text", "json"],
                             help="finding output format (default: text)")
    lint_parser.add_argument("--rule", action="append", metavar="ID",
                             help="restrict to this rule id (repeatable); "
                                  "see README 'Static analysis' for the list")
    lint_parser.add_argument("--baseline", default=None, metavar="PATH",
                             help="baseline file of grandfathered findings "
                                  "(default: nearest lint_baseline.json "
                                  "above the first path)")
    lint_parser.add_argument("--no-baseline", action="store_true",
                             help="ignore any baseline file (report "
                                  "everything)")
    lint_parser.add_argument("--write-baseline", action="store_true",
                             help="write the current findings as the new "
                                  "baseline instead of reporting them")
    lint_parser.add_argument("--stats", action="store_true",
                             help="print per-rule finding/suppression "
                                  "counts (SpanTable.stats house style)")
    lint_parser.set_defaults(func=_cmd_lint)

    models_parser = subparsers.add_parser("models", help="list available models")
    models_parser.set_defaults(func=_cmd_models)

    chips_parser = subparsers.add_parser("chips", help="print the Table I chip configurations")
    chips_parser.set_defaults(func=_cmd_chips)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the ``compass-repro`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
