"""Command-line interface for the COMPASS reproduction.

Subcommands
-----------

``compile``
    Compile one model for one chip with a chosen partitioning scheme and
    print the execution summary (optionally dumping the full result to JSON).
``sweep``
    Run a throughput sweep (Fig. 6 style) over models / chips / batch sizes.
``models``
    List the models available in the zoo with their weight footprints.
``chips``
    Print the Table I chip configurations.

Examples
--------

::

    python -m repro compile resnet18 --chip M --scheme compass --batch 16
    python -m repro compile resnet18 --chip M --optimizer dp --batch 16
    python -m repro sweep --models squeezenet resnet18 --chips S M --batches 1 4 16
    python -m repro models
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.compiler import compile_model
from repro.core.ga import GAConfig
from repro.evaluation.sweeps import SweepRunner
from repro.hardware.config import get_chip_config, hardware_configuration_table
from repro.models import build_model, list_models
from repro.search import OPTIMIZERS, validate_optimizer
from repro.serialization import dump_compilation_result
from repro.sim.report import format_table, render_execution_report, render_search_summary


def _ga_config_from_args(args: argparse.Namespace) -> GAConfig:
    return GAConfig(
        population_size=args.population,
        generations=args.generations,
        n_select=max(1, args.population // 5),
        n_mutate=args.population - max(1, args.population // 5),
        seed=args.seed,
    )


def _check_optimizer(name: str) -> Optional[str]:
    """Error message for an unrecognised ``--optimizer`` value, else ``None``."""
    try:
        validate_optimizer(name)
    except ValueError as error:
        return f"error: {error}"
    return None


def _cmd_compile(args: argparse.Namespace) -> int:
    error = _check_optimizer(args.optimizer)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    graph = build_model(args.model)
    chip = get_chip_config(args.chip)
    result = compile_model(
        graph,
        chip,
        scheme=args.scheme,
        batch_size=args.batch,
        optimizer=args.optimizer,
        ga_config=_ga_config_from_args(args),
        generate_instructions=not args.no_instructions,
    )
    print(result.summary())
    print()
    print(render_execution_report(result.report))
    if result.search_result is not None and args.optimizer != "ga":
        print()
        print(render_search_summary(result.search_result))
    if args.output:
        dump_compilation_result(result, args.output)
        print(f"\nfull result written to {args.output}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    error = _check_optimizer(args.optimizer)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    runner = SweepRunner(ga_config=_ga_config_from_args(args), optimizer=args.optimizer)
    rows = runner.run(
        models=args.models,
        chips=args.chips,
        schemes=args.schemes,
        batch_sizes=args.batches,
    )
    print(format_table(rows, columns=["label", "scheme", "partitions", "throughput_ips",
                                      "latency_ms", "energy_per_inf_mj", "edp_mj_ms"]))
    return 0


def _cmd_models(_: argparse.Namespace) -> int:
    rows = []
    for name in list_models():
        graph = build_model(name)
        rows.append(
            {
                "model": name,
                "layers": len(graph),
                "conv_mb": graph.conv_weight_bytes(4) / 2**20,
                "linear_mb": graph.linear_weight_bytes(4) / 2**20,
                "total_mb": graph.crossbar_weight_bytes(4) / 2**20,
            }
        )
    print(format_table(rows))
    return 0


def _cmd_chips(_: argparse.Namespace) -> int:
    print(format_table(hardware_configuration_table()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMPASS: compiler for resource-constrained crossbar PIM accelerators",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_ga_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--population", type=int, default=30, help="GA population size")
        p.add_argument("--generations", type=int, default=10, help="GA generations")
        p.add_argument("--seed", type=int, default=0, help="GA random seed")
        p.add_argument(
            "--optimizer", default="ga", metavar="ENGINE",
            help="partition-search engine for the compass scheme: "
                 + ", ".join(sorted(OPTIMIZERS)),
        )

    compile_parser = subparsers.add_parser("compile", help="compile one model for one chip")
    compile_parser.add_argument("model", choices=list_models())
    compile_parser.add_argument("--chip", default="M", help="chip configuration: S, M or L")
    compile_parser.add_argument("--scheme", default="compass",
                                choices=["compass", "greedy", "layerwise"])
    compile_parser.add_argument("--batch", type=int, default=1, help="batch size")
    compile_parser.add_argument("--no-instructions", action="store_true",
                                help="skip instruction generation (faster)")
    compile_parser.add_argument("--output", help="write the full result to this JSON file")
    add_ga_options(compile_parser)
    compile_parser.set_defaults(func=_cmd_compile)

    sweep_parser = subparsers.add_parser("sweep", help="run a Fig. 6 style sweep")
    sweep_parser.add_argument("--models", nargs="+", default=["squeezenet", "resnet18"],
                              choices=list_models())
    sweep_parser.add_argument("--chips", nargs="+", default=["S", "M", "L"])
    sweep_parser.add_argument("--schemes", nargs="+",
                              default=["greedy", "layerwise", "compass"],
                              choices=["greedy", "layerwise", "compass"])
    sweep_parser.add_argument("--batches", nargs="+", type=int, default=[1, 4, 16])
    add_ga_options(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    models_parser = subparsers.add_parser("models", help="list available models")
    models_parser.set_defaults(func=_cmd_models)

    chips_parser = subparsers.add_parser("chips", help="print the Table I chip configurations")
    chips_parser.set_defaults(func=_cmd_chips)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the ``compass-repro`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
