"""``identity-key``: no ``id()`` / object-``hash()`` in orderings.

``id()`` is an allocation address and object-default ``hash()`` derives
from it: both vary run to run, so a sort key or a heap tie-breaker built
on them produces a different order for the same seed.  The simulator's
event heap learned this the hard way — its tie component is the chip
index, never object identity (ROADMAP, "deterministic total order").
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.engine import Finding, LintContext, Rule

#: callables whose ordering arguments must be identity-free
_KEYED_CALLS = frozenset({"sorted", "min", "max"})
_HEAP_CALLS = frozenset({
    "heapq.heappush", "heapq.heappushpop", "heapq.heapreplace",
})


def _identity_calls(subtree: ast.AST, ctx: LintContext) -> Iterator[ast.Call]:
    for node in ast.walk(subtree):
        if (isinstance(node, ast.Call)
                and ctx.resolve_call(node) in ("id", "hash")):
            yield node


class IdentityKeyRule(Rule):
    rule_id = "identity-key"
    description = ("id()/hash() inside sort keys or heap tuples vary per "
                   "process and break deterministic ordering")

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if not isinstance(node, ast.Call):
            return
        dotted = ctx.resolve_call(node)
        ordering_subtrees = []
        if (dotted in _KEYED_CALLS
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort")):
            ordering_subtrees = [kw.value for kw in node.keywords
                                 if kw.arg == "key"]
        elif dotted in _HEAP_CALLS and len(node.args) >= 2:
            ordering_subtrees = [node.args[1]]
        for subtree in ordering_subtrees:
            for call in _identity_calls(subtree, ctx):
                name = ctx.resolve_call(call)
                yield Finding(
                    ctx.rel_path, call.lineno, self.rule_id,
                    f"{name}() in an ordering position varies per process; "
                    "order by a stable field (index, name, sequence number)",
                )
