"""``wall-clock``: no wall-clock reads outside the benchmark harness.

Every simulator, search engine and serving run in this repo is pinned to
fixed-seed bit-identity; a single ``time.time()`` on a hot path turns a
replayable report into a flake.  Simulated time flows from traffic
generators and event timestamps, never from the host clock — only the
benchmark harness (``benchmarks/``) is allowed to measure real elapsed
time.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, LintContext, Rule

#: callees that read the host clock
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
})


class WallClockRule(Rule):
    rule_id = "wall-clock"
    description = ("wall-clock reads (time.time, perf_counter, datetime.now, "
                   "...) break fixed-seed bit-identity; benchmarks only")
    excludes = ("benchmarks",)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if not isinstance(node, ast.Call):
            return
        dotted = ctx.resolve_call(node)
        if dotted in WALL_CLOCK_CALLS:
            yield Finding(
                ctx.rel_path, node.lineno, self.rule_id,
                f"wall-clock read {dotted}() breaks fixed-seed determinism; "
                "derive time from seeded traffic/event timestamps "
                "(benchmarks are the only sanctioned timers)",
            )
