"""``env-gate``: environment flags go through ``repro.envflags``, documented.

Two checks, one rule:

* **Read gating** — any ``os.environ`` / ``os.getenv`` read outside
  :mod:`repro.envflags` is a finding.  Scattered reads are how the repo
  accumulated three subtly different gate semantics before PR 10; the
  central module keeps each flag's semantics written down once and gives
  the doc check below one place to look.
* **Doc sync** — inside ``repro/envflags.py``, every ``REPRO_*`` /
  ``COMPASS_*`` variable name read from the environment must appear in
  the environment-variable table of the project's ``ROADMAP.md`` (the
  nearest ancestor ROADMAP.md of the linted file).  Code and doc cannot
  drift apart without a finding.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, LintContext, Rule

#: the one module sanctioned to read the environment
ENVFLAGS_FILE = "repro/envflags.py"

_FLAG_NAME = re.compile(r"^(REPRO|COMPASS)_[A-Z0-9_]+$")
_TABLE_ROW = re.compile(r"^\|\s*`([A-Z0-9_]+)`\s*\|")


def roadmap_env_table(project_root: Optional[str]) -> Optional[Set[str]]:
    """Variable names documented in ROADMAP.md's env table (None = no doc)."""
    if project_root is None:
        return None
    path = os.path.join(project_root, "ROADMAP.md")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return None
    return {match.group(1) for match in map(_TABLE_ROW.match, text.splitlines())
            if match}


def _env_var_literal(node: ast.Call) -> Optional[str]:
    """The flag-name literal of an environ read, if it is one."""
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


class EnvGateRule(Rule):
    rule_id = "env-gate"
    description = ("os.environ reads outside repro.envflags, and envflags "
                   "entries missing from the ROADMAP env-var table")

    def __init__(self) -> None:
        #: (name, lineno) of env vars this file reads, for the doc check
        self._read_flags: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    def _is_envflags_module(self, ctx: LintContext) -> bool:
        return ctx.rel_path == ENVFLAGS_FILE \
            or ctx.rel_path.endswith("/" + ENVFLAGS_FILE)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        read: Optional[Tuple[int, Optional[str]]] = None
        if isinstance(node, ast.Call):
            dotted = ctx.resolve_call(node)
            if dotted in ("os.getenv", "os.environ.get"):
                read = (node.lineno, _env_var_literal(node))
        elif isinstance(node, ast.Subscript):
            if ctx.dotted_name(node.value) == "os.environ":
                name = None
                if isinstance(node.slice, ast.Constant) \
                        and isinstance(node.slice.value, str):
                    name = node.slice.value
                read = (node.lineno, name)
        if read is None:
            return
        lineno, name = read
        if self._is_envflags_module(ctx):
            if name is not None and _FLAG_NAME.match(name):
                self._read_flags.append((name, lineno))
            return
        label = f" of {name}" if name else ""
        yield Finding(
            ctx.rel_path, lineno, self.rule_id,
            f"direct environment read{label} outside repro.envflags; add a "
            "typed accessor there (and a ROADMAP env-table row) instead",
        )

    # ------------------------------------------------------------------
    def finish(self, ctx: LintContext) -> Iterable[Finding]:
        if not self._read_flags:
            return
        documented = roadmap_env_table(ctx.project_root)
        if documented is None:
            return
        for name, lineno in self._read_flags:
            if name not in documented:
                yield Finding(
                    ctx.rel_path, lineno, self.rule_id,
                    f"environment flag {name} is read here but missing from "
                    "the ROADMAP.md environment-variable table; document it",
                )
