"""``blocking-async``: no blocking calls inside observatory coroutines.

``repro.serve.service`` runs one asyncio event loop for every WebSocket
client, HTTP request and command submission; scenario simulations run on
worker threads precisely so the loop never blocks.  One ``time.sleep``
or synchronous socket/file call in a coroutine stalls *every* connected
client.  Cross-thread traffic must ride the sanctioned paths — the
``CommandQueue`` drained by the simulator and the ``BroadcastHub``'s
``call_soon_threadsafe`` fan-out — never ad-hoc blocking primitives.

Heuristics (inside ``async def`` only):

* calls to a denylist of known-blocking callables (``time.sleep``,
  ``subprocess.*``, ``socket.*`` constructors, ``open``, ...);
* zero-argument ``.get()`` / ``.acquire()`` / ``.result()`` method calls
  that are **not** awaited: ``dict.get()`` needs an argument, so a bare
  ``x.get()`` is a queue read — either a blocking ``queue.Queue.get`` or
  an ``asyncio.Queue.get`` missing its ``await``; both are findings.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, LintContext, Rule

#: callables that block the event loop outright
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "socket.socket", "socket.create_connection", "socket.getaddrinfo",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "urllib.request.urlopen",
    "os.system", "os.popen",
    "open", "io.open",
    "queue.Queue", "queue.SimpleQueue", "queue.LifoQueue",
    "queue.PriorityQueue",
})

#: zero-arg method calls that read/lock and must be awaited variants
_BLOCKING_METHODS = frozenset({"get", "acquire", "result"})

#: asyncio wrappers whose call arguments are coroutine factories, not
#: blocking calls (``ensure_future(sub.get())`` schedules, never blocks)
_ASYNC_WRAPPERS = frozenset({
    "asyncio.ensure_future", "asyncio.create_task", "asyncio.gather",
    "asyncio.wait_for", "asyncio.shield", "asyncio.wait",
})


class BlockingAsyncRule(Rule):
    rule_id = "blocking-async"
    description = ("blocking calls (time.sleep, sync I/O, un-awaited queue "
                   "gets/lock acquires) inside serve/service coroutines "
                   "stall every connected client")
    scopes = ("repro/serve/service",)

    def __init__(self) -> None:
        #: call nodes scheduled through asyncio wrappers (not blocking)
        self._scheduled: set = set()

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if not isinstance(node, ast.Call) or not ctx.in_async_function:
            return
        dotted = ctx.resolve_call(node)
        if dotted in _ASYNC_WRAPPERS:
            # pre-order: seen before the argument calls are visited
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Call):
                    self._scheduled.add(id(arg))
            return
        if dotted in BLOCKING_CALLS:
            hint = ("use await asyncio.sleep(...)" if dotted == "time.sleep"
                    else "route through the CommandQueue/BroadcastHub "
                         "thread boundary or a worker thread")
            yield Finding(
                ctx.rel_path, node.lineno, self.rule_id,
                f"{dotted}() blocks the event loop inside a coroutine; "
                f"{hint}",
            )
            return
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
                and not node.args and not node.keywords
                and not ctx.is_awaited(node)
                and id(node) not in self._scheduled):
            yield Finding(
                ctx.rel_path, node.lineno, self.rule_id,
                f"bare .{node.func.attr}() in a coroutine is either a "
                "blocking thread-queue/lock call or a missing await; "
                "await the asyncio variant or cross threads via the "
                "sanctioned CommandQueue/BroadcastHub paths",
            )
