"""``telemetry-purity``: observers observe, they never mutate.

The load-bearing invariant of the telemetry layer and of the live
observatory is that they are *pure observers*: a telemetry-on run leaves
the simulated outcome bit-identical to a telemetry-off run
(``tests/test_telemetry.py`` pins it dynamically).  This rule enforces
the static precondition: code in ``serve/telemetry.py`` and
``serve/service/`` may read simulator/fleet/scheduler state passed to it
but may not *assign* attributes (or subscripts) on those foreign
objects.

What counts as *own* state (not flagged):

* ``self.*`` / ``cls.*`` and locals the function constructed;
* a parameter rebound to a fresh local first (``block = dict(block)``
  then mutated — the copy idiom);
* a parameter whose annotation names a class the observer layer itself
  defines — in the same module, or imported from the same package
  (``job: ScenarioJob`` in the service's job manager is the service's
  own record, not simulator state).  Unannotated parameters are treated
  as foreign: annotate or restructure.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Set

from repro.analysis.engine import Finding, LintContext, Rule


def _chain_root(node: ast.expr) -> Optional[ast.Name]:
    """Base Name of an attribute/subscript chain (``a.b[0].c`` -> ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _mutation_targets(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, ast.AugAssign):
        yield node.target
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield node.target
    elif isinstance(node, ast.Delete):
        yield from node.targets


def _local_bindings(func: ast.AST) -> Set[str]:
    """Plain names the function rebinds (excluding nested function bodies)."""
    bound: Set[str] = set()

    def scan(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
                bound.add(child.id)
            scan(child)

    for stmt in getattr(func, "body", ()):
        scan(stmt)
        if isinstance(stmt, ast.Name) and isinstance(stmt.ctx, ast.Store):
            bound.add(stmt.id)
    return bound


def _annotation_names(annotation: Optional[ast.expr]) -> Set[str]:
    """Class-name candidates mentioned by a parameter annotation."""
    if annotation is None:
        return set()
    names: Set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value.split("[")[0].strip())
    return names


class TelemetryPurityRule(Rule):
    rule_id = "telemetry-purity"
    description = ("telemetry/service code assigning attributes on foreign "
                   "objects (function parameters); observers must not "
                   "mutate simulator/fleet/scheduler state")
    scopes = ("repro/serve/telemetry.py", "repro/serve/service")

    def __init__(self) -> None:
        #: per-function-node cache of locally rebound names
        self._rebound: Dict[int, Set[str]] = {}

    # ------------------------------------------------------------------
    def _own_package(self, ctx: LintContext) -> str:
        """Dotted package of the linted file (``repro.serve.service``)."""
        rel = ctx.rel_path.replace("\\", "/")
        parts = rel.split("/")
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        if parts and parts[-1].endswith(".py"):
            parts = parts[:-1]
        return ".".join(parts)

    def _module_classes(self, ctx: LintContext) -> Set[str]:
        cached = getattr(ctx, "_purity_module_classes", None)
        if cached is None:
            cached = {node.name for node in ast.walk(ctx.tree)
                      if isinstance(node, ast.ClassDef)}
            ctx._purity_module_classes = cached
        return cached

    def _param_annotation(self, func: ast.AST, name: str
                          ) -> Optional[ast.expr]:
        args = func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg == name:
                return arg.annotation
        return None

    def _is_own_type(self, func: ast.AST, name: str,
                     ctx: LintContext) -> bool:
        candidates = _annotation_names(self._param_annotation(func, name))
        if not candidates:
            return False
        own_classes = self._module_classes(ctx)
        package = self._own_package(ctx)
        for candidate in candidates:
            if candidate in own_classes:
                return True
            imported_from = ctx.from_imports.get(candidate, "")
            if package and imported_from.startswith(package + "."):
                return True
        return False

    # ------------------------------------------------------------------
    def visit(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if not ctx.function_stack:
            return
        func = ctx.function_stack[-1]
        params = set(ctx.current_args()) - {"self", "cls"}
        if not params:
            return
        for target in _mutation_targets(node):
            elements = (target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target])
            for element in elements:
                if not isinstance(element, (ast.Attribute, ast.Subscript)):
                    continue
                root = _chain_root(element)
                if root is None or root.id not in params:
                    continue
                if id(func) not in self._rebound:
                    self._rebound[id(func)] = _local_bindings(func)
                if root.id in self._rebound[id(func)]:
                    continue  # rebound to a local copy first
                if self._is_own_type(func, root.id, ctx):
                    continue  # annotated with an observer-owned class
                yield Finding(
                    ctx.rel_path, element.lineno, self.rule_id,
                    f"assignment onto foreign object '{root.id}' (a "
                    "function parameter): telemetry/service code is a pure "
                    "observer — record into own state instead",
                )
