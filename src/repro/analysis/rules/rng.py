"""``unseeded-rng``: randomness must flow from a seeded generator.

The repo's determinism contract (ROADMAP "Batched randomness") is that
every random draw comes from a ``np.random.Generator`` constructed from
an explicit seed and passed down as an argument.  The module-global
``random.*`` / ``np.random.*`` convenience functions share hidden global
state: any draw from them is invisible to the seed plumbing and breaks
fixed-seed replay the moment call order shifts.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, LintContext, Rule

#: seeded-generator constructors: fine *with* an explicit seed argument
SEEDED_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
    "numpy.random.PCG64DXSM", "numpy.random.Philox",
    "numpy.random.SFC64", "numpy.random.MT19937",
    "numpy.random.RandomState", "random.Random",
})


class UnseededRngRule(Rule):
    rule_id = "unseeded-rng"
    description = ("module-global random.* / np.random.* draws and unseeded "
                   "generator constructions; RNG must flow from a seeded "
                   "generator argument")

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if not isinstance(node, ast.Call):
            return
        dotted = ctx.resolve_call(node)
        if dotted is None:
            return
        if dotted in SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                yield Finding(
                    ctx.rel_path, node.lineno, self.rule_id,
                    f"{dotted}() constructed without a seed draws OS entropy; "
                    "pass an explicit seed (or thread a seeded generator in)",
                )
            return
        if dotted.startswith("numpy.random."):
            yield Finding(
                ctx.rel_path, node.lineno, self.rule_id,
                f"{dotted}() uses numpy's hidden global RNG state; draw from "
                "a seeded np.random.Generator passed as an argument",
            )
        elif dotted.startswith("random.") and dotted.count(".") == 1:
            yield Finding(
                ctx.rel_path, node.lineno, self.rule_id,
                f"{dotted}() uses the stdlib module-global RNG; draw from a "
                "seeded generator passed as an argument",
            )
