"""``ordered-iteration``: no order-sensitive iteration over unordered sets.

The serving simulator, the search engines and the perf layer all feed
iteration results into order-sensitive machinery (event heaps, sequential
sums, deterministic reports).  Set iteration order depends on
``PYTHONHASHSEED`` for str/bytes keys and on insertion history otherwise,
so a ``for chip in failed_chips:`` over a ``set`` can reorder events
between two runs of the *same seed*.  Iterate ``sorted(...)`` views (the
repo-wide idiom — see ``sorted(inflight)`` in the simulator), and iterate
dicts directly instead of calling ``.keys()`` so the reader knows
insertion order is the contract being relied on.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.engine import Finding, LintContext, Rule


def _iter_exprs(node: ast.AST) -> Iterator[ast.expr]:
    """The iterable expressions a node loops over, if any."""
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        for generator in node.generators:
            yield generator.iter


class OrderedIterationRule(Rule):
    rule_id = "ordered-iteration"
    description = ("iteration over set()/set literals/dict.keys() feeding "
                   "order-sensitive serve/search/perf code; iterate "
                   "sorted(...) instead")
    scopes = ("repro/serve", "repro/search", "repro/perf")

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        for iter_expr in _iter_exprs(node):
            finding = self._check_iterable(iter_expr, ctx)
            if finding is not None:
                yield finding

    def _check_iterable(self, expr: ast.expr,
                        ctx: LintContext) -> "Finding | None":
        if isinstance(expr, ast.Set):
            return Finding(
                ctx.rel_path, expr.lineno, self.rule_id,
                "iterating a set literal: order is hash-dependent; "
                "iterate sorted(...) or a tuple",
            )
        if isinstance(expr, ast.Call):
            dotted = ctx.resolve_call(expr)
            if dotted in ("set", "frozenset"):
                return Finding(
                    ctx.rel_path, expr.lineno, self.rule_id,
                    f"iterating {dotted}(...): order is hash-dependent; "
                    "iterate sorted(...) instead",
                )
            if (isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "keys" and not expr.args):
                return Finding(
                    ctx.rel_path, expr.lineno, self.rule_id,
                    "iterating .keys(): iterate the dict itself (insertion "
                    "order) or sorted(...) if the order feeds report/event "
                    "state",
                )
        return None
