"""The repo-specific lint rules, one module per invariant family.

``ALL_RULES`` is the engine's registry; ``repro lint --rule ID`` selects
a subset by ``rule_id``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Type

from repro.analysis.engine import Rule
from repro.analysis.rules.asyncsafety import BlockingAsyncRule
from repro.analysis.rules.envgate import EnvGateRule
from repro.analysis.rules.identity import IdentityKeyRule
from repro.analysis.rules.ordering import OrderedIterationRule
from repro.analysis.rules.purity import TelemetryPurityRule
from repro.analysis.rules.rng import UnseededRngRule
from repro.analysis.rules.sums import SequentialSumRule
from repro.analysis.rules.wallclock import WallClockRule

#: every rule, in reporting order
ALL_RULES: Tuple[Type[Rule], ...] = (
    WallClockRule,
    UnseededRngRule,
    OrderedIterationRule,
    IdentityKeyRule,
    SequentialSumRule,
    TelemetryPurityRule,
    BlockingAsyncRule,
    EnvGateRule,
)

RULES_BY_ID: Dict[str, Type[Rule]] = {cls.rule_id: cls for cls in ALL_RULES}


def select_rules(rule_ids: Optional[Sequence[str]] = None
                 ) -> Tuple[Type[Rule], ...]:
    """The rule classes for a ``--rule`` selection (all when empty).

    Raises ``ValueError`` naming the unknown id and the valid ones, the
    CLI's friendly exit-2 contract.
    """
    if not rule_ids:
        return ALL_RULES
    unknown = [rid for rid in rule_ids if rid not in RULES_BY_ID]
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(valid: {', '.join(sorted(RULES_BY_ID))})"
        )
    wanted = set(rule_ids)
    return tuple(cls for cls in ALL_RULES if cls.rule_id in wanted)


__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "select_rules",
    "WallClockRule",
    "UnseededRngRule",
    "OrderedIterationRule",
    "IdentityKeyRule",
    "SequentialSumRule",
    "TelemetryPurityRule",
    "BlockingAsyncRule",
    "EnvGateRule",
]
