"""``sequential-sum``: pinned modules must sum left-to-right.

The fitness/span accumulation modules are pinned bit-identical to the
naive path, whose group fitness is a naive left-to-right Python ``sum``.
``np.sum`` uses pairwise summation and ``math.fsum`` compensated
summation — both are *better* numerically and precisely therefore not
bit-identical to the pin.  Inside the scoped modules any NumPy/fsum
reduction over floats is a finding; integer *counts* are exempt when
wrapped in ``int(...)`` (the house idiom, e.g.
``int(self._have_slim.sum())``), which also documents intent at the call
site.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.analysis.engine import Finding, LintContext, Rule

_REDUCTIONS = frozenset({"numpy.sum", "math.fsum"})


def _is_sum_call(node: ast.AST, ctx: LintContext) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if ctx.resolve_call(node) in _REDUCTIONS:
        return True
    # any method call named .sum() — in the scoped modules receivers are
    # ndarrays, whose .sum() is the pairwise reduction
    return isinstance(node.func, ast.Attribute) and node.func.attr == "sum"


class SequentialSumRule(Rule):
    rule_id = "sequential-sum"
    description = ("np.sum/math.fsum/.sum() over fitness or span "
                   "accumulations in modules pinned to sequential "
                   "left-to-right sums; wrap counts in int(...)")
    scopes = ("repro/core", "repro/search", "repro/perf")

    def __init__(self) -> None:
        #: sum calls sanctioned as counts by a direct ``int(...)`` wrapper
        self._count_calls: Set[int] = set()

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterable[Finding]:
        if not isinstance(node, ast.Call):
            return
        # pre-order: the int(...) wrapper is visited before its argument,
        # so sanctioning here is seen when the inner sum call is visited
        if (ctx.resolve_call(node) == "int" and len(node.args) == 1
                and _is_sum_call(node.args[0], ctx)):
            self._count_calls.add(id(node.args[0]))
            return
        if _is_sum_call(node, ctx) and id(node) not in self._count_calls:
            dotted = ctx.resolve_call(node) or ".sum()"
            yield Finding(
                ctx.rel_path, node.lineno, self.rule_id,
                f"{dotted} reduction in a module pinned to sequential "
                "left-to-right sums (pairwise summation is not "
                "bit-identical); use a Python sum loop, or wrap in "
                "int(...) if this is a count",
            )
