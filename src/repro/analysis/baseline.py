"""Committed baseline of grandfathered lint findings.

A baseline entry is the :meth:`Finding.baseline_key` triple — ``(file,
rule, message)``, deliberately *without* the line number so unrelated
edits above a finding don't invalidate it.  The file is a multiset:
``count`` matching findings are consumed per entry before further
identical findings report.  Entries that no longer match anything are
*stale* and surface in ``--stats`` / the JSON output so the baseline
shrinks monotonically instead of fossilising.

The committed file lives at the repo root (``lint_baseline.json``) and is
discovered by walking up from the lint root, mirroring how the env-gate
rule finds ROADMAP.md.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.engine import Finding

#: default committed baseline filename, discovered at the project root
BASELINE_FILENAME = "lint_baseline.json"

BaselineKey = Tuple[str, str, str]


def find_baseline(start: str) -> Optional[str]:
    """Nearest ancestor ``lint_baseline.json`` of ``start`` (None if absent)."""
    current = os.path.abspath(start)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while True:
        candidate = os.path.join(current, BASELINE_FILENAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def load_baseline(path: Optional[str]) -> Dict[BaselineKey, int]:
    """Baseline multiset from a JSON file (empty when path is None/missing)."""
    if path is None or not os.path.isfile(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("version") != 1:
        raise ValueError(f"{path}: not a version-1 lint baseline file")
    counts: Dict[BaselineKey, int] = {}
    for entry in data.get("findings", []):
        key = (entry["file"], entry["rule"], entry["message"])
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def save_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Write the given findings as a fresh baseline file (sorted, counted)."""
    counts: Dict[BaselineKey, int] = {}
    for finding in findings:
        key = finding.baseline_key()
        counts[key] = counts.get(key, 0) + 1
    entries: List[dict] = []
    for (file, rule, message), count in sorted(counts.items()):
        entry = {"file": file, "rule": rule, "message": message}
        if count > 1:
            entry["count"] = count
        entries.append(entry)
    payload = {
        "version": 1,
        "comment": ("grandfathered repro-lint findings; regenerate with "
                    "`repro lint <paths> --write-baseline`"),
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
