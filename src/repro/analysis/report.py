"""Rendering of lint runs: text, JSON and the ``--stats`` table.

The stats table follows the ``SpanTable.stats`` house style: per-rule
counter rows plus a flat ``as_dict()`` for machine assertions, rendered
through :func:`repro.sim.report.format_table` so CI logs line up with
every other table the repo prints.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Type

from repro.analysis.engine import Finding, LintRun, PARSE_ERROR_RULE, Rule
from repro.sim.report import format_table


def render_text(run: LintRun, verbose_baseline: bool = False) -> str:
    """Human-readable finding list, ``file:line: [rule] message`` per row."""
    lines = [
        f"{f.file}:{f.line}: [{f.rule_id}] {f.message}" for f in run.reported
    ]
    if verbose_baseline:
        lines += [
            f"{f.file}:{f.line}: [{f.rule_id}] (baselined) {f.message}"
            for f in run.baselined
        ]
    summary = (f"{len(run.reported)} finding(s) in {run.files} file(s)"
               f" ({len(run.baselined)} baselined,"
               f" {len(run.suppressed)} suppressed inline)")
    if run.stale_baseline:
        summary += f", {len(run.stale_baseline)} stale baseline entr(y/ies)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    """Machine-readable run record (the ``--format json`` schema).

    Schema (version 1): ``{"version", "files", "findings": [{"file",
    "line", "rule", "message"}], "baselined", "suppressed",
    "stale_baseline", "stats"}`` — ``findings`` holds only the entries
    that fail the run; baselined/suppressed are included for drift
    dashboards.
    """
    payload = {
        "version": 1,
        "files": run.files,
        "findings": [f.as_dict() for f in run.reported],
        "baselined": [f.as_dict() for f in run.baselined],
        "suppressed": [f.as_dict() for f in run.suppressed],
        "stale_baseline": [
            {"file": file, "rule": rule, "message": message}
            for file, rule, message in run.stale_baseline
        ],
        "stats": lint_stats(run).as_dict(),
    }
    return json.dumps(payload, indent=2)


class LintStats:
    """Per-rule finding/suppression counters in the SpanTable.stats style."""

    def __init__(self, rows: List[Dict[str, object]]) -> None:
        #: one dict per rule: rule/findings/baselined/suppressed/reported
        self.rows = rows

    def as_dict(self) -> Dict[str, int]:
        """Flat ``{"<rule>.<counter>": n}`` mapping plus totals."""
        flat: Dict[str, int] = {}
        for row in self.rows:
            rule = row["rule"]
            for counter in ("findings", "baselined", "suppressed", "reported"):
                flat[f"{rule}.{counter}"] = row[counter]
        for counter in ("findings", "baselined", "suppressed", "reported"):
            flat[f"total.{counter}"] = sum(row[counter] for row in self.rows)
        return flat

    def render(self) -> str:
        total = {
            "rule": "total",
            "findings": sum(r["findings"] for r in self.rows),
            "baselined": sum(r["baselined"] for r in self.rows),
            "suppressed": sum(r["suppressed"] for r in self.rows),
            "reported": sum(r["reported"] for r in self.rows),
        }
        return format_table(
            self.rows + [total],
            columns=("rule", "findings", "baselined", "suppressed",
                     "reported"),
        )


def lint_stats(run: LintRun,
               rule_classes: Optional[Sequence[Type[Rule]]] = None
               ) -> LintStats:
    """Per-rule counters of one run.

    ``rule_classes`` fixes the row set (so rules with zero findings still
    print a row — baseline drift in CI logs is visible as a row going to
    zero, not a row disappearing); extra rule ids found in the run (e.g.
    ``parse-error``) are appended.
    """
    order: List[str] = [cls.rule_id for cls in rule_classes or ()]
    seen = set(order)
    buckets: Dict[str, Dict[str, int]] = {
        rule_id: {"findings": 0, "baselined": 0, "suppressed": 0,
                  "reported": 0}
        for rule_id in order
    }

    def bucket(finding: Finding) -> Dict[str, int]:
        if finding.rule_id not in buckets:
            buckets[finding.rule_id] = {"findings": 0, "baselined": 0,
                                        "suppressed": 0, "reported": 0}
            if finding.rule_id not in seen:
                order.append(finding.rule_id)
                seen.add(finding.rule_id)
        return buckets[finding.rule_id]

    for finding in run.reported:
        row = bucket(finding)
        row["findings"] += 1
        row["reported"] += 1
    for finding in run.baselined:
        row = bucket(finding)
        row["findings"] += 1
        row["baselined"] += 1
    for finding in run.suppressed:
        row = bucket(finding)
        row["findings"] += 1
        row["suppressed"] += 1

    rows = [{"rule": rule_id, **buckets[rule_id]} for rule_id in order]
    return LintStats(rows)


__all__ = ["render_text", "render_json", "lint_stats", "LintStats",
           "PARSE_ERROR_RULE"]
