"""``repro.analysis``: the AST-based invariant linter (``repro lint``).

A stdlib-``ast`` static-analysis pass that machine-checks the *static
preconditions* of the repo's runtime contracts — fixed-seed bit-identity,
sequential left-to-right sums, telemetry purity, the serve/service
thread/asyncio boundary, and the central env-flag registry — on every
commit, before a seed-dependent flake can reach the test suite.

One parse + one visitor walk per file; rules are pluggable classes
producing :class:`Finding` records.  See :mod:`repro.analysis.rules` for
the rule set, :mod:`repro.analysis.baseline` for grandfathering and
``README.md`` ("Static analysis") for the CLI tour::

    repro lint src/                       # text findings, exit 1 if any
    repro lint src/ --format json         # machine-readable, for CI
    repro lint src/ --rule unseeded-rng   # one rule only
    repro lint src/ --stats               # per-rule counter table
    repro lint src/ --write-baseline      # grandfather current findings

Inline suppression::

    np.random.default_rng()  # repro-lint: disable=unseeded-rng
"""

from repro.analysis.baseline import (
    BASELINE_FILENAME,
    find_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import (
    Finding,
    LintContext,
    LintRun,
    PARSE_ERROR_RULE,
    Rule,
    find_project_root,
    iter_python_files,
    lint_file,
    path_matches,
    run_lint,
    scan_suppressions,
)
from repro.analysis.report import LintStats, lint_stats, render_json, render_text
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, select_rules

__all__ = [
    "ALL_RULES",
    "BASELINE_FILENAME",
    "Finding",
    "LintContext",
    "LintRun",
    "LintStats",
    "PARSE_ERROR_RULE",
    "Rule",
    "RULES_BY_ID",
    "find_baseline",
    "find_project_root",
    "iter_python_files",
    "lint_file",
    "lint_stats",
    "load_baseline",
    "path_matches",
    "render_json",
    "render_text",
    "run_lint",
    "save_baseline",
    "scan_suppressions",
    "select_rules",
]
