"""Core of the invariant linter: one parse + one visitor walk per file.

The engine is deliberately small: a file is parsed once with :mod:`ast`,
walked once in pre-order, and every node is offered to every rule active
for that file.  Rules are plain classes (:class:`Rule`) instantiated fresh
per file, so they may keep per-file state (e.g. "this ``.sum()`` call is
wrapped in ``int()`` and therefore a count, not a float accumulation").

The machinery a rule needs beyond the raw node lives on
:class:`LintContext`:

* ``rel_path`` — repo-relative posix path, the unit the scoping and the
  baseline key on;
* ``resolve_call`` / ``dotted_name`` — resolve an expression to a dotted
  name *through the module's import aliases* (``np.random.default_rng``
  resolves to ``numpy.random.default_rng``; ``from time import sleep as
  zzz`` makes ``zzz()`` resolve to ``time.sleep``);
* ``function_stack`` / ``in_async_function`` / ``current_args`` — where
  the walk currently is, maintained by the engine;
* ``is_awaited`` — whether a call node is the direct operand of ``await``
  (used by the async-safety rule to tell ``await q.get()`` from a
  blocking ``q.get()``).

Suppressions are comment-driven, pyflakes-style::

    something_flagged()  # repro-lint: disable=unseeded-rng
    # repro-lint: disable-file=wall-clock   (anywhere in the file)

``disable=all`` silences every rule on that line.  Suppressed findings are
counted per rule (surfaced by ``repro lint --stats``) so a silently
growing pile of suppressions is visible in CI logs.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, the unit of reporting and baselining."""

    file: str
    line: int
    rule_id: str
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }

    def baseline_key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers drift, (file, rule, message) don't."""
        return (self.file, self.rule_id, self.message)


#: rule id used for files that fail to parse
PARSE_ERROR_RULE = "parse-error"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?=(?P<ids>[A-Za-z0-9_,-]+)"
)


def path_matches(rel_path: str, patterns: Sequence[str]) -> bool:
    """Whether a repo-relative path falls under any scope pattern.

    Two pattern styles: ``repro/serve`` (a directory — matches every file
    at any depth under a directory of that relative path) and
    ``repro/serve/telemetry.py`` (one file, matched as a path suffix).
    """
    rel = "/" + rel_path.replace(os.sep, "/")
    for pattern in patterns:
        pat = "/" + pattern.strip("/")
        if pattern.endswith(".py"):
            if rel.endswith(pat):
                return True
        elif (pat + "/") in rel:
            return True
    return False


class Rule:
    """Base class of one lint rule.

    Subclasses set ``rule_id``/``description``, optionally restrict
    themselves with ``scopes`` (only matching files are visited) and
    ``excludes`` (matching files are skipped), and implement
    :meth:`visit`, yielding :class:`Finding`\\ s.  :meth:`finish` runs
    after the walk for module-level checks.  A fresh instance is created
    per linted file, so instance attributes are per-file state.
    """

    rule_id: str = ""
    description: str = ""
    #: path patterns this rule is limited to (``None`` = every file)
    scopes: Optional[Sequence[str]] = None
    #: path patterns this rule skips even inside its scopes
    excludes: Sequence[str] = ()

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        if cls.excludes and path_matches(rel_path, cls.excludes):
            return False
        if cls.scopes is None:
            return True
        return path_matches(rel_path, cls.scopes)

    def visit(self, node: ast.AST, ctx: "LintContext") -> Iterable[Finding]:
        return ()

    def finish(self, ctx: "LintContext") -> Iterable[Finding]:
        return ()


class LintContext:
    """Per-file state shared by every rule during the single walk."""

    def __init__(self, path: str, rel_path: str, source: str,
                 tree: ast.Module, project_root: Optional[str]) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: nearest ancestor directory containing ROADMAP.md (doc checks)
        self.project_root = project_root
        #: ``import numpy as np`` -> {"np": "numpy"}
        self.imports: Dict[str, str] = {}
        #: ``from time import sleep as zzz`` -> {"zzz": "time.sleep"}
        self.from_imports: Dict[str, str] = {}
        #: enclosing (Async)FunctionDef nodes, innermost last
        self.function_stack: List[ast.AST] = []
        #: enclosing ClassDef nodes, innermost last
        self.class_stack: List[ast.AST] = []
        #: ids of Call nodes that are the direct operand of ``await``
        self._awaited_calls: Set[int] = set()
        self._collect_imports(tree)

    # ------------------------------------------------------------------
    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.from_imports[name] = f"{node.module}.{alias.name}"

    # ------------------------------------------------------------------
    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an attribute/name chain, resolved through imports.

        ``np.random.default_rng`` -> ``numpy.random.default_rng``;
        a bare builtin like ``open`` resolves to ``open``.  Returns
        ``None`` when the chain is not rooted at a plain name (e.g. a
        call result or subscript).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        root = self.imports.get(base) or self.from_imports.get(base) or base
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """Dotted name of a call's callee (``None`` for computed callees)."""
        return self.dotted_name(node.func)

    # ------------------------------------------------------------------
    @property
    def in_function(self) -> bool:
        return bool(self.function_stack)

    @property
    def in_async_function(self) -> bool:
        """Whether the walk is inside an ``async def`` (at any nesting)."""
        for func in reversed(self.function_stack):
            if isinstance(func, ast.AsyncFunctionDef):
                return True
            if isinstance(func, ast.FunctionDef):
                return False
        return False

    def current_args(self) -> List[str]:
        """Parameter names of the innermost enclosing function."""
        if not self.function_stack:
            return []
        args = self.function_stack[-1].args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def is_awaited(self, node: ast.Call) -> bool:
        return id(node) in self._awaited_calls

    def note_awaited(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited_calls.add(id(node.value))


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

def scan_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and file-level suppression sets from lint comments."""
    per_line: Dict[int, Set[str]] = {}
    file_level: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        ids = {part.strip() for part in match.group("ids").split(",") if part.strip()}
        if match.group("scope"):
            file_level |= ids
        else:
            per_line.setdefault(lineno, set()).update(ids)
    return per_line, file_level


def is_suppressed(finding: Finding, per_line: Dict[int, Set[str]],
                  file_level: Set[str]) -> bool:
    if "all" in file_level or finding.rule_id in file_level:
        return True
    ids = per_line.get(finding.line, ())
    return "all" in ids or finding.rule_id in ids


# ----------------------------------------------------------------------
# the walk
# ----------------------------------------------------------------------

def _walk(node: ast.AST, ctx: LintContext, rules: Sequence[Rule],
          findings: List[Finding]) -> None:
    if isinstance(node, ast.Await):
        ctx.note_awaited(node)
    for rule in rules:
        findings.extend(rule.visit(node, ctx))
    is_function = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    is_class = isinstance(node, ast.ClassDef)
    if is_function:
        ctx.function_stack.append(node)
    if is_class:
        ctx.class_stack.append(node)
    for child in ast.iter_child_nodes(node):
        _walk(child, ctx, rules, findings)
    if is_function:
        ctx.function_stack.pop()
    if is_class:
        ctx.class_stack.pop()


def find_project_root(start: str) -> Optional[str]:
    """Nearest ancestor directory containing ROADMAP.md (for doc checks)."""
    current = os.path.abspath(start)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while True:
        if os.path.isfile(os.path.join(current, "ROADMAP.md")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def lint_file(path: str, rel_path: str, rule_classes: Sequence[type],
              project_root: Optional[str] = None
              ) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file: returns ``(active_findings, suppressed_findings)``."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        finding = Finding(rel_path, error.lineno or 1, PARSE_ERROR_RULE,
                          f"file does not parse: {error.msg}")
        return [finding], []
    if project_root is None:
        project_root = find_project_root(path)
    ctx = LintContext(path, rel_path, source, tree, project_root)
    rules = [cls() for cls in rule_classes if cls.applies_to(rel_path)]
    raw: List[Finding] = []
    _walk(tree, ctx, rules, raw)
    for rule in rules:
        raw.extend(rule.finish(ctx))
    per_line, file_level = scan_suppressions(source)
    active = [f for f in raw if not is_suppressed(f, per_line, file_level)]
    suppressed = [f for f in raw if is_suppressed(f, per_line, file_level)]
    return active, suppressed


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under the given files/directories, sorted.

    Deterministic order regardless of filesystem enumeration order — the
    linter holds itself to the repo's own ordering contract.
    """
    seen: Set[str] = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                collected.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames
                           if d not in ("__pycache__", ".git")]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if full not in seen:
                    seen.add(full)
                    collected.append(full)
    return iter(sorted(collected))


@dataclass
class LintRun:
    """Outcome of linting a set of paths (before/after baseline filtering)."""

    #: findings neither suppressed inline nor baselined — these fail CI
    reported: List[Finding] = field(default_factory=list)
    #: findings matched (and consumed) by the committed baseline
    baselined: List[Finding] = field(default_factory=list)
    #: findings silenced by inline ``# repro-lint: disable=`` comments
    suppressed: List[Finding] = field(default_factory=list)
    #: baseline entries that no longer match any finding (stale — prune them)
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    #: number of files linted
    files: int = 0

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.reported + self.baselined)


def run_lint(paths: Sequence[str], rule_classes: Sequence[type],
             root: Optional[str] = None,
             baseline: Optional[Dict[Tuple[str, str, str], int]] = None
             ) -> LintRun:
    """Lint ``paths``, returning findings split by suppression/baseline.

    ``root`` anchors the repo-relative paths findings are keyed on
    (default: the current working directory).  ``baseline`` is a
    multiset of grandfathered finding keys (see :mod:`.baseline`): each
    key consumes that many matching findings before the rest report.
    """
    root = os.path.abspath(root or os.getcwd())
    remaining = dict(baseline or {})
    run = LintRun()
    for path in iter_python_files([os.path.abspath(p) for p in paths]):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        active, suppressed = lint_file(path, rel, rule_classes)
        run.files += 1
        run.suppressed.extend(suppressed)
        for finding in sorted(active):
            key = finding.baseline_key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                run.baselined.append(finding)
            else:
                run.reported.append(finding)
    run.stale_baseline = sorted(key for key, count in remaining.items()
                                if count > 0)
    run.reported.sort()
    return run
