"""Central registry of the repository's environment flags.

Every ``REPRO_*`` / ``COMPASS_*`` environment variable the codebase reacts
to is declared here, once, as a typed accessor plus a :data:`REGISTRY`
entry.  Reading :data:`os.environ` anywhere else in ``src/`` is a lint
finding (the ``env-gate`` rule of :mod:`repro.analysis`), and the same rule
cross-checks this module against the environment-variable table in
``ROADMAP.md`` — a flag cannot ship undocumented, and a documented flag
cannot silently lose its implementation.

The accessors preserve the exact semantics of the scattered reads they
replaced; the three gate styles in use are deliberately kept distinct:

``not in ("", "0")``
    default-on gates where the empty string *disables*
    (``REPRO_SPAN_MATRIX``, ``REPRO_SERVE_SWITCH_COST``,
    ``REPRO_SERVE_FAULTS``) and the default-off opt-in
    (``REPRO_PARALLEL_SWEEPS``).
``!= "0"``
    ``REPRO_SERVE_TELEMETRY`` — default on, the empty string keeps it on;
    only a literal ``0`` drops the telemetry layer.
truthiness
    opt-ins where any non-empty value enables (``REPRO_BENCH_QUICK``,
    ``REPRO_CHECK_BENCH``, ``COMPASS_PAPER_SCALE``).

These distinctions are pinned by ``tests/test_envflags.py`` and by the
env-gate bit-identity pins in ``tests/test_serve.py`` /
``tests/test_telemetry.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class EnvFlag:
    """One declared environment flag (name, default and documentation)."""

    name: str
    default: str
    description: str


#: every environment flag the repository reads, in ROADMAP table order
REGISTRY: Tuple[EnvFlag, ...] = (
    EnvFlag("REPRO_SPAN_MATRIX", "on",
            "0 disables the dense span-matrix engine (scalar table path)"),
    EnvFlag("REPRO_PARALLEL_SWEEPS", "off",
            "non-0 runs figure sweeps through ParallelSweepRunner workers"),
    EnvFlag("REPRO_BENCH_QUICK", "off",
            "1 restricts run_bench.py to the quick headline benchmarks"),
    EnvFlag("REPRO_BENCH_OUT", "BENCH_<date>.json",
            "overrides the benchmark JSON output path"),
    EnvFlag("REPRO_CHECK_BENCH", "off",
            "1 enables the opt-in benchmark regression test"),
    EnvFlag("REPRO_BENCH_REGRESSION_PCT", "20",
            "regression threshold (percent) for check_bench_regression.py"),
    EnvFlag("REPRO_SERVE_SWITCH_COST", "on",
            "0 disables plan-switch weight-replacement cost in serving"),
    EnvFlag("REPRO_SERVE_FAULTS", "on",
            "0 drops every injected fault event (fault-free twin)"),
    EnvFlag("REPRO_SERVE_TELEMETRY", "on",
            "0 drops the telemetry layer wholesale"),
    EnvFlag("COMPASS_PAPER_SCALE", "off",
            "1 runs the benchmark harness with the paper-scale GA"),
)

#: flag names, for registry/doc cross-checks
REGISTERED_NAMES: Tuple[str, ...] = tuple(flag.name for flag in REGISTRY)


# ----------------------------------------------------------------------
# typed accessors (the only sanctioned os.environ reads in src/)
# ----------------------------------------------------------------------

def span_matrix_enabled() -> bool:
    """Dense span-matrix engine gate (default on; ``""``/``"0"`` disable)."""
    return os.environ.get("REPRO_SPAN_MATRIX", "1") not in ("", "0")


def parallel_sweeps_enabled() -> bool:
    """Parallel figure-sweep opt-in (default off; non-``0`` enables)."""
    return os.environ.get("REPRO_PARALLEL_SWEEPS", "0") not in ("", "0")


def bench_quick_enabled() -> bool:
    """Quick-benchmark restriction opt-in (any non-empty value enables)."""
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def bench_out() -> Optional[str]:
    """Benchmark JSON output override, or ``None`` for the dated default."""
    return os.environ.get("REPRO_BENCH_OUT") or None


def check_bench_enabled() -> bool:
    """Benchmark regression-test opt-in (any non-empty value enables)."""
    return bool(os.environ.get("REPRO_CHECK_BENCH"))


def bench_regression_pct() -> float:
    """Regression threshold percentage for the benchmark gate (default 20)."""
    return float(os.environ.get("REPRO_BENCH_REGRESSION_PCT", "20"))


def serve_switch_cost_enabled() -> bool:
    """Plan-switch cost modelling gate (default on; ``""``/``"0"`` disable)."""
    return os.environ.get("REPRO_SERVE_SWITCH_COST", "1") not in ("", "0")


def serve_faults_enabled() -> bool:
    """Fault-injection gate (default on; ``""``/``"0"`` disable)."""
    return os.environ.get("REPRO_SERVE_FAULTS", "1") not in ("", "0")


def serve_telemetry_enabled() -> bool:
    """Telemetry-layer gate (default on; only a literal ``"0"`` disables)."""
    return os.environ.get("REPRO_SERVE_TELEMETRY", "1") != "0"


def paper_scale_enabled() -> bool:
    """Paper-scale GA benchmark opt-in (any non-empty value enables)."""
    return bool(os.environ.get("COMPASS_PAPER_SCALE"))
