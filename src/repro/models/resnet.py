"""ResNet model builders (basic-block variants: ResNet18 and ResNet34).

ResNet18 is the paper's mid-size benchmark (Table II: 5.569 MB total at
4-bit).  The residual connections are what exercise COMPASS's multi-endpoint
dependency handling: when a residual skip crosses a partition boundary, the
partition gains an extra entry/exit node whose feature map must be staged in
global memory (Sec. III-B3).
"""

from __future__ import annotations

from typing import List

from repro.graph import Graph, GraphBuilder


def _basic_block(
    builder: GraphBuilder,
    prefix: str,
    in_channels: int,
    out_channels: int,
    stride: int,
) -> str:
    """Append one basic residual block; returns the name of the output node."""
    block_input = builder.current
    assert block_input is not None

    builder.add_conv(
        f"{prefix}_conv1", in_channels, out_channels, kernel_size=3, stride=stride, padding=1,
        bias=False,
    )
    builder.add_batchnorm(out_channels, name=f"{prefix}_bn1")
    builder.add_relu(name=f"{prefix}_relu1")
    builder.add_conv(
        f"{prefix}_conv2", out_channels, out_channels, kernel_size=3, stride=1, padding=1,
        bias=False,
    )
    builder.add_batchnorm(out_channels, name=f"{prefix}_bn2")
    main_path = builder.current
    assert main_path is not None

    if stride != 1 or in_channels != out_channels:
        # projection shortcut
        shortcut = builder.add_conv(
            f"{prefix}_down_conv", in_channels, out_channels, kernel_size=1, stride=stride,
            padding=0, bias=False, inputs=[block_input],
        )
        shortcut = builder.add_batchnorm(out_channels, name=f"{prefix}_down_bn")
    else:
        shortcut = block_input

    builder.add_add(name=f"{prefix}_add", inputs=[main_path, shortcut])
    builder.add_relu(name=f"{prefix}_relu2")
    return builder.current  # type: ignore[return-value]


def _build_resnet(name: str, layers_per_stage: List[int], input_size: int, num_classes: int) -> Graph:
    builder = GraphBuilder(name)
    builder.add_input(3, input_size, input_size)
    builder.add_conv("conv1", 3, 64, kernel_size=7, stride=2, padding=3, bias=False)
    builder.add_batchnorm(64, name="bn1")
    builder.add_relu(name="relu1")
    builder.add_maxpool(3, 2, padding=1, name="maxpool")

    channels = [64, 128, 256, 512]
    in_channels = 64
    for stage, (out_channels, num_blocks) in enumerate(zip(channels, layers_per_stage), start=1):
        for block in range(num_blocks):
            stride = 2 if stage > 1 and block == 0 else 1
            _basic_block(builder, f"layer{stage}_{block}", in_channels, out_channels, stride)
            in_channels = out_channels

    builder.add_global_avgpool(name="avgpool")
    builder.add_flatten(name="flatten")
    builder.add_linear("fc", 512, num_classes)
    builder.add_softmax(name="softmax")
    return builder.build()


def resnet18(input_size: int = 224, num_classes: int = 1000) -> Graph:
    """Build the ResNet18 graph (basic blocks, [2, 2, 2, 2])."""
    return _build_resnet("resnet18", [2, 2, 2, 2], input_size, num_classes)


def resnet34(input_size: int = 224, num_classes: int = 1000) -> Graph:
    """Build the ResNet34 graph (basic blocks, [3, 4, 6, 3])."""
    return _build_resnet("resnet34", [3, 4, 6, 3], input_size, num_classes)
