"""LeNet-5 model builder (tiny workload used in quick tests and examples)."""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder


def lenet5(input_size: int = 32, num_classes: int = 10) -> Graph:
    """Build the classic LeNet-5 graph (Conv-Pool-Conv-Pool-FC-FC-FC)."""
    builder = GraphBuilder("lenet5")
    builder.add_input(1, input_size, input_size)
    builder.add_conv("conv1", 1, 6, kernel_size=5)
    builder.add_relu(name="relu1")
    builder.add_avgpool(2, 2, name="pool1")
    builder.add_conv("conv2", 6, 16, kernel_size=5)
    builder.add_relu(name="relu2")
    builder.add_avgpool(2, 2, name="pool2")
    builder.add_flatten(name="flatten")
    spatial = builder.graph.node("pool2").output_shape
    assert spatial is not None
    builder.add_linear("fc1", spatial.num_elements, 120)
    builder.add_relu(name="relu3")
    builder.add_linear("fc2", 120, 84)
    builder.add_relu(name="relu4")
    builder.add_linear("fc3", 84, num_classes)
    builder.add_softmax(name="softmax")
    return builder.build()
