"""Model zoo: graph builders for the networks evaluated in the paper.

The paper evaluates VGG16, ResNet18 and SqueezeNet (Table II).  We also
include AlexNet, MobileNet-v1, ResNet34 and LeNet-5 as extra workloads for
examples and stress tests.
"""

from repro.models.vgg import vgg11, vgg16
from repro.models.resnet import resnet18, resnet34
from repro.models.squeezenet import squeezenet1_0, squeezenet1_1
from repro.models.alexnet import alexnet
from repro.models.mobilenet import mobilenet_v1
from repro.models.lenet import lenet5
from repro.models.registry import MODEL_REGISTRY, build_model, list_models

__all__ = [
    "vgg11",
    "vgg16",
    "resnet18",
    "resnet34",
    "squeezenet1_0",
    "squeezenet1_1",
    "alexnet",
    "mobilenet_v1",
    "lenet5",
    "MODEL_REGISTRY",
    "build_model",
    "list_models",
]
