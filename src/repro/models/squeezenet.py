"""SqueezeNet model builders (v1.0 and v1.1).

SqueezeNet is the paper's smallest benchmark (Table II: 0.587 MB at 4-bit);
it is the only network that prior all-on-chip compilers can map onto the
resource-constrained chip configurations.  The fire modules (squeeze 1×1 conv
feeding parallel 1×1 and 3×3 expand convs joined by a channel concat) exercise
COMPASS's handling of branching inside a partition.
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder


def _fire_module(
    builder: GraphBuilder,
    prefix: str,
    in_channels: int,
    squeeze_channels: int,
    expand1x1_channels: int,
    expand3x3_channels: int,
) -> int:
    """Append one fire module; returns its output channel count."""
    builder.add_conv(f"{prefix}_squeeze", in_channels, squeeze_channels, kernel_size=1)
    builder.add_relu(name=f"{prefix}_squeeze_relu")
    squeeze_out = builder.current
    assert squeeze_out is not None

    e1 = builder.add_conv(
        f"{prefix}_expand1x1", squeeze_channels, expand1x1_channels, kernel_size=1,
        inputs=[squeeze_out],
    )
    e1 = builder.add_relu(name=f"{prefix}_expand1x1_relu")

    e3 = builder.add_conv(
        f"{prefix}_expand3x3", squeeze_channels, expand3x3_channels, kernel_size=3, padding=1,
        inputs=[squeeze_out],
    )
    e3 = builder.add_relu(name=f"{prefix}_expand3x3_relu")

    builder.add_concat(name=f"{prefix}_concat", inputs=[e1, e3])
    return expand1x1_channels + expand3x3_channels


def squeezenet1_0(input_size: int = 224, num_classes: int = 1000) -> Graph:
    """Build the SqueezeNet v1.0 graph."""
    builder = GraphBuilder("squeezenet1_0")
    builder.add_input(3, input_size, input_size)
    builder.add_conv("conv1", 3, 96, kernel_size=7, stride=2)
    builder.add_relu(name="conv1_relu")
    builder.add_maxpool(3, 2, name="pool1")

    channels = _fire_module(builder, "fire2", 96, 16, 64, 64)
    channels = _fire_module(builder, "fire3", channels, 16, 64, 64)
    channels = _fire_module(builder, "fire4", channels, 32, 128, 128)
    builder.add_maxpool(3, 2, name="pool4")
    channels = _fire_module(builder, "fire5", channels, 32, 128, 128)
    channels = _fire_module(builder, "fire6", channels, 48, 192, 192)
    channels = _fire_module(builder, "fire7", channels, 48, 192, 192)
    channels = _fire_module(builder, "fire8", channels, 64, 256, 256)
    builder.add_maxpool(3, 2, name="pool8")
    channels = _fire_module(builder, "fire9", channels, 64, 256, 256)

    builder.add_dropout(name="drop")
    builder.add_conv("conv10", channels, num_classes, kernel_size=1)
    builder.add_relu(name="conv10_relu")
    builder.add_global_avgpool(name="gap")
    builder.add_flatten(name="flatten")
    builder.add_softmax(name="softmax")
    return builder.build()


def squeezenet1_1(input_size: int = 224, num_classes: int = 1000) -> Graph:
    """Build the SqueezeNet v1.1 graph (earlier pooling, 3×3 stem)."""
    builder = GraphBuilder("squeezenet1_1")
    builder.add_input(3, input_size, input_size)
    builder.add_conv("conv1", 3, 64, kernel_size=3, stride=2)
    builder.add_relu(name="conv1_relu")
    builder.add_maxpool(3, 2, name="pool1")

    channels = _fire_module(builder, "fire2", 64, 16, 64, 64)
    channels = _fire_module(builder, "fire3", channels, 16, 64, 64)
    builder.add_maxpool(3, 2, name="pool3")
    channels = _fire_module(builder, "fire4", channels, 32, 128, 128)
    channels = _fire_module(builder, "fire5", channels, 32, 128, 128)
    builder.add_maxpool(3, 2, name="pool5")
    channels = _fire_module(builder, "fire6", channels, 48, 192, 192)
    channels = _fire_module(builder, "fire7", channels, 48, 192, 192)
    channels = _fire_module(builder, "fire8", channels, 64, 256, 256)
    channels = _fire_module(builder, "fire9", channels, 64, 256, 256)

    builder.add_dropout(name="drop")
    builder.add_conv("conv10", channels, num_classes, kernel_size=1)
    builder.add_relu(name="conv10_relu")
    builder.add_global_avgpool(name="gap")
    builder.add_flatten(name="flatten")
    builder.add_softmax(name="softmax")
    return builder.build()
