"""AlexNet model builder (extra workload, not in the paper's benchmark set)."""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder


def alexnet(input_size: int = 224, num_classes: int = 1000) -> Graph:
    """Build the AlexNet graph (single-column variant)."""
    builder = GraphBuilder("alexnet")
    builder.add_input(3, input_size, input_size)
    builder.add_conv("conv1", 3, 64, kernel_size=11, stride=4, padding=2)
    builder.add_relu(name="relu1")
    builder.add_maxpool(3, 2, name="pool1")
    builder.add_conv("conv2", 64, 192, kernel_size=5, padding=2)
    builder.add_relu(name="relu2")
    builder.add_maxpool(3, 2, name="pool2")
    builder.add_conv("conv3", 192, 384, kernel_size=3, padding=1)
    builder.add_relu(name="relu3")
    builder.add_conv("conv4", 384, 256, kernel_size=3, padding=1)
    builder.add_relu(name="relu4")
    builder.add_conv("conv5", 256, 256, kernel_size=3, padding=1)
    builder.add_relu(name="relu5")
    builder.add_maxpool(3, 2, name="pool5")
    builder.add_flatten(name="flatten")

    spatial = builder.graph.node("pool5").output_shape
    assert spatial is not None
    flat_features = spatial.num_elements
    builder.add_dropout(name="drop1")
    builder.add_linear("fc1", flat_features, 4096)
    builder.add_relu(name="fc1_relu")
    builder.add_dropout(name="drop2")
    builder.add_linear("fc2", 4096, 4096)
    builder.add_relu(name="fc2_relu")
    builder.add_linear("fc3", 4096, num_classes)
    builder.add_softmax(name="softmax")
    return builder.build()
