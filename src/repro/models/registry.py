"""Model registry: build any supported model by name.

The evaluation harness and examples refer to workloads by string name
(e.g. ``"resnet18"``); this registry maps those names to graph builders.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graph import Graph
from repro.models.alexnet import alexnet
from repro.models.lenet import lenet5
from repro.models.mobilenet import mobilenet_v1
from repro.models.resnet import resnet18, resnet34
from repro.models.squeezenet import squeezenet1_0, squeezenet1_1
from repro.models.vgg import vgg11, vgg16

#: Map of model name → zero/keyword-argument builder callable.
MODEL_REGISTRY: Dict[str, Callable[..., Graph]] = {
    "vgg11": vgg11,
    "vgg16": vgg16,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "squeezenet": squeezenet1_1,
    "squeezenet1_0": squeezenet1_0,
    "squeezenet1_1": squeezenet1_1,
    "alexnet": alexnet,
    "mobilenet_v1": mobilenet_v1,
    "lenet5": lenet5,
}


def list_models() -> List[str]:
    """Names of all registered models."""
    return sorted(MODEL_REGISTRY)


def build_model(name: str, **kwargs) -> Graph:
    """Build a registered model by name.

    Raises :class:`KeyError` with the list of valid names if unknown.
    """
    try:
        builder = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {', '.join(list_models())}") from None
    return builder(**kwargs)
