"""MobileNet-v1 model builder (extra workload).

Depthwise convolutions are modelled as grouped convolutions with
``groups == channels``: weight count is ``channels × 3 × 3`` and the im2col
matrix has 9 rows per group, which is what matters to the crossbar mapper.
"""

from __future__ import annotations

from repro.graph import Graph, GraphBuilder


def _conv_bn_relu(builder: GraphBuilder, name: str, cin: int, cout: int, kernel: int,
                  stride: int, padding: int) -> None:
    builder.add_conv(name, cin, cout, kernel_size=kernel, stride=stride, padding=padding, bias=False)
    builder.add_batchnorm(cout, name=f"{name}_bn")
    builder.add_relu(name=f"{name}_relu")


def _depthwise_separable(builder: GraphBuilder, prefix: str, cin: int, cout: int, stride: int) -> None:
    builder.add_conv(f"{prefix}_dw", cin, cin, kernel_size=3, stride=stride, padding=1, bias=False,
                     groups=cin, inputs=[builder.current])
    builder.add_batchnorm(cin, name=f"{prefix}_dw_bn")
    builder.add_relu(name=f"{prefix}_dw_relu")
    _conv_bn_relu(builder, f"{prefix}_pw", cin, cout, kernel=1, stride=1, padding=0)


def mobilenet_v1(input_size: int = 224, num_classes: int = 1000, width_multiplier: float = 1.0) -> Graph:
    """Build the MobileNet-v1 graph."""
    def c(channels: int) -> int:
        return max(8, int(channels * width_multiplier))

    builder = GraphBuilder("mobilenet_v1")
    builder.add_input(3, input_size, input_size)
    _conv_bn_relu(builder, "conv1", 3, c(32), kernel=3, stride=2, padding=1)

    # (out_channels, stride) per depthwise-separable block
    blocks = [
        (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
        (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
        (1024, 2), (1024, 1),
    ]
    cin = c(32)
    for index, (cout, stride) in enumerate(blocks, start=2):
        _depthwise_separable(builder, f"block{index}", cin, c(cout), stride)
        cin = c(cout)

    builder.add_global_avgpool(name="gap")
    builder.add_flatten(name="flatten")
    builder.add_linear("fc", cin, num_classes)
    builder.add_softmax(name="softmax")
    return builder.build()
