"""VGG model builders.

VGG16 is the largest network of the paper's benchmark suite (Table II:
58.95 MB of Linear weights + 7.02 MB of Conv weights at 4-bit precision).
The convolutional trunk follows the standard configuration "D"; the
classifier uses the standard 4096/4096/1000 fully-connected stack.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.graph import Graph, GraphBuilder

# Standard VGG configurations: integers are conv output channels, "M" is a
# 2x2/stride-2 max pool.
_VGG11_CFG: Sequence[Union[int, str]] = (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M")
_VGG16_CFG: Sequence[Union[int, str]] = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
)


def _build_vgg(
    name: str,
    cfg: Sequence[Union[int, str]],
    input_size: int,
    num_classes: int,
    with_batchnorm: bool,
) -> Graph:
    builder = GraphBuilder(name)
    builder.add_input(3, input_size, input_size)
    in_channels = 3
    conv_index = 0
    pool_index = 0
    spatial = input_size
    for item in cfg:
        if item == "M":
            pool_index += 1
            builder.add_maxpool(2, 2, name=f"pool{pool_index}")
            spatial //= 2
        else:
            conv_index += 1
            out_channels = int(item)
            builder.add_conv(
                f"conv{conv_index}", in_channels, out_channels, kernel_size=3, stride=1, padding=1
            )
            if with_batchnorm:
                builder.add_batchnorm(out_channels, name=f"bn{conv_index}")
            builder.add_relu(name=f"relu{conv_index}")
            in_channels = out_channels
    builder.add_flatten(name="flatten")
    flat_features = in_channels * spatial * spatial
    builder.add_linear("fc1", flat_features, 4096)
    builder.add_relu(name="fc1_relu")
    builder.add_dropout(name="fc1_drop")
    builder.add_linear("fc2", 4096, 4096)
    builder.add_relu(name="fc2_relu")
    builder.add_dropout(name="fc2_drop")
    builder.add_linear("fc3", 4096, num_classes)
    builder.add_softmax(name="softmax")
    return builder.build()


def vgg16(input_size: int = 224, num_classes: int = 1000, with_batchnorm: bool = False) -> Graph:
    """Build the VGG16 graph (configuration "D")."""
    return _build_vgg("vgg16", _VGG16_CFG, input_size, num_classes, with_batchnorm)


def vgg11(input_size: int = 224, num_classes: int = 1000, with_batchnorm: bool = False) -> Graph:
    """Build the VGG11 graph (configuration "A")."""
    return _build_vgg("vgg11", _VGG11_CFG, input_size, num_classes, with_batchnorm)
