"""DNN graph intermediate representation.

This package provides the self-contained graph IR that the COMPASS compiler
operates on.  It replaces the role of PyTorch/ONNX in the original paper:
only layer topology, weight shapes and feature-map shapes matter to the
compiler, so the IR captures exactly those.

Main entry points:

* :class:`~repro.graph.layers.Layer` and the ``make_*`` layer constructors
* :class:`~repro.graph.graph.Graph` — the DAG of layers
* :class:`~repro.graph.builder.GraphBuilder` — convenient sequential/branching
  construction with automatic shape inference
"""

from repro.graph.tensor import TensorShape
from repro.graph.layers import (
    Layer,
    LayerKind,
    make_input,
    make_conv2d,
    make_linear,
    make_maxpool,
    make_avgpool,
    make_global_avgpool,
    make_relu,
    make_batchnorm,
    make_add,
    make_concat,
    make_flatten,
    make_dropout,
    make_softmax,
)
from repro.graph.graph import Graph, GraphNode, GraphValidationError
from repro.graph.builder import GraphBuilder
from repro.graph.traversal import (
    topological_order,
    reverse_topological_order,
    ancestors,
    descendants,
    crossbar_layer_order,
)

__all__ = [
    "TensorShape",
    "Layer",
    "LayerKind",
    "Graph",
    "GraphNode",
    "GraphValidationError",
    "GraphBuilder",
    "make_input",
    "make_conv2d",
    "make_linear",
    "make_maxpool",
    "make_avgpool",
    "make_global_avgpool",
    "make_relu",
    "make_batchnorm",
    "make_add",
    "make_concat",
    "make_flatten",
    "make_dropout",
    "make_softmax",
    "topological_order",
    "reverse_topological_order",
    "ancestors",
    "descendants",
    "crossbar_layer_order",
]
