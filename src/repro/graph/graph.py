"""DNN model graph: a DAG of layers with inferred shapes.

The graph is the compiler's view of the network.  Nodes are layers, edges are
data dependences.  Shapes are inferred eagerly as nodes are added so that any
inconsistent architecture fails fast at model-construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.graph.layers import Layer, LayerKind
from repro.graph.tensor import TensorShape


class GraphValidationError(ValueError):
    """Raised when the graph structure is inconsistent."""


@dataclass
class GraphNode:
    """A node of the model graph: a layer plus its connectivity and shapes."""

    layer: Layer
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    output_shape: Optional[TensorShape] = None

    @property
    def name(self) -> str:
        """Node name (same as the layer name)."""
        return self.layer.name

    @property
    def kind(self) -> LayerKind:
        """Layer kind of this node."""
        return self.layer.kind


class Graph:
    """A directed acyclic graph of DNN layers.

    Nodes must be added in a valid topological order (producers before
    consumers); shape inference runs on insertion.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._nodes: Dict[str, GraphNode] = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_layer(self, layer: Layer, inputs: Sequence[str] = ()) -> GraphNode:
        """Add a layer to the graph, wiring it to the named input nodes.

        Returns the created :class:`GraphNode`.  Raises
        :class:`GraphValidationError` for duplicate names, unknown inputs or
        shape-inference failures.
        """
        if layer.name in self._nodes:
            raise GraphValidationError(f"duplicate layer name {layer.name!r}")
        if layer.kind is LayerKind.INPUT and inputs:
            raise GraphValidationError(f"input layer {layer.name!r} cannot have inputs")
        if layer.kind is not LayerKind.INPUT and not inputs:
            raise GraphValidationError(f"layer {layer.name!r} must have at least one input")

        input_shapes: List[TensorShape] = []
        for src in inputs:
            if src not in self._nodes:
                raise GraphValidationError(
                    f"layer {layer.name!r} references unknown input {src!r}"
                )
            shape = self._nodes[src].output_shape
            assert shape is not None
            input_shapes.append(shape)

        node = GraphNode(layer=layer, inputs=list(inputs))
        node.output_shape = layer.infer_output_shape(input_shapes)
        self._nodes[layer.name] = node
        self._order.append(layer.name)
        for src in inputs:
            self._nodes[src].outputs.append(layer.name)
        return node

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[GraphNode]:
        return iter(self.nodes())

    def node(self, name: str) -> GraphNode:
        """Return the node with the given name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphValidationError(f"unknown node {name!r}") from None

    def nodes(self) -> List[GraphNode]:
        """All nodes in insertion (topological) order."""
        return [self._nodes[n] for n in self._order]

    def node_names(self) -> List[str]:
        """All node names in insertion (topological) order."""
        return list(self._order)

    def input_nodes(self) -> List[GraphNode]:
        """Model input nodes."""
        return [n for n in self.nodes() if n.kind is LayerKind.INPUT]

    def output_nodes(self) -> List[GraphNode]:
        """Model output nodes (nodes with no consumers)."""
        return [n for n in self.nodes() if not n.outputs]

    def predecessors(self, name: str) -> List[GraphNode]:
        """Producer nodes of the named node."""
        return [self._nodes[p] for p in self.node(name).inputs]

    def successors(self, name: str) -> List[GraphNode]:
        """Consumer nodes of the named node."""
        return [self._nodes[s] for s in self.node(name).outputs]

    def crossbar_nodes(self) -> List[GraphNode]:
        """Conv/Linear nodes, in topological order."""
        return [n for n in self.nodes() if n.layer.is_crossbar_mapped]

    # ------------------------------------------------------------------
    # model statistics
    # ------------------------------------------------------------------
    def total_weight_count(self) -> int:
        """Total number of weight parameters in the model."""
        return sum(n.layer.weight_count() for n in self.nodes())

    def total_weight_bytes(self, weight_bits: int) -> int:
        """Total weight footprint in bytes at the given precision."""
        return sum(n.layer.weight_bytes(weight_bits) for n in self.nodes())

    def crossbar_weight_bytes(self, weight_bits: int) -> int:
        """Weight footprint of crossbar-mapped (Conv/Linear) layers only."""
        return sum(
            n.layer.weight_bytes(weight_bits) for n in self.nodes() if n.layer.is_crossbar_mapped
        )

    def conv_weight_bytes(self, weight_bits: int) -> int:
        """Weight bytes of convolution layers."""
        return sum(
            n.layer.weight_bytes(weight_bits)
            for n in self.nodes()
            if n.kind is LayerKind.CONV2D
        )

    def linear_weight_bytes(self, weight_bits: int) -> int:
        """Weight bytes of fully-connected layers."""
        return sum(
            n.layer.weight_bytes(weight_bits)
            for n in self.nodes()
            if n.kind is LayerKind.LINEAR
        )

    def total_macs(self) -> int:
        """Total multiply-accumulate operations per inference."""
        total = 0
        for node in self.nodes():
            layer = node.layer
            if not layer.is_crossbar_mapped:
                continue
            assert node.output_shape is not None
            windows = layer.num_windows(node.output_shape)
            total += windows * layer.matrix_rows() * layer.matrix_cols()
        return total

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants of the graph.

        Raises :class:`GraphValidationError` if the graph has no input, no
        output, dangling references or is not a DAG in insertion order.
        """
        if not self._nodes:
            raise GraphValidationError("graph is empty")
        if not self.input_nodes():
            raise GraphValidationError("graph has no input node")
        if not self.output_nodes():
            raise GraphValidationError("graph has no output node")
        seen: set = set()
        for name in self._order:
            node = self._nodes[name]
            for src in node.inputs:
                if src not in seen:
                    raise GraphValidationError(
                        f"node {name!r} consumes {src!r} before it is defined"
                    )
            seen.add(name)
        # connectivity: every non-input node must be reachable from an input
        reachable = set(n.name for n in self.input_nodes())
        for name in self._order:
            node = self._nodes[name]
            if node.kind is LayerKind.INPUT:
                continue
            if any(src in reachable for src in node.inputs):
                reachable.add(name)
        unreachable = set(self._order) - reachable
        if unreachable:
            raise GraphValidationError(f"unreachable nodes: {sorted(unreachable)}")

    def summary(self) -> str:
        """Human-readable multi-line summary of the model."""
        lines = [f"Graph {self.name!r}: {len(self)} layers"]
        for node in self.nodes():
            shape = node.output_shape
            lines.append(
                f"  {node.name:<24s} {node.kind.value:<14s} "
                f"out={str(shape):<14s} weights={node.layer.weight_count()}"
            )
        lines.append(f"  total weights: {self.total_weight_count():,}")
        return "\n".join(lines)
