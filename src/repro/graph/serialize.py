"""Graph (de)serialization to plain dictionaries / JSON.

Lets users define custom networks outside Python (or persist generated ones)
and feed them to the compiler: a graph is a name plus an ordered list of
nodes, each carrying its layer kind, attributes and input names.  Shapes are
re-inferred on load, so a malformed description fails loudly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.graph.graph import Graph
from repro.graph.layers import Layer, LayerKind


def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    """Convert a graph to a JSON-serialisable dictionary."""
    return {
        "name": graph.name,
        "nodes": [
            {
                "name": node.name,
                "kind": node.kind.value,
                "attrs": dict(node.layer.attrs),
                "inputs": list(node.inputs),
            }
            for node in graph.nodes()
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output (shapes re-inferred)."""
    if "nodes" not in data:
        raise ValueError("graph dictionary is missing the 'nodes' list")
    graph = Graph(data.get("name", "model"))
    for entry in data["nodes"]:
        try:
            kind = LayerKind(entry["kind"])
        except ValueError:
            raise ValueError(f"unknown layer kind {entry.get('kind')!r}") from None
        layer = Layer(entry["name"], kind, dict(entry.get("attrs", {})))
        graph.add_layer(layer, inputs=entry.get("inputs", []))
    graph.validate()
    return graph


def save_graph(graph: Graph, path: str) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle, indent=2)


def load_graph(path: str) -> Graph:
    """Read a graph from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_dict(json.load(handle))
