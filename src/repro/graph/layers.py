"""Layer definitions for the DNN graph IR.

Each layer records the attributes the compiler needs:

* weight geometry (for Conv/Linear — everything that maps onto crossbars),
* output-shape computation (shape inference),
* the number of matrix-vector multiplications required per inference
  (``num_windows``), which drives replication and pipeline balancing,
* whether the layer maps onto crossbars at all (Sec. III-B2 of the paper
  places non-crossbar layers, e.g. BatchNorm/ReLU/Pool, in the partition of
  their producing Conv/Linear layer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.graph.tensor import TensorShape


class LayerKind(enum.Enum):
    """Enumeration of supported layer types."""

    INPUT = "input"
    CONV2D = "conv2d"
    LINEAR = "linear"
    MAXPOOL = "maxpool"
    AVGPOOL = "avgpool"
    GLOBAL_AVGPOOL = "global_avgpool"
    RELU = "relu"
    BATCHNORM = "batchnorm"
    ADD = "add"
    CONCAT = "concat"
    FLATTEN = "flatten"
    DROPOUT = "dropout"
    SOFTMAX = "softmax"


#: Layer kinds whose weights are mapped onto crossbar arrays.
CROSSBAR_KINDS = frozenset({LayerKind.CONV2D, LayerKind.LINEAR})

#: Layer kinds executed on the vector functional units (VFU) of a core.
VFU_KINDS = frozenset(
    {
        LayerKind.RELU,
        LayerKind.BATCHNORM,
        LayerKind.ADD,
        LayerKind.SOFTMAX,
        LayerKind.MAXPOOL,
        LayerKind.AVGPOOL,
        LayerKind.GLOBAL_AVGPOOL,
    }
)


class ShapeInferenceError(ValueError):
    """Raised when a layer cannot infer its output shape from its inputs."""


@dataclass
class Layer:
    """A single layer of a DNN model.

    Attributes
    ----------
    name:
        Unique layer name within its graph.
    kind:
        The :class:`LayerKind` of this layer.
    attrs:
        Layer-specific attributes (kernel size, stride, channels, ...).
    """

    name: str
    kind: LayerKind
    attrs: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    @property
    def is_crossbar_mapped(self) -> bool:
        """True if this layer's weights are written into crossbar arrays."""
        return self.kind in CROSSBAR_KINDS

    @property
    def is_vfu_op(self) -> bool:
        """True if this layer executes on a core's vector functional units."""
        return self.kind in VFU_KINDS

    @property
    def has_weights(self) -> bool:
        """True if the layer carries trainable parameters."""
        return self.kind in CROSSBAR_KINDS or self.kind is LayerKind.BATCHNORM

    # ------------------------------------------------------------------
    # weight geometry
    # ------------------------------------------------------------------
    def weight_count(self) -> int:
        """Number of weight parameters carried by this layer.

        BatchNorm scale/shift parameters are counted but are tiny and stay in
        core-local memory, never in crossbars.
        """
        a = self.attrs
        if self.kind is LayerKind.CONV2D:
            groups = a.get("groups", 1)
            weights = a["out_channels"] * (a["in_channels"] // groups) * a["kernel_size"] ** 2
            if a.get("bias", 1):
                weights += a["out_channels"]
            return weights
        if self.kind is LayerKind.LINEAR:
            weights = a["in_features"] * a["out_features"]
            if a.get("bias", 1):
                weights += a["out_features"]
            return weights
        if self.kind is LayerKind.BATCHNORM:
            return 2 * a["num_features"]
        return 0

    def weight_bytes(self, weight_bits: int) -> int:
        """Weight storage footprint in bytes at the given precision."""
        return (self.weight_count() * weight_bits + 7) // 8

    def matrix_rows(self) -> int:
        """Rows of the layer's im2col weight matrix (input dimension)."""
        a = self.attrs
        if self.kind is LayerKind.CONV2D:
            groups = a.get("groups", 1)
            return (a["in_channels"] // groups) * a["kernel_size"] ** 2
        if self.kind is LayerKind.LINEAR:
            return a["in_features"]
        return 0

    def matrix_cols(self) -> int:
        """Columns of the layer's im2col weight matrix (output dimension)."""
        a = self.attrs
        if self.kind is LayerKind.CONV2D:
            return a["out_channels"]
        if self.kind is LayerKind.LINEAR:
            return a["out_features"]
        return 0

    # ------------------------------------------------------------------
    # shape inference
    # ------------------------------------------------------------------
    def infer_output_shape(self, input_shapes: Sequence[TensorShape]) -> TensorShape:
        """Compute the output shape of this layer from its input shapes."""
        kind = self.kind
        a = self.attrs
        if kind is LayerKind.INPUT:
            return TensorShape.of(
                (a["channels"], a["height"], a["width"])
                if "height" in a
                else (a["features"],)
            )

        if not input_shapes:
            raise ShapeInferenceError(f"layer {self.name!r} ({kind.value}) has no inputs")
        first = input_shapes[0]

        if kind is LayerKind.CONV2D:
            self._expect_single_input(input_shapes)
            if not first.is_feature_map:
                raise ShapeInferenceError(
                    f"conv layer {self.name!r} expects a CHW input, got {first}"
                )
            if first.channels != a["in_channels"]:
                raise ShapeInferenceError(
                    f"conv layer {self.name!r} expects {a['in_channels']} input channels, "
                    f"got {first.channels}"
                )
            out_h = _conv_out(first.height, a["kernel_size"], a["stride"], a["padding"])
            out_w = _conv_out(first.width, a["kernel_size"], a["stride"], a["padding"])
            return TensorShape.chw(a["out_channels"], out_h, out_w)

        if kind is LayerKind.LINEAR:
            self._expect_single_input(input_shapes)
            if first.num_elements != a["in_features"]:
                raise ShapeInferenceError(
                    f"linear layer {self.name!r} expects {a['in_features']} input features, "
                    f"got {first.num_elements}"
                )
            return TensorShape.flat(a["out_features"])

        if kind in (LayerKind.MAXPOOL, LayerKind.AVGPOOL):
            self._expect_single_input(input_shapes)
            if not first.is_feature_map:
                raise ShapeInferenceError(
                    f"pool layer {self.name!r} expects a CHW input, got {first}"
                )
            out_h = _conv_out(first.height, a["kernel_size"], a["stride"], a.get("padding", 0))
            out_w = _conv_out(first.width, a["kernel_size"], a["stride"], a.get("padding", 0))
            return TensorShape.chw(first.channels, out_h, out_w)

        if kind is LayerKind.GLOBAL_AVGPOOL:
            self._expect_single_input(input_shapes)
            return TensorShape.chw(first.channels, 1, 1)

        if kind in (LayerKind.RELU, LayerKind.BATCHNORM, LayerKind.DROPOUT, LayerKind.SOFTMAX):
            self._expect_single_input(input_shapes)
            return first

        if kind is LayerKind.ADD:
            if len(input_shapes) < 2:
                raise ShapeInferenceError(f"add layer {self.name!r} needs at least two inputs")
            for other in input_shapes[1:]:
                if other.dims != first.dims:
                    raise ShapeInferenceError(
                        f"add layer {self.name!r} has mismatched inputs {first} and {other}"
                    )
            return first

        if kind is LayerKind.CONCAT:
            if len(input_shapes) < 2:
                raise ShapeInferenceError(f"concat layer {self.name!r} needs at least two inputs")
            if not all(s.is_feature_map for s in input_shapes):
                raise ShapeInferenceError(f"concat layer {self.name!r} expects CHW inputs")
            h, w = first.height, first.width
            for other in input_shapes[1:]:
                if (other.height, other.width) != (h, w):
                    raise ShapeInferenceError(
                        f"concat layer {self.name!r} has mismatched spatial dims"
                    )
            channels = sum(s.channels for s in input_shapes)
            return TensorShape.chw(channels, h, w)

        if kind is LayerKind.FLATTEN:
            self._expect_single_input(input_shapes)
            return first.flattened()

        raise ShapeInferenceError(f"unsupported layer kind {kind!r}")

    def _expect_single_input(self, input_shapes: Sequence[TensorShape]) -> None:
        if len(input_shapes) != 1:
            raise ShapeInferenceError(
                f"layer {self.name!r} ({self.kind.value}) expects exactly one input, "
                f"got {len(input_shapes)}"
            )

    # ------------------------------------------------------------------
    # execution geometry
    # ------------------------------------------------------------------
    def num_windows(self, output_shape: TensorShape) -> int:
        """Number of MVM operations needed per inference for this layer.

        For convolutions this is the number of sliding-window positions
        (output H × W); for fully-connected layers it is one.  Non-crossbar
        layers return zero.
        """
        if self.kind is LayerKind.CONV2D:
            return output_shape.height * output_shape.width
        if self.kind is LayerKind.LINEAR:
            return 1
        return 0

    def vfu_elements(self, output_shape: TensorShape) -> int:
        """Number of scalar elements processed by the VFU for this layer."""
        if self.is_vfu_op:
            return output_shape.num_elements
        return 0

    def __str__(self) -> str:
        attr_str = ", ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return f"{self.name}[{self.kind.value}]({attr_str})"


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    """Standard convolution/pooling output-size formula."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeInferenceError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


# ----------------------------------------------------------------------
# layer constructors
# ----------------------------------------------------------------------
def make_input(name: str, channels: int, height: int, width: int) -> Layer:
    """Create a model input layer producing a (C, H, W) feature map."""
    return Layer(name, LayerKind.INPUT, {"channels": channels, "height": height, "width": width})


def make_conv2d(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
    bias: bool = True,
    groups: int = 1,
) -> Layer:
    """Create a 2-D convolution layer (square kernels).

    ``groups`` follows the usual grouped-convolution semantics; depthwise
    convolutions use ``groups == in_channels == out_channels``.
    """
    if in_channels % groups != 0 or out_channels % groups != 0:
        raise ValueError(
            f"conv {name!r}: in/out channels ({in_channels}/{out_channels}) "
            f"must be divisible by groups ({groups})"
        )
    return Layer(
        name,
        LayerKind.CONV2D,
        {
            "in_channels": in_channels,
            "out_channels": out_channels,
            "kernel_size": kernel_size,
            "stride": stride,
            "padding": padding,
            "bias": int(bias),
            "groups": groups,
        },
    )


def make_linear(name: str, in_features: int, out_features: int, bias: bool = True) -> Layer:
    """Create a fully-connected layer."""
    return Layer(
        name,
        LayerKind.LINEAR,
        {"in_features": in_features, "out_features": out_features, "bias": int(bias)},
    )


def make_maxpool(name: str, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> Layer:
    """Create a max-pooling layer."""
    return Layer(
        name,
        LayerKind.MAXPOOL,
        {"kernel_size": kernel_size, "stride": stride if stride is not None else kernel_size, "padding": padding},
    )


def make_avgpool(name: str, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> Layer:
    """Create an average-pooling layer."""
    return Layer(
        name,
        LayerKind.AVGPOOL,
        {"kernel_size": kernel_size, "stride": stride if stride is not None else kernel_size, "padding": padding},
    )


def make_global_avgpool(name: str) -> Layer:
    """Create a global average-pooling layer (output spatial dims 1×1)."""
    return Layer(name, LayerKind.GLOBAL_AVGPOOL)


def make_relu(name: str) -> Layer:
    """Create a ReLU activation layer."""
    return Layer(name, LayerKind.RELU)


def make_batchnorm(name: str, num_features: int) -> Layer:
    """Create a batch-normalisation layer."""
    return Layer(name, LayerKind.BATCHNORM, {"num_features": num_features})


def make_add(name: str) -> Layer:
    """Create an element-wise add layer (residual connections)."""
    return Layer(name, LayerKind.ADD)


def make_concat(name: str) -> Layer:
    """Create a channel-wise concatenation layer (e.g. SqueezeNet fire modules)."""
    return Layer(name, LayerKind.CONCAT)


def make_flatten(name: str) -> Layer:
    """Create a flatten layer (CHW feature map → vector)."""
    return Layer(name, LayerKind.FLATTEN)


def make_dropout(name: str) -> Layer:
    """Create a dropout layer (a no-op at inference time)."""
    return Layer(name, LayerKind.DROPOUT)


def make_softmax(name: str) -> Layer:
    """Create a softmax layer."""
    return Layer(name, LayerKind.SOFTMAX)
