"""Graph traversal utilities.

These helpers are used by the partition generator (Sec. III-B of the paper) to
walk the model DAG: crossbar-mapped layers define the partition-unit order,
and non-crossbar layers are attached to their producing Conv/Linear layer by
walking backwards over the dependence graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from repro.graph.graph import Graph, GraphNode


def topological_order(graph: Graph) -> List[str]:
    """Return node names in a valid topological order (Kahn's algorithm).

    The graph's own insertion order is already topological, but this function
    recomputes it from the edge structure, which doubles as a cycle check for
    graphs deserialised or manipulated externally.
    """
    indegree: Dict[str, int] = {n.name: len(n.inputs) for n in graph.nodes()}
    ready = deque(sorted(name for name, deg in indegree.items() if deg == 0))
    order: List[str] = []
    while ready:
        name = ready.popleft()
        order.append(name)
        for succ in graph.node(name).outputs:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(graph):
        raise ValueError("graph contains a cycle")
    return order


def reverse_topological_order(graph: Graph) -> List[str]:
    """Topological order reversed (consumers before producers)."""
    return list(reversed(topological_order(graph)))


def ancestors(graph: Graph, name: str) -> Set[str]:
    """All transitive producers of the named node (excluding itself)."""
    result: Set[str] = set()
    stack = list(graph.node(name).inputs)
    while stack:
        cur = stack.pop()
        if cur in result:
            continue
        result.add(cur)
        stack.extend(graph.node(cur).inputs)
    return result


def descendants(graph: Graph, name: str) -> Set[str]:
    """All transitive consumers of the named node (excluding itself)."""
    result: Set[str] = set()
    stack = list(graph.node(name).outputs)
    while stack:
        cur = stack.pop()
        if cur in result:
            continue
        result.add(cur)
        stack.extend(graph.node(cur).outputs)
    return result


def crossbar_layer_order(graph: Graph) -> List[str]:
    """Names of Conv/Linear layers in topological order.

    This is the order in which the model is decomposed into partition units.
    """
    topo = topological_order(graph)
    return [name for name in topo if graph.node(name).layer.is_crossbar_mapped]


def producing_crossbar_layer(graph: Graph, name: str) -> str:
    """Find the nearest crossbar-mapped ancestor of a non-crossbar node.

    Used to attach BatchNorm/ReLU/Pool/... layers to the partition of the
    Conv/Linear layer that produces their input (Sec. III-B2).  If a node has
    several crossbar ancestors at the same distance (e.g. an Add joining two
    branches), the one appearing latest in topological order is chosen, since
    the join can only execute after both producers.
    """
    node = graph.node(name)
    if node.layer.is_crossbar_mapped:
        return name
    topo_index = {n: i for i, n in enumerate(topological_order(graph))}
    best: str = ""
    best_index = -1
    stack = list(node.inputs)
    visited: Set[str] = set()
    while stack:
        cur = stack.pop()
        if cur in visited:
            continue
        visited.add(cur)
        cur_node = graph.node(cur)
        if cur_node.layer.is_crossbar_mapped:
            if topo_index[cur] > best_index:
                best, best_index = cur, topo_index[cur]
            continue
        stack.extend(cur_node.inputs)
    if not best:
        raise ValueError(f"node {name!r} has no crossbar-mapped ancestor")
    return best


def attach_non_crossbar_layers(graph: Graph) -> Dict[str, List[str]]:
    """Map each crossbar layer to the non-crossbar layers attached to it.

    Input nodes are not attached to anything (they only define model inputs).
    Every other non-crossbar node is attached to its nearest crossbar-mapped
    ancestor, so that a partition containing that ancestor also executes the
    attached vector/pooling/normalisation work.
    """
    attachment: Dict[str, List[str]] = {name: [] for name in crossbar_layer_order(graph)}
    for node in graph.nodes():
        if node.layer.is_crossbar_mapped:
            continue
        if node.kind.value == "input":
            continue
        owner = producing_crossbar_layer(graph, node.name)
        attachment[owner].append(node.name)
    return attachment
