"""Tensor shape representation used throughout the graph IR.

The compiler never manipulates tensor *values*; it only needs shapes to size
feature maps (for DRAM traffic and local-memory allocation) and weight
matrices (for crossbar mapping).  Shapes are therefore lightweight immutable
tuples of positive integers with a few convenience helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class TensorShape:
    """Shape of an activation tensor, excluding the batch dimension.

    Two layouts are used by the IR:

    * feature maps: ``(channels, height, width)``
    * flat vectors:  ``(features,)``

    The batch dimension is handled by the execution model (samples stream
    through the pipeline one by one), so it never appears here.
    """

    dims: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("TensorShape requires at least one dimension")
        for d in self.dims:
            if not isinstance(d, int) or d <= 0:
                raise ValueError(f"TensorShape dimensions must be positive ints, got {self.dims}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def chw(cls, channels: int, height: int, width: int) -> "TensorShape":
        """Build a channel/height/width feature-map shape."""
        return cls((channels, height, width))

    @classmethod
    def flat(cls, features: int) -> "TensorShape":
        """Build a flat (fully-connected) vector shape."""
        return cls((features,))

    @classmethod
    def of(cls, dims: Iterable[int]) -> "TensorShape":
        """Build a shape from any iterable of dimensions."""
        return cls(tuple(int(d) for d in dims))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    @property
    def is_feature_map(self) -> bool:
        """True for (C, H, W) shapes."""
        return len(self.dims) == 3

    @property
    def is_flat(self) -> bool:
        """True for 1-D vector shapes."""
        return len(self.dims) == 1

    @property
    def channels(self) -> int:
        """Channel count (C for feature maps, feature count for vectors)."""
        return self.dims[0]

    @property
    def height(self) -> int:
        """Spatial height; 1 for flat vectors."""
        return self.dims[1] if self.is_feature_map else 1

    @property
    def width(self) -> int:
        """Spatial width; 1 for flat vectors."""
        return self.dims[2] if self.is_feature_map else 1

    @property
    def num_elements(self) -> int:
        """Total number of scalar elements."""
        total = 1
        for d in self.dims:
            total *= d
        return total

    def size_bytes(self, bits_per_element: int) -> int:
        """Storage footprint in bytes at the given precision (rounded up)."""
        if bits_per_element <= 0:
            raise ValueError("bits_per_element must be positive")
        return (self.num_elements * bits_per_element + 7) // 8

    def flattened(self) -> "TensorShape":
        """Return the flat view of this shape."""
        return TensorShape.flat(self.num_elements)

    def __str__(self) -> str:
        return "x".join(str(d) for d in self.dims)

    def __iter__(self):
        return iter(self.dims)
