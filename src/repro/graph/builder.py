"""Convenience builder for constructing model graphs.

The builder keeps track of the "current" node so that sequential networks can
be written as a simple chain of calls, while still allowing explicit wiring
for branches (residual connections, fire modules, ...).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.graph import Graph
from repro.graph.layers import (
    make_add,
    make_avgpool,
    make_batchnorm,
    make_concat,
    make_conv2d,
    make_dropout,
    make_flatten,
    make_global_avgpool,
    make_input,
    make_linear,
    make_maxpool,
    make_relu,
    make_softmax,
)


class GraphBuilder:
    """Fluent helper for building :class:`~repro.graph.graph.Graph` objects.

    Every ``add_*`` method appends a layer, wires it to the current node (or
    the explicitly given ``inputs``), updates the current node and returns the
    new node's name so branches can be captured::

        b = GraphBuilder("tiny")
        b.add_input(3, 32, 32)
        trunk = b.add_conv("conv1", 3, 16, kernel_size=3, padding=1)
        b.add_relu()
        b.add_conv("conv2", 16, 16, kernel_size=3, padding=1)
        b.add_add("res1", inputs=[b.current, trunk])
    """

    def __init__(self, name: str = "model") -> None:
        self.graph = Graph(name)
        self.current: Optional[str] = None
        self._auto_index = 0

    # ------------------------------------------------------------------
    def _resolve_inputs(self, inputs: Optional[Sequence[str]]) -> List[str]:
        if inputs is not None:
            return list(inputs)
        if self.current is None:
            raise ValueError("no current node; add an input layer first or pass inputs=")
        return [self.current]

    def _auto_name(self, prefix: str) -> str:
        self._auto_index += 1
        return f"{prefix}_{self._auto_index}"

    def _add(self, layer, inputs: Optional[Sequence[str]]) -> str:
        node = self.graph.add_layer(layer, self._resolve_inputs(inputs) if layer.kind.value != "input" else ())
        self.current = node.name
        return node.name

    # ------------------------------------------------------------------
    # layer helpers
    # ------------------------------------------------------------------
    def add_input(self, channels: int, height: int, width: int, name: str = "input") -> str:
        """Add the model input node."""
        node = self.graph.add_layer(make_input(name, channels, height, width))
        self.current = node.name
        return node.name

    def add_conv(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        groups: int = 1,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Add a Conv2d layer."""
        return self._add(
            make_conv2d(name, in_channels, out_channels, kernel_size, stride, padding, bias, groups),
            inputs,
        )

    def add_linear(
        self,
        name: str,
        in_features: int,
        out_features: int,
        bias: bool = True,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Add a fully-connected layer."""
        return self._add(make_linear(name, in_features, out_features, bias), inputs)

    def add_relu(self, name: Optional[str] = None, inputs: Optional[Sequence[str]] = None) -> str:
        """Add a ReLU activation."""
        return self._add(make_relu(name or self._auto_name("relu")), inputs)

    def add_batchnorm(
        self, num_features: int, name: Optional[str] = None, inputs: Optional[Sequence[str]] = None
    ) -> str:
        """Add a batch-normalisation layer."""
        return self._add(make_batchnorm(name or self._auto_name("bn"), num_features), inputs)

    def add_maxpool(
        self,
        kernel_size: int,
        stride: Optional[int] = None,
        padding: int = 0,
        name: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Add a max-pooling layer."""
        return self._add(
            make_maxpool(name or self._auto_name("maxpool"), kernel_size, stride, padding), inputs
        )

    def add_avgpool(
        self,
        kernel_size: int,
        stride: Optional[int] = None,
        padding: int = 0,
        name: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Add an average-pooling layer."""
        return self._add(
            make_avgpool(name or self._auto_name("avgpool"), kernel_size, stride, padding), inputs
        )

    def add_global_avgpool(
        self, name: Optional[str] = None, inputs: Optional[Sequence[str]] = None
    ) -> str:
        """Add a global average-pooling layer."""
        return self._add(make_global_avgpool(name or self._auto_name("gap")), inputs)

    def add_add(self, name: Optional[str] = None, inputs: Optional[Sequence[str]] = None) -> str:
        """Add an element-wise addition (residual join)."""
        if inputs is None or len(inputs) < 2:
            raise ValueError("add_add requires an explicit list of at least two inputs")
        return self._add(make_add(name or self._auto_name("add")), inputs)

    def add_concat(self, name: Optional[str] = None, inputs: Optional[Sequence[str]] = None) -> str:
        """Add a channel-wise concatenation."""
        if inputs is None or len(inputs) < 2:
            raise ValueError("add_concat requires an explicit list of at least two inputs")
        return self._add(make_concat(name or self._auto_name("concat")), inputs)

    def add_flatten(self, name: Optional[str] = None, inputs: Optional[Sequence[str]] = None) -> str:
        """Add a flatten layer."""
        return self._add(make_flatten(name or self._auto_name("flatten")), inputs)

    def add_dropout(self, name: Optional[str] = None, inputs: Optional[Sequence[str]] = None) -> str:
        """Add a dropout layer (inference no-op)."""
        return self._add(make_dropout(name or self._auto_name("dropout")), inputs)

    def add_softmax(self, name: Optional[str] = None, inputs: Optional[Sequence[str]] = None) -> str:
        """Add a softmax layer."""
        return self._add(make_softmax(name or self._auto_name("softmax")), inputs)

    # ------------------------------------------------------------------
    def build(self) -> Graph:
        """Validate and return the constructed graph."""
        self.graph.validate()
        return self.graph
