"""Hardware model of the crossbar-array PIM accelerator.

The architecture follows the Macro-Core-Chip hierarchy of Fig. 1 in the paper
(itself adopted from PUMA and PIMCOMP): a chip contains multiple PIM cores
connected by a bus to a global memory (DRAM); each core contains a matrix
unit built from crossbar CIM macros, vector functional units (VFUs), local
memory and an instruction store.

Three chip presets — ``CHIP_S``, ``CHIP_M`` and ``CHIP_L`` — reproduce
Table I of the paper (1.125 MB, 2.0 MB and 4.5 MB of in-memory weight
capacity respectively).
"""

from repro.hardware.crossbar import CrossbarConfig
from repro.hardware.core import CoreConfig
from repro.hardware.chip import ChipConfig, InterconnectConfig
from repro.hardware.config import (
    CHIP_S,
    CHIP_M,
    CHIP_L,
    CHIP_PRESETS,
    get_chip_config,
    hardware_configuration_table,
)
from repro.hardware.power import PowerModel, EnergyBreakdown
from repro.hardware.dram import DRAMConfig, DRAMModel, DRAMRequest, DRAMStats, LPDDR3_8GB

__all__ = [
    "CrossbarConfig",
    "CoreConfig",
    "ChipConfig",
    "InterconnectConfig",
    "CHIP_S",
    "CHIP_M",
    "CHIP_L",
    "CHIP_PRESETS",
    "get_chip_config",
    "hardware_configuration_table",
    "PowerModel",
    "EnergyBreakdown",
    "DRAMConfig",
    "DRAMModel",
    "DRAMRequest",
    "DRAMStats",
    "LPDDR3_8GB",
]
