"""PIM core model.

A core bundles a matrix unit (several crossbar macros), a set of vector
functional units (VFUs), core-local data memory and an instruction store
(Fig. 1).  Per-core power numbers follow Table I of the paper: 12 VFUs at
22.8 mW, 64 kB local memory at 18.0 mW and an 8.0 mW control unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.crossbar import CrossbarConfig


@dataclass(frozen=True)
class CoreConfig:
    """Configuration of a single PIM core."""

    crossbars_per_core: int = 16
    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)

    #: number of vector functional units in the core
    vfu_count: int = 12
    #: VFU throughput, elements processed per ns per VFU
    vfu_elements_per_ns: float = 1.0
    #: VFU energy per processed element, picojoules
    vfu_energy_per_element_pj: float = 0.1
    #: total VFU block power (Table I), milliwatts
    vfu_power_mw: float = 22.8

    #: core-local data memory size in bytes (64 kB in Table I)
    local_memory_bytes: int = 64 * 1024
    #: local memory read/write bandwidth in bytes per ns
    local_memory_bw_bytes_per_ns: float = 32.0
    #: local memory energy per byte accessed, picojoules
    local_memory_energy_per_byte_pj: float = 0.5
    #: local memory power (Table I), milliwatts
    local_memory_power_mw: float = 18.0

    #: control unit power (Table I), milliwatts
    control_power_mw: float = 8.0

    #: instruction memory size in bytes
    instruction_memory_bytes: int = 32 * 1024

    def __post_init__(self) -> None:
        if self.crossbars_per_core <= 0:
            raise ValueError("a core needs at least one crossbar")
        if self.vfu_count <= 0:
            raise ValueError("a core needs at least one VFU")
        if self.local_memory_bytes <= 0:
            raise ValueError("local memory size must be positive")

    # ------------------------------------------------------------------
    @property
    def weight_capacity_bytes(self) -> int:
        """Total crossbar weight capacity of the core, in bytes."""
        return self.crossbars_per_core * self.crossbar.capacity_bytes

    @property
    def static_power_mw(self) -> float:
        """Static/background power of the whole core, milliwatts."""
        return (
            self.vfu_power_mw
            + self.local_memory_power_mw
            + self.control_power_mw
            + self.crossbars_per_core * self.crossbar.static_power_mw
        )

    def vfu_latency_ns(self, elements: int) -> float:
        """Time for the VFU block to process ``elements`` scalars."""
        if elements <= 0:
            return 0.0
        throughput = self.vfu_count * self.vfu_elements_per_ns
        return elements / throughput

    def vfu_energy_pj(self, elements: int) -> float:
        """Energy for the VFU block to process ``elements`` scalars."""
        return max(elements, 0) * self.vfu_energy_per_element_pj

    def local_memory_latency_ns(self, num_bytes: int) -> float:
        """Latency to move ``num_bytes`` through core-local memory."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.local_memory_bw_bytes_per_ns

    def local_memory_energy_pj(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` through core-local memory."""
        return max(num_bytes, 0) * self.local_memory_energy_per_byte_pj
