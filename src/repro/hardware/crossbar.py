"""Crossbar CIM macro model.

The paper uses a 256×256 crossbar array with 4-bit weights and activations,
with energy calibrated to the 16 nm IMC-SRAM prototype of Jia et al.
(ISSCC 2021).  A single physical cell stores one bit, so a 4-bit weight
occupies ``weight_bits`` adjacent columns: a 256×256 array holds a
256-row × 64-weight-column tile (8 KiB of weights at 4-bit) — this capacity
model is what makes the Table I chip capacities (1.125/2.0/4.5 MB) come out
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CrossbarConfig:
    """Geometry, timing and energy parameters of one crossbar CIM macro.

    Timing values are in nanoseconds, energies in picojoules.  The defaults
    model the 16 nm SRAM-CIM macro used in the paper; ReRAM/MRAM variants can
    be expressed by changing the write latency/energy (Sec. V-B).
    """

    rows: int = 256
    cols: int = 256
    cell_bits: int = 1
    weight_bits: int = 4
    activation_bits: int = 4

    #: latency of one analog matrix-vector multiplication over the full array
    mvm_latency_ns: float = 100.0
    #: energy of one MVM, including DAC/ADC and bitline switching
    mvm_energy_pj: float = 400.0
    #: latency to write one row of cells (all columns in parallel)
    write_row_latency_ns: float = 50.0
    #: energy to write one cell
    write_energy_per_cell_pj: float = 1.0
    #: static leakage of one macro in milliwatts
    static_power_mw: float = 0.5

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("crossbar dimensions must be positive")
        if self.cell_bits <= 0 or self.weight_bits <= 0:
            raise ValueError("bit widths must be positive")
        if self.weight_bits % self.cell_bits != 0:
            raise ValueError("weight_bits must be a multiple of cell_bits")

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    @property
    def cells_per_weight(self) -> int:
        """Number of physical cells (columns) used per weight."""
        return self.weight_bits // self.cell_bits

    @property
    def weight_rows(self) -> int:
        """Number of weight-matrix rows a single crossbar can hold."""
        return self.rows

    @property
    def weight_cols(self) -> int:
        """Number of weight-matrix columns a single crossbar can hold."""
        return self.cols // self.cells_per_weight

    @property
    def weights_per_crossbar(self) -> int:
        """Total weights stored in one crossbar."""
        return self.weight_rows * self.weight_cols

    @property
    def capacity_bytes(self) -> int:
        """Weight storage capacity of one crossbar, in bytes."""
        return (self.weights_per_crossbar * self.weight_bits) // 8

    # ------------------------------------------------------------------
    # timing / energy
    # ------------------------------------------------------------------
    @property
    def write_latency_full_ns(self) -> float:
        """Latency to (re)write the entire crossbar array."""
        return self.rows * self.write_row_latency_ns

    @property
    def write_energy_full_pj(self) -> float:
        """Energy to (re)write the entire crossbar array."""
        return self.rows * self.cols * self.write_energy_per_cell_pj

    def mvm_energy_for_rows(self, active_rows: int) -> float:
        """Energy of one MVM when only ``active_rows`` wordlines are used.

        The paper scales the non-ADC portion of the inference power with the
        number of active wordlines; we apply the same linear scaling with a
        fixed ADC floor of 40 %.
        """
        if active_rows <= 0:
            return 0.0
        active_rows = min(active_rows, self.rows)
        adc_fraction = 0.4
        scaled = (1.0 - adc_fraction) * (active_rows / self.rows) + adc_fraction
        return self.mvm_energy_pj * scaled

    def write_energy_for(self, rows: int, weight_cols: int) -> float:
        """Energy to write a sub-tile of ``rows`` × ``weight_cols`` weights."""
        rows = min(rows, self.rows)
        cells = rows * min(weight_cols, self.weight_cols) * self.cells_per_weight
        return cells * self.write_energy_per_cell_pj

    def write_latency_for(self, rows: int) -> float:
        """Latency to write ``rows`` rows of the array (columns in parallel)."""
        return min(rows, self.rows) * self.write_row_latency_ns
