"""Chip configuration presets reproducing Table I of the paper.

========  =======  ================  ============  =========
Chip      # Cores  # Crossbar/Core   Capacity(MB)  Power (W)
========  =======  ================  ============  =========
S         16       9                 1.125         1.57
M         16       16                2.0           2.80
L         36       16                4.5           6.30
========  =======  ================  ============  =========

Capacity follows from the crossbar capacity model: a 256×256 array with 1-bit
cells and 4-bit weights stores 8 KiB, so e.g. Chip-S = 16 × 9 × 8 KiB
= 1.125 MB.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.chip import ChipConfig, InterconnectConfig
from repro.hardware.core import CoreConfig
from repro.hardware.crossbar import CrossbarConfig

_CROSSBAR = CrossbarConfig()

_CORE_9XB = CoreConfig(crossbars_per_core=9, crossbar=_CROSSBAR)
_CORE_16XB = CoreConfig(crossbars_per_core=16, crossbar=_CROSSBAR)

_BUS = InterconnectConfig()

#: Small chip: 16 cores × 9 crossbars = 1.125 MB.
CHIP_S = ChipConfig(name="S", num_cores=16, core=_CORE_9XB, interconnect=_BUS, nominal_power_w=1.57)

#: Medium chip: 16 cores × 16 crossbars = 2.0 MB.
CHIP_M = ChipConfig(name="M", num_cores=16, core=_CORE_16XB, interconnect=_BUS, nominal_power_w=2.80)

#: Large chip: 36 cores × 16 crossbars = 4.5 MB.
CHIP_L = ChipConfig(name="L", num_cores=36, core=_CORE_16XB, interconnect=_BUS, nominal_power_w=6.30)

#: All Table I presets keyed by name.
CHIP_PRESETS: Dict[str, ChipConfig] = {"S": CHIP_S, "M": CHIP_M, "L": CHIP_L}


def get_chip_config(name: str) -> ChipConfig:
    """Look up a chip preset by name ("S", "M" or "L"), case-insensitively."""
    key = name.strip().upper()
    try:
        return CHIP_PRESETS[key]
    except KeyError:
        raise KeyError(
            f"unknown chip configuration {name!r}; available: {', '.join(sorted(CHIP_PRESETS))}"
        ) from None


def hardware_configuration_table() -> List[Dict[str, object]]:
    """Rows of Table I as dictionaries, for reporting and benchmarks."""
    rows: List[Dict[str, object]] = []
    for name, chip in sorted(CHIP_PRESETS.items()):
        rows.append(
            {
                "chip": name,
                "num_cores": chip.num_cores,
                "crossbars_per_core": chip.core.crossbars_per_core,
                "capacity_mb": round(chip.weight_capacity_mb, 3),
                "nominal_power_w": chip.nominal_power_w,
                "vfu_power_mw": chip.core.vfu_power_mw,
                "local_memory_kb": chip.core.local_memory_bytes // 1024,
                "local_memory_power_mw": chip.core.local_memory_power_mw,
                "control_power_mw": chip.core.control_power_mw,
            }
        )
    return rows
