"""Chip-level model: cores, bus interconnect and global-memory interface."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.core import CoreConfig


@dataclass(frozen=True)
class InterconnectConfig:
    """On-chip bus connecting PIM cores to each other and to global memory.

    The paper uses a shared bus (Sec. IV-A1), so inter-core transfers and
    DRAM traffic contend for the same bandwidth.
    """

    #: usable bus bandwidth in bytes per ns (GB/s)
    bandwidth_bytes_per_ns: float = 16.0
    #: fixed per-transfer latency (arbitration + flit setup), ns
    transfer_latency_ns: float = 10.0
    #: bus energy per byte moved, picojoules
    energy_per_byte_pj: float = 0.2

    def transfer_time_ns(self, num_bytes: int) -> float:
        """Latency to move ``num_bytes`` over the bus."""
        if num_bytes <= 0:
            return 0.0
        return self.transfer_latency_ns + num_bytes / self.bandwidth_bytes_per_ns

    def transfer_energy_pj(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` over the bus."""
        return max(num_bytes, 0) * self.energy_per_byte_pj


@dataclass(frozen=True)
class ChipConfig:
    """A complete PIM chip: N cores + bus + global memory interface.

    Instances for the paper's Chip-S/M/L configurations are provided in
    :mod:`repro.hardware.config`.
    """

    name: str
    num_cores: int
    core: CoreConfig = field(default_factory=CoreConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)

    #: total chip power budget from Table I (W); used for reporting only
    nominal_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("chip needs at least one core")

    # ------------------------------------------------------------------
    @property
    def total_crossbars(self) -> int:
        """Number of crossbar macros on the chip."""
        return self.num_cores * self.core.crossbars_per_core

    @property
    def weight_capacity_bytes(self) -> int:
        """Total on-chip weight capacity in bytes."""
        return self.num_cores * self.core.weight_capacity_bytes

    @property
    def weight_capacity_mb(self) -> float:
        """Total on-chip weight capacity in megabytes (MB = 2**20 bytes)."""
        return self.weight_capacity_bytes / (1024.0 * 1024.0)

    @property
    def static_power_mw(self) -> float:
        """Static power of all cores combined, milliwatts."""
        return self.num_cores * self.core.static_power_mw

    def fits_on_chip(self, weight_bytes: int) -> bool:
        """Whether a weight footprint fits fully on chip (no replication)."""
        return weight_bytes <= self.weight_capacity_bytes

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"{self.name}: {self.num_cores} cores x {self.core.crossbars_per_core} crossbars, "
            f"capacity {self.weight_capacity_mb:.3f} MB"
        )
