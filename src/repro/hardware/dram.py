"""Trace-driven LPDDR3 DRAM model.

The paper feeds memory traces generated from the scheduled instruction stream
into DRAMsim3 to obtain DRAM latency and energy.  DRAMsim3 itself is a large
C++ cycle simulator; this module provides a faithful-enough Python
replacement: a bank-state (row-buffer) timing model with LPDDR3-class
parameters, processing an ordered request trace and reporting per-request
latency plus aggregate bandwidth and energy.

What the compiler consumes from this model:

* latency of weight-load bursts between partitions,
* latency of activation load/store at partition boundaries,
* DRAM energy (activate/read/write/background) for the energy figures.

The model is deliberately simpler than DRAMsim3 (no command-queue
reordering, single channel, closed-form refresh overhead) but captures the
row-locality and bandwidth effects the evaluation depends on: large
sequential weight reads achieve near-peak bandwidth while scattered feature
accesses pay activate/precharge penalties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class DRAMConfig:
    """Timing and energy parameters of the external DRAM.

    Defaults model an 8 GB LPDDR3-1600 part (Table I: "LPDDR3 8GB,
    trace-based").  Times are nanoseconds, energies picojoules.
    """

    name: str = "LPDDR3-1600-8GB"
    capacity_bytes: int = 8 * 1024 ** 3
    num_channels: int = 1
    num_banks: int = 8
    row_size_bytes: int = 2048
    bus_width_bits: int = 32
    burst_length: int = 8
    clock_ns: float = 1.25  # 800 MHz DDR -> 1600 MT/s

    # core timing parameters (ns)
    t_rcd_ns: float = 18.0
    t_rp_ns: float = 18.0
    t_ras_ns: float = 42.0
    t_cas_ns: float = 15.0
    t_refresh_overhead: float = 0.05  # fraction of time lost to refresh

    # energy parameters (pJ)
    e_activate_pj: float = 1500.0
    e_precharge_pj: float = 1200.0
    e_read_per_byte_pj: float = 40.0
    e_write_per_byte_pj: float = 45.0
    background_power_mw: float = 80.0

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.num_channels <= 0:
            raise ValueError("DRAM needs at least one channel and one bank")
        if self.row_size_bytes <= 0 or self.burst_length <= 0:
            raise ValueError("row size and burst length must be positive")

    @property
    def bytes_per_burst(self) -> int:
        """Bytes transferred by one burst."""
        return (self.bus_width_bits // 8) * self.burst_length

    @property
    def burst_time_ns(self) -> float:
        """Data-bus occupancy of one burst (DDR: burst_length/2 cycles)."""
        return (self.burst_length / 2.0) * self.clock_ns

    @property
    def peak_bandwidth_bytes_per_ns(self) -> float:
        """Peak data-bus bandwidth per channel."""
        return self.bytes_per_burst / self.burst_time_ns


#: Default DRAM used in the paper's evaluation.
LPDDR3_8GB = DRAMConfig()


@dataclass(frozen=True)
class DRAMRequest:
    """One memory request in the trace."""

    issue_time_ns: float
    address: int
    size_bytes: int
    is_write: bool
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("DRAM request size must be positive")
        if self.address < 0:
            raise ValueError("DRAM request address must be non-negative")


@dataclass
class DRAMStats:
    """Aggregate statistics over a processed trace."""

    num_requests: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    total_latency_ns: float = 0.0
    busy_time_ns: float = 0.0
    finish_time_ns: float = 0.0
    energy_pj: float = 0.0

    @property
    def total_bytes(self) -> int:
        """Total bytes moved."""
        return self.read_bytes + self.write_bytes

    @property
    def average_latency_ns(self) -> float:
        """Mean per-request latency."""
        return self.total_latency_ns / self.num_requests if self.num_requests else 0.0

    @property
    def row_hit_rate(self) -> float:
        """Fraction of bursts that hit an open row."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def achieved_bandwidth_bytes_per_ns(self) -> float:
        """Observed bandwidth over the busy window."""
        if self.finish_time_ns <= 0:
            return 0.0
        return self.total_bytes / self.finish_time_ns


class DRAMModel:
    """Bank-state DRAM timing/energy model processing an ordered trace."""

    def __init__(self, config: DRAMConfig = LPDDR3_8GB) -> None:
        self.config = config
        # open row per (channel, bank); None means the bank is precharged
        self._open_rows: Dict[Tuple[int, int], Optional[int]] = {}
        # time at which each channel's data bus becomes free
        self._channel_free_at: Dict[int, float] = {}
        self.reset()

    def reset(self) -> None:
        """Clear all bank and channel state."""
        cfg = self.config
        self._open_rows = {
            (ch, bank): None for ch in range(cfg.num_channels) for bank in range(cfg.num_banks)
        }
        self._channel_free_at = {ch: 0.0 for ch in range(cfg.num_channels)}

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def _map_address(self, address: int) -> Tuple[int, int, int]:
        """Map a byte address to (channel, bank, row)."""
        cfg = self.config
        row_index = address // cfg.row_size_bytes
        channel = row_index % cfg.num_channels
        bank = (row_index // cfg.num_channels) % cfg.num_banks
        row = row_index // (cfg.num_channels * cfg.num_banks)
        return channel, bank, row

    # ------------------------------------------------------------------
    # trace processing
    # ------------------------------------------------------------------
    def access(self, request: DRAMRequest, stats: Optional[DRAMStats] = None) -> float:
        """Process one request; returns its completion time in ns.

        The request is split into bursts; each burst pays the row-activation
        cost if it touches a closed or different row in its bank, then
        occupies the channel data bus for the burst time.
        """
        cfg = self.config
        stats = stats if stats is not None else DRAMStats()
        remaining = request.size_bytes
        address = request.address
        start = request.issue_time_ns
        completion = start

        while remaining > 0:
            channel, bank, row = self._map_address(address)
            chunk = min(remaining, cfg.bytes_per_burst,
                        cfg.row_size_bytes - (address % cfg.row_size_bytes))

            ready = max(start, self._channel_free_at[channel])
            open_row = self._open_rows[(channel, bank)]
            if open_row == row:
                access_latency = cfg.t_cas_ns
                stats.row_hits += 1
            elif open_row is None:
                access_latency = cfg.t_rcd_ns + cfg.t_cas_ns
                stats.row_misses += 1
                stats.energy_pj += cfg.e_activate_pj
            else:
                access_latency = cfg.t_rp_ns + cfg.t_rcd_ns + cfg.t_cas_ns
                stats.row_misses += 1
                stats.energy_pj += cfg.e_precharge_pj + cfg.e_activate_pj
            self._open_rows[(channel, bank)] = row

            burst_time = cfg.burst_time_ns * (1.0 + cfg.t_refresh_overhead)
            burst_end = ready + access_latency + burst_time
            self._channel_free_at[channel] = burst_end
            completion = max(completion, burst_end)
            stats.busy_time_ns += access_latency + burst_time

            per_byte = cfg.e_write_per_byte_pj if request.is_write else cfg.e_read_per_byte_pj
            stats.energy_pj += chunk * per_byte

            address += chunk
            remaining -= chunk

        stats.num_requests += 1
        if request.is_write:
            stats.write_bytes += request.size_bytes
        else:
            stats.read_bytes += request.size_bytes
        stats.total_latency_ns += completion - start
        stats.finish_time_ns = max(stats.finish_time_ns, completion)
        return completion

    def process_trace(self, trace: Iterable[DRAMRequest]) -> DRAMStats:
        """Process an entire trace (in issue order) and return statistics.

        Background energy is added for the full span of the trace.
        """
        stats = DRAMStats()
        self.reset()
        ordered = sorted(trace, key=lambda r: r.issue_time_ns)
        for request in ordered:
            self.access(request, stats)
        stats.energy_pj += self.config.background_power_mw * stats.finish_time_ns
        return stats

    # ------------------------------------------------------------------
    # closed-form helpers used by the analytic latency estimator
    # ------------------------------------------------------------------
    def bulk_transfer_latency_ns(self, num_bytes: int, sequential: bool = True) -> float:
        """Closed-form latency of a bulk transfer without mutating state.

        Sequential transfers (weight streaming) pay one activation per row;
        non-sequential transfers pay one activation per burst.  This is used
        by the fitness estimator, which needs a fast approximation; the full
        trace model is used by the simulator for the reported numbers.
        """
        if num_bytes <= 0:
            return 0.0
        cfg = self.config
        bursts = (num_bytes + cfg.bytes_per_burst - 1) // cfg.bytes_per_burst
        burst_time = cfg.burst_time_ns * (1.0 + cfg.t_refresh_overhead)
        if sequential:
            rows = (num_bytes + cfg.row_size_bytes - 1) // cfg.row_size_bytes
            activations = rows
        else:
            activations = bursts
        activation_time = activations * (cfg.t_rp_ns + cfg.t_rcd_ns)
        # activations on different banks overlap with data transfer except for
        # the first one; keep the first activation plus a small per-activation
        # residual to model imperfect overlap.
        overlap_residual = 0.15
        return (
            cfg.t_rcd_ns
            + cfg.t_cas_ns
            + bursts * burst_time
            + activation_time * overlap_residual
        )

    def bulk_transfer_energy_pj(self, num_bytes: int, is_write: bool, sequential: bool = True) -> float:
        """Closed-form energy of a bulk transfer (no background power)."""
        if num_bytes <= 0:
            return 0.0
        cfg = self.config
        rows = (num_bytes + cfg.row_size_bytes - 1) // cfg.row_size_bytes
        bursts = (num_bytes + cfg.bytes_per_burst - 1) // cfg.bytes_per_burst
        activations = rows if sequential else bursts
        per_byte = cfg.e_write_per_byte_pj if is_write else cfg.e_read_per_byte_pj
        return activations * (cfg.e_activate_pj + cfg.e_precharge_pj) + num_bytes * per_byte
