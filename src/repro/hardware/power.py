"""Chip power/energy model.

Accumulates the energy of every activity class used in the paper's
evaluation — MVM compute, crossbar weight writes, DRAM weight loads,
activation loads/stores, VFU work, on-chip interconnect and static power —
into an :class:`EnergyBreakdown` so figures 8 and 9 (energy, EDP and the
weight-write/load vs MVMUL comparison) can be reproduced directly.

Energies are tracked in picojoules internally; helpers convert to millijoules
for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

from repro.hardware.chip import ChipConfig


@dataclass(slots=True)
class EnergyBreakdown:
    """Energy consumed by each activity class, in picojoules."""

    mvm_pj: float = 0.0
    weight_write_pj: float = 0.0
    weight_load_pj: float = 0.0
    data_load_pj: float = 0.0
    data_store_pj: float = 0.0
    vfu_pj: float = 0.0
    interconnect_pj: float = 0.0
    local_memory_pj: float = 0.0
    static_pj: float = 0.0
    dram_background_pj: float = 0.0

    # ------------------------------------------------------------------
    @property
    def total_pj(self) -> float:
        """Total energy in picojoules."""
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def total_mj(self) -> float:
        """Total energy in millijoules."""
        return self.total_pj * 1e-9

    @property
    def dram_pj(self) -> float:
        """All DRAM-related energy (weight loads + feature traffic + background)."""
        return self.weight_load_pj + self.data_load_pj + self.data_store_pj + self.dram_background_pj

    def add(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Accumulate another breakdown into this one (in place) and return self."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        result = EnergyBreakdown()
        for f in fields(self):
            setattr(result, f.name, getattr(self, f.name) * factor)
        return result

    def as_dict(self) -> Dict[str, float]:
        """Component energies as a plain dictionary (picojoules)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v/1e6:.3f}uJ" for k, v in self.as_dict().items() if v)
        return f"EnergyBreakdown({parts}, total={self.total_pj/1e6:.3f}uJ)"


class PowerModel:
    """Computes per-activity energies for a given chip configuration.

    The model keeps the *relative* magnitudes the paper relies on: crossbar
    weight writes are far more expensive than MVMs per bit moved, and DRAM
    traffic costs an order of magnitude more per byte than on-chip transfers.
    """

    #: DRAM access energy per byte (pJ/B); ~20 pJ/bit for LPDDR3 including I/O
    DRAM_ENERGY_PER_BYTE_PJ = 160.0

    def __init__(self, chip: ChipConfig) -> None:
        self.chip = chip
        self.core = chip.core
        self.crossbar = chip.core.crossbar

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def mvm_energy_pj(self, num_mvms: int, active_rows: int) -> float:
        """Energy of ``num_mvms`` matrix-vector multiplications."""
        return num_mvms * self.crossbar.mvm_energy_for_rows(active_rows)

    def vfu_energy_pj(self, elements: int) -> float:
        """Energy of processing ``elements`` scalars on the VFUs."""
        return self.core.vfu_energy_pj(elements)

    # ------------------------------------------------------------------
    # weight replacement
    # ------------------------------------------------------------------
    def weight_write_energy_pj(self, weight_count: int) -> float:
        """Energy to program ``weight_count`` weights into crossbars."""
        cells = weight_count * self.crossbar.cells_per_weight
        return cells * self.crossbar.write_energy_per_cell_pj

    def weight_load_energy_pj(self, weight_bytes: int) -> float:
        """Energy to fetch ``weight_bytes`` of weights from DRAM over the bus."""
        return weight_bytes * self.DRAM_ENERGY_PER_BYTE_PJ + self.chip.interconnect.transfer_energy_pj(weight_bytes)

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def dram_data_energy_pj(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` of activations to/from DRAM."""
        return num_bytes * self.DRAM_ENERGY_PER_BYTE_PJ + self.chip.interconnect.transfer_energy_pj(num_bytes)

    def interconnect_energy_pj(self, num_bytes: int) -> float:
        """Energy of an on-chip (core-to-core) transfer."""
        return self.chip.interconnect.transfer_energy_pj(num_bytes)

    def local_memory_energy_pj(self, num_bytes: int) -> float:
        """Energy of core-local memory traffic."""
        return self.core.local_memory_energy_pj(num_bytes)

    # ------------------------------------------------------------------
    # static
    # ------------------------------------------------------------------
    def static_energy_pj(self, duration_ns: float, active_cores: int) -> float:
        """Static energy of ``active_cores`` cores over ``duration_ns``.

        mW × ns = pJ, so the conversion is a straight multiply.
        """
        active_cores = max(0, min(active_cores, self.chip.num_cores))
        return self.core.static_power_mw * active_cores * max(duration_ns, 0.0)
