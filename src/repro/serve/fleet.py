"""Fleet model: the chips a serving deployment schedules onto.

A fleet is an ordered list of :class:`ChipWorker` instances — each one chip
running one partition plan at a time (partitions of a plan time-share the
chip's cores, so a chip serves one batch end to end before taking the next).
Fleets may be homogeneous (``M:4``) or heterogeneous S/M/L mixes
(``S:2,M:1,L:1``): heterogeneous fleets are where the latency-aware
scheduling policy earns its keep, because the same model compiles to very
different plans per chip class.

Workers carry their own occupancy counters (busy time, batches, requests,
energy); the simulator updates them at dispatch time and the serving report
reads them back as the per-chip utilisation table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.hardware.config import get_chip_config

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.serve.plans import PlanCache


@dataclass
class ChipWorker:
    """One chip of the fleet, with its occupancy counters."""

    index: int
    chip_name: str
    #: simulated time (ns) until which the chip is executing its current batch
    busy_until_ns: float = 0.0
    #: cumulative busy time (ns)
    busy_ns: float = 0.0
    #: batches dispatched to this chip
    batches_served: int = 0
    #: requests served (sum of dispatched batch occupancies)
    requests_served: int = 0
    #: cumulative energy of the batches served (pJ)
    energy_pj: float = 0.0

    @property
    def label(self) -> str:
        """Stable display name, e.g. ``M#2``."""
        return f"{self.chip_name}#{self.index}"

    def idle_at(self, now_ns: float) -> bool:
        """Whether the chip is free to take a batch at ``now_ns``."""
        return self.busy_until_ns <= now_ns

    def utilisation(self, makespan_ns: float) -> float:
        """Fraction of the run this chip spent executing batches."""
        return self.busy_ns / makespan_ns if makespan_ns > 0 else 0.0


class Fleet:
    """An ordered collection of chip workers."""

    def __init__(self, workers: Sequence[ChipWorker]) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one chip")
        self.workers: List[ChipWorker] = list(workers)

    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(cls, chip_name: str, count: int = 1) -> "Fleet":
        """A fleet of ``count`` identical chips."""
        return cls.from_counts([(chip_name, count)])

    @classmethod
    def from_counts(cls, counts: Sequence[Tuple[str, int]]) -> "Fleet":
        """A fleet from (chip name, count) pairs, in the given order."""
        workers: List[ChipWorker] = []
        for chip_name, count in counts:
            try:
                get_chip_config(chip_name)  # validate the name early
            except KeyError as error:
                raise ValueError(str(error).strip('"')) from None
            if count <= 0:
                raise ValueError(f"chip count must be positive, got {chip_name}:{count}")
            for _ in range(count):
                workers.append(ChipWorker(index=len(workers), chip_name=chip_name.upper()))
        return cls(workers)

    @classmethod
    def from_spec(cls, spec: str) -> "Fleet":
        """Parse a fleet spec string like ``"M"``, ``"M:4"`` or ``"S:2,M:1,L:1"``."""
        counts: List[Tuple[str, int]] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" in part:
                name, _, count = part.partition(":")
                try:
                    counts.append((name.strip(), int(count)))
                except ValueError:
                    raise ValueError(f"bad fleet spec entry {part!r}; expected CHIP:COUNT")
            else:
                counts.append((part, 1))
        if not counts:
            raise ValueError(f"empty fleet spec {spec!r}")
        return cls.from_counts(counts)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.workers)

    @property
    def spec(self) -> str:
        """Canonical spec string reproducing this fleet's exact worker order.

        Consecutive runs are grouped (``S,S,M`` → ``"S:2,M:1"``) but
        interleavings are preserved (``S,M,S`` → ``"S:1,M:1,S:1"``): worker
        order drives FIFO dispatch and tie-breaking, so
        ``Fleet.from_spec(fleet.spec)`` must rebuild an equivalent fleet.
        """
        runs: List[Tuple[str, int]] = []
        for worker in self.workers:
            if runs and runs[-1][0] == worker.chip_name:
                runs[-1] = (worker.chip_name, runs[-1][1] + 1)
            else:
                runs.append((worker.chip_name, 1))
        return ",".join(f"{name}:{count}" for name, count in runs)

    @property
    def chip_names(self) -> Tuple[str, ...]:
        """Distinct chip classes present, in worker order."""
        seen: Dict[str, None] = {}
        for worker in self.workers:
            seen.setdefault(worker.chip_name)
        return tuple(seen)

    def idle_workers(self, now_ns: float) -> List[ChipWorker]:
        """Workers free at ``now_ns``, in index order."""
        return [w for w in self.workers if w.idle_at(now_ns)]

    def reset(self) -> None:
        """Zero every worker's occupancy counters (for re-running a fleet)."""
        for worker in self.workers:
            worker.busy_until_ns = 0.0
            worker.busy_ns = 0.0
            worker.batches_served = 0
            worker.requests_served = 0
            worker.energy_pj = 0.0


def fleet_capacity_rps(
    cache: "PlanCache",
    fleet: Fleet,
    models: Sequence[str],
    batch_sizes: Sequence[int],
) -> float:
    """Best-case aggregate requests/second of a fleet for a model mix.

    Capacity of one chip = the best requests/second any allowed batch size
    of any served model achieves on it (plans come from the warm cache, so
    this is deterministic and free); the fleet capacity is the sum over
    chips, averaged over the served models.  The CLI's ``--utilization``
    auto-rate, the serving benchmark and the fixed-seed tests all derive
    their offered rates from this one number.
    """
    total = 0.0
    for worker in fleet.workers:
        per_model = [
            max(cache.get(model, worker.chip_name, batch).throughput_rps
                for batch in batch_sizes)
            for model in models
        ]
        total += sum(per_model) / len(per_model)
    return total
