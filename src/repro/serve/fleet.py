"""Fleet model: the chips a serving deployment schedules onto.

A fleet is an ordered list of :class:`ChipWorker` instances — each one chip
running one partition plan at a time (partitions of a plan time-share the
chip's cores, so a chip serves one batch end to end before taking the next).
Fleets may be homogeneous (``M:4``) or heterogeneous S/M/L mixes
(``S:2,M:1,L:1``): heterogeneous fleets are where the latency-aware
scheduling policy earns its keep, because the same model compiles to very
different plans per chip class.

Workers carry their own occupancy counters (busy time, batches, requests,
energy); the simulator updates them at dispatch time and the serving report
reads them back as the per-chip utilisation table.

Each worker also remembers the compiled plan its crossbars currently hold
(``loaded_plan``).  When plan-switch cost modelling is enabled
(:func:`switch_cost_enabled`, the ``REPRO_SERVE_SWITCH_COST`` gate), a
dispatch that changes the chip's resident plan must first write the
incoming plan's weights onto the crossbars — charged as the incoming
plan's ``weight_replace_ns``, on top of the compiled latency whose own
``WR`` term covers the in-execution partition weight streaming — and is
counted as a plan switch.  A warm re-dispatch of the resident plan (and
the first dispatch after the prewarmed deployment start) pays the
compiled latency unchanged.

Workers also carry fault state (:mod:`repro.serve.faults`): ``up`` marks a
failed chip out of the dispatchable pool, ``latency_factor`` stretches
every service latency while the chip straggles, and ``dram_factor``
re-prices its plans on degraded DRAM timings (via :func:`plan_for`).  Lost
work (batches in flight when the chip died), failure counts and downtime
accumulate per worker for the report's availability accounting.  A chip's
``loaded_plan`` survives failure and recovery: crossbar weights are
non-volatile, so the restarted chip still holds the plan it had.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro import envflags
from repro.hardware.config import get_chip_config

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.serve.plans import CompiledPlan, PlanCache, PlanKey


def switch_cost_enabled() -> bool:
    """Whether serving models plan-switch weight-replacement cost.

    Controlled by the ``REPRO_SERVE_SWITCH_COST`` environment variable
    (default on; ``0`` or the empty string disables it).  With the cost
    disabled every dispatch pays the full compiled plan latency — exactly
    the pre-switch-cost serving model, pinned bit-identical in
    ``tests/test_serve.py``.
    """
    return envflags.serve_switch_cost_enabled()


def is_plan_switch(plan: "CompiledPlan", worker: "ChipWorker",
                   switch_cost: bool) -> bool:
    """Whether dispatching ``plan`` on ``worker`` replaces a resident plan.

    The single definition of "plan switch" shared by the latency charge
    (:func:`service_latency_ns`) and the per-chip switch counters, so the
    two can never drift apart.  The first dispatch on a freshly reset
    worker is not a switch — the prewarmed deployment staged its weights
    alongside the plan-cache warmup.
    """
    return (switch_cost and worker.loaded_plan is not None
            and worker.loaded_plan != plan.key)


def service_latency_ns(plan: "CompiledPlan", worker: "ChipWorker",
                       switch_cost: bool) -> float:
    """Service latency of dispatching ``plan`` on ``worker`` (ns).

    With switch-cost modelling on, a dispatch that changes the worker's
    resident plan pays the incoming plan's weight-replacement term
    ``WR`` *in addition to* the compiled latency curve
    ``WR + (FILL + (B-1)*BN)``: the new plan's weights must be written
    onto the crossbars before execution starts, while the curve's own
    ``WR`` covers the partition weight streaming *during* execution.  A
    warm re-dispatch of the resident plan — and the first dispatch on a
    freshly reset worker, whose weights the prewarmed deployment already
    staged — pays the compiled latency unchanged.  With modelling off,
    every dispatch pays the compiled latency: the switch-oblivious
    pre-switch-cost model, bit-exactly.

    A straggling worker stretches the whole charge by its
    ``latency_factor`` (1.0 on a healthy chip — an exact no-op in IEEE
    arithmetic, so fault-free runs stay bit-identical).
    """
    if is_plan_switch(plan, worker, switch_cost):
        return (plan.latency_ns + plan.weight_replace_ns) * worker.latency_factor
    return plan.latency_ns * worker.latency_factor


def plan_for(plans: "PlanCache", worker: "ChipWorker", model: str,
             batch: int) -> "CompiledPlan":
    """The compiled plan ``worker`` would run for a (model, batch) dispatch.

    On a healthy chip this is exactly ``plans.get(model, chip, batch)``;
    a chip whose DRAM is degraded (``dram_factor != 1``) instead prices
    the plan on the scaled DRAM timings — re-compiled through the full
    span-matrix stack on first use and cached like any other plan.  The
    single lookup point shared by the scheduler's latency ranking and the
    simulator's dispatch, so the two can never disagree on what a
    degraded chip costs.
    """
    if worker.dram_factor != 1.0:
        from repro.serve.plans import degraded_dram

        return plans.get(model, worker.chip_name, batch,
                         dram=degraded_dram(plans.dram_config, worker.dram_factor))
    return plans.get(model, worker.chip_name, batch)


@dataclass
class ChipWorker:
    """One chip of the fleet, with its occupancy counters."""

    index: int
    chip_name: str
    #: simulated time (ns) until which the chip is executing its current batch
    busy_until_ns: float = 0.0
    #: cumulative busy time (ns)
    busy_ns: float = 0.0
    #: batches dispatched to this chip
    batches_served: int = 0
    #: requests served (sum of dispatched batch occupancies)
    requests_served: int = 0
    #: cumulative energy of the batches served (pJ)
    energy_pj: float = 0.0
    #: key of the compiled plan whose weights the chip currently holds
    loaded_plan: Optional["PlanKey"] = None
    #: dispatches that replaced a previously loaded different plan
    plan_switches: int = 0
    #: cumulative weight-replacement time charged to plan switches (ns)
    switch_ns: float = 0.0
    #: whether the chip is alive (a failed chip takes no dispatches)
    up: bool = True
    #: bumped at every failure; stale completion events carry the old epoch
    epoch: int = 0
    #: straggler service-latency multiplier (1.0 = full speed)
    latency_factor: float = 1.0
    #: DRAM timing multiplier (1.0 = nominal; > 1 re-prices resident plans)
    dram_factor: float = 1.0
    #: failures suffered this run
    failures: int = 0
    #: when the current outage began (``None`` while up)
    down_since_ns: Optional[float] = None
    #: cumulative outage time (ns) — computed from ``outages`` at report
    #: time, clamped to the simulation horizon
    downtime_ns: float = 0.0
    #: closed outage windows ``(down_ns, up_ns)`` this run; the simulator
    #: appends one per recovery and closes the open outage at end-of-run.
    #: Kept as windows (not a running sum) so a recovery scheduled past the
    #: simulation horizon can be clamped to it — a chip can never report
    #: more downtime than the run's wall time
    outages: List[Tuple[float, float]] = field(default_factory=list)
    #: batches in flight when the chip died
    lost_batches: int = 0
    #: requests aboard those batches (re-queued or lost by the simulator)
    lost_requests: int = 0
    #: chip time wasted on killed batches (ns)
    lost_ns: float = 0.0

    @property
    def label(self) -> str:
        """Stable display name, e.g. ``M#2``."""
        return f"{self.chip_name}#{self.index}"

    def idle_at(self, now_ns: float) -> bool:
        """Whether the chip is free to take a batch at ``now_ns``."""
        return self.up and self.busy_until_ns <= now_ns

    def utilisation(self, makespan_ns: float) -> float:
        """Fraction of the run this chip spent executing batches."""
        return self.busy_ns / makespan_ns if makespan_ns > 0 else 0.0


class Fleet:
    """An ordered collection of chip workers."""

    def __init__(self, workers: Sequence[ChipWorker]) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one chip")
        self.workers: List[ChipWorker] = list(workers)

    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(cls, chip_name: str, count: int = 1) -> "Fleet":
        """A fleet of ``count`` identical chips."""
        return cls.from_counts([(chip_name, count)])

    @classmethod
    def from_counts(cls, counts: Sequence[Tuple[str, int]]) -> "Fleet":
        """A fleet from (chip name, count) pairs, in the given order."""
        workers: List[ChipWorker] = []
        for chip_name, count in counts:
            try:
                get_chip_config(chip_name)  # validate the name early
            except KeyError as error:
                raise ValueError(str(error).strip('"')) from None
            if count <= 0:
                raise ValueError(f"chip count must be positive, got {chip_name}:{count}")
            for _ in range(count):
                workers.append(ChipWorker(index=len(workers), chip_name=chip_name.upper()))
        return cls(workers)

    @classmethod
    def from_spec(cls, spec: str) -> "Fleet":
        """Parse a fleet spec string like ``"M"``, ``"M:4"`` or ``"S:2,M:1,L:1"``."""
        counts: List[Tuple[str, int]] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" in part:
                name, _, count = part.partition(":")
                try:
                    counts.append((name.strip(), int(count)))
                except ValueError:
                    raise ValueError(f"bad fleet spec entry {part!r}; expected CHIP:COUNT")
            else:
                counts.append((part, 1))
        if not counts:
            raise ValueError(f"empty fleet spec {spec!r}")
        return cls.from_counts(counts)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.workers)

    @property
    def spec(self) -> str:
        """Canonical spec string reproducing this fleet's exact worker order.

        Consecutive runs are grouped (``S,S,M`` → ``"S:2,M:1"``) but
        interleavings are preserved (``S,M,S`` → ``"S:1,M:1,S:1"``): worker
        order drives FIFO dispatch and tie-breaking, so
        ``Fleet.from_spec(fleet.spec)`` must rebuild an equivalent fleet.
        """
        runs: List[Tuple[str, int]] = []
        for worker in self.workers:
            if runs and runs[-1][0] == worker.chip_name:
                runs[-1] = (worker.chip_name, runs[-1][1] + 1)
            else:
                runs.append((worker.chip_name, 1))
        return ",".join(f"{name}:{count}" for name, count in runs)

    @property
    def chip_names(self) -> Tuple[str, ...]:
        """Distinct chip classes present, in worker order."""
        seen: Dict[str, None] = {}
        for worker in self.workers:
            seen.setdefault(worker.chip_name)
        return tuple(seen)

    def idle_workers(self, now_ns: float) -> List[ChipWorker]:
        """Workers free at ``now_ns``, in index order."""
        return [w for w in self.workers if w.idle_at(now_ns)]

    def reset(self) -> None:
        """Zero every worker's occupancy counters (for re-running a fleet)."""
        for worker in self.workers:
            worker.busy_until_ns = 0.0
            worker.busy_ns = 0.0
            worker.batches_served = 0
            worker.requests_served = 0
            worker.energy_pj = 0.0
            worker.loaded_plan = None
            worker.plan_switches = 0
            worker.switch_ns = 0.0
            worker.up = True
            worker.epoch = 0
            worker.latency_factor = 1.0
            worker.dram_factor = 1.0
            worker.failures = 0
            worker.down_since_ns = None
            worker.downtime_ns = 0.0
            worker.outages = []
            worker.lost_batches = 0
            worker.lost_requests = 0
            worker.lost_ns = 0.0


def fleet_capacity_rps(
    cache: "PlanCache",
    fleet: Fleet,
    models: Sequence[str],
    batch_sizes: Sequence[int],
) -> float:
    """Best-case aggregate requests/second of a fleet for a model mix.

    Capacity of one chip = the best requests/second any allowed batch size
    of any served model achieves on it (plans come from the warm cache, so
    this is deterministic and free); the fleet capacity is the sum over
    chips, averaged over the served models.  The CLI's ``--utilization``
    auto-rate, the serving benchmark and the fixed-seed tests all derive
    their offered rates from this one number.
    """
    total = 0.0
    for worker in fleet.workers:
        per_model = [
            max(cache.get(model, worker.chip_name, batch).throughput_rps
                for batch in batch_sizes)
            for model in models
        ]
        total += sum(per_model) / len(per_model)
    return total
